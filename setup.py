"""Setuptools shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` works where wheel is available;
offline boxes can fall back to `python setup.py develop`.
"""
from setuptools import setup

setup()
