"""Benches for the paper's unplotted (prose) claims.

Section IV states two results without a figure; Corollary 7 gives a
bound the simulation can measure. Each gets a regenerator here:

* throughput is independent of path length (for large K),
* routing re-stabilizes within O(N^2) rounds of the last failure —
  measured values should sit far below the bound.
"""

from conftest import horizon, max_retries, point_timeout, run_once, workers

from repro.analysis.tables import format_table
from repro.experiments import pathlen, stabilization


def test_throughput_independent_of_path_length(benchmark, results_dir):
    rounds = horizon(1200, pathlen.ROUNDS)
    result = run_once(benchmark, lambda: pathlen.run(
            rounds=rounds,
            workers=workers(),
            point_timeout=point_timeout(),
            max_retries=max_retries(),
        ))
    result.save_json(results_dir / "pathlen.json")
    print()
    print("Throughput vs straight-path length (paper: flat for large K)")
    print(
        format_table(
            ["length", "throughput"],
            [(run.extras["length"], run.throughput) for run in result.runs],
        )
    )
    deviation = pathlen.flatness(result)
    print(f"max relative deviation from mean: {deviation:.3f}")
    assert deviation < 0.15
    assert all(run.monitor_violations == 0 for run in result.runs)


def test_stabilization_rounds_within_corollary_7_bound(benchmark):
    points = run_once(benchmark, lambda: stabilization.measure(grid_n=8, trials=3))
    print()
    print("Rounds to routing re-stabilization after a crash burst (8x8)")
    print(
        format_table(
            ["crashes", "worst rounds", "O(N^2) bound", "within bound"],
            [
                (p.crashes, p.rounds_to_stabilize, p.bound, p.within_bound)
                for p in points
            ],
        )
    )
    assert all(point.within_bound for point in points)
    # The real cost is diameter-ish, far below N^2.
    assert max(point.rounds_to_stabilize for point in points) <= 2 * 8 * 2
