"""Latency benches (see repro/experiments/latency.py).

The complementary service metric the paper omits: spacing throttles
*throughput* but barely touches latency; turns inflate *latency*
directly.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.experiments.latency import sweep_rs, sweep_turns


def _print(points) -> None:
    print()
    print(
        format_table(
            ["point", "throughput", "mean lat", "median", "p95", "max"],
            [
                (
                    p.label,
                    p.throughput,
                    p.stats.mean,
                    p.stats.median,
                    p.stats.p95,
                    p.stats.maximum,
                )
                for p in points
            ],
        )
    )


def test_latency_vs_safety_spacing(benchmark):
    points = run_once(benchmark, sweep_rs)
    _print(points)
    # Throughput falls with rs (Figure 7) ...
    throughputs = [p.throughput for p in points]
    assert all(b <= a + 0.01 for a, b in zip(throughputs, throughputs[1:]))
    # ... but latency stays nearly flat: spacing prices admission, not speed.
    means = [p.stats.mean for p in points]
    assert max(means) <= 1.5 * min(means)


def test_latency_vs_turns(benchmark):
    points = run_once(benchmark, sweep_turns)
    _print(points)
    means = [p.stats.mean for p in points]
    # Corner blocking holds entities mid-path: introducing turns raises
    # latency by a clear margin over the straight corridor...
    assert all(mean > 1.1 * means[0] for mean in means[1:])
    # ...but within the turn-saturated regime (throughput identical from
    # 2 turns on, cf. Figure 8) latency is NOT monotone in turn count:
    # more turns = shorter straight segments = different blocking
    # overlap. A genuinely measured nuance, not an error.
    throughputs = [p.throughput for p in points[1:]]
    assert max(throughputs) - min(throughputs) < 0.01