"""Figure 9 regeneration: throughput under random failure and recovery.

Paper: 8x8 grid, rs = 0.05, l = 0.2, v = 0.2, K = 20000, source <1,0>,
target <1,7> on a fully alive grid; per-round Bernoulli fail (pf in
0.01..0.05) and recover (pr in {0.05, 0.1, 0.15, 0.2}) coins on every
cell, the target included (its recovery resets dist = 0).

Expected shape (asserted): throughput decreases in pf, increases in pr,
with diminishing returns from successive pr increments.
"""

from conftest import horizon, max_retries, point_timeout, run_once, workers

from repro.analysis.ascii_plot import line_plot
from repro.analysis.tables import format_series_table
from repro.experiments import fig9

DEFAULT_ROUNDS = 3000


def test_fig9_throughput_under_failures(benchmark, results_dir):
    rounds = horizon(DEFAULT_ROUNDS, fig9.ROUNDS)

    result = run_once(benchmark, lambda: fig9.run(
            rounds=rounds,
            workers=workers(),
            point_timeout=point_timeout(),
            max_retries=max_retries(),
        ))

    result.save_json(results_dir / "fig9.json")
    result.save_csv(results_dir / "fig9.csv")
    curves = fig9.series(result)
    print()
    print("Figure 9 — throughput vs pf (series = recovery probability pr)")
    print(format_series_table(curves, x_label="pf"))
    print(line_plot(curves, x_label="pf", y_label="throughput"))

    collapse = fig9.stationary_collapse(result)
    multi = [(f, mean, spread) for f, mean, spread in collapse if spread > 0]
    if multi:
        print()
        print("Stationary-fraction collapse (pf/(pf+pr) -> throughput):")
        from repro.analysis.tables import format_table

        print(
            format_table(
                ["failed fraction", "mean throughput", "spread"], collapse
            )
        )
        # Where several (pf, pr) pairs share a stationary fraction, their
        # throughputs should nearly coincide: dead-cell fraction is the
        # first-order effect, churn speed second-order.
        assert all(
            spread <= max(0.35 * mean, 0.01) for _, mean, spread in multi
        )

    checks = fig9.shape_checks(result)
    print(f"shape checks: {checks}")
    assert checks["pf_hurts"], "failures should reduce throughput"
    assert checks["pr_helps"], "recovery should restore throughput"
    assert checks["diminishing_returns"], "pr gains should shrink"

    # Safety held through every crash/recovery interleaving (Theorem 5).
    assert all(run.monitor_violations == 0 for run in result.runs)
    assert all(run.total_failures > 0 for run in result.runs)
