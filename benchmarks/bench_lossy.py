"""Graceful-degradation bench: throughput vs advert drop probability.

Not a paper figure — the paper assumes reliable delivery — but a
robustness result its protocol earns for free: every advert default is
conservative, so message loss costs throughput only, never safety (see
repro/netsim/lossy.py). This bench sweeps the loss rate and verifies
monotone decay with zero violations.
"""

import random

from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.params import Parameters
from repro.core.sources import EagerSource
from repro.grid.paths import straight_path
from repro.grid.topology import Direction, Grid
from repro.monitors.safety import check_safe
from repro.netsim.lossy import LossyNetwork
from repro.netsim.runtime import MessagePassingSystem

PARAMS = Parameters(l=0.25, rs=0.05, v=0.2)
PATH = straight_path((1, 0), Direction.NORTH, 8)
ROUNDS = 1200
DROP_RATES = (0.0, 0.1, 0.2, 0.4, 0.6, 0.8)


def run_at(drop: float) -> tuple:
    system = MessagePassingSystem(
        grid=Grid(8),
        params=PARAMS,
        tid=PATH.target,
        sources={PATH.source: EagerSource()},
        rng=random.Random(0),
    )
    system.network = LossyNetwork(Grid(8), drop, rng=random.Random(1))
    for cid in Grid(8).cells():
        if cid not in PATH:
            system.fail(cid)
    violations = 0
    consumed = 0
    for _ in range(ROUNDS):
        consumed += system.update().consumed_count
        violations += len(check_safe(system))
    return consumed / ROUNDS, system.network.dropped, violations


def test_throughput_vs_advert_loss(benchmark):
    rows = run_once(
        benchmark, lambda: [(drop, *run_at(drop)) for drop in DROP_RATES]
    )
    print()
    print(
        format_table(
            ["drop prob", "throughput", "adverts dropped", "safety violations"],
            rows,
        )
    )
    throughputs = [row[1] for row in rows]
    assert all(row[3] == 0 for row in rows), "loss must never break safety"
    assert all(
        later <= earlier + 1e-9
        for earlier, later in zip(throughputs, throughputs[1:])
    ), "throughput should decay monotonically with loss"
    assert throughputs[0] > 0.1 and throughputs[-1] < throughputs[0] / 2
