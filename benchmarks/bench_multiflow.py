"""Multi-commodity throughput and fairness under contention.

Measures the promoted multiflow subsystem (``docs/multiflow.md``) on
the crossing layout the fairness experiments use: ``count``
perpendicular commodities contending for shared crossing cells on an
8x8 grid, under the steady and flash-crowd workload profiles.

Three questions, three recorded numbers per scenario:

* **engine cost** — reference vs incremental rounds/s on the same
  config (identical outcomes, proven by the lockstep harness; the
  delta is engine bookkeeping alone);
* **fairness** — the min/max consumed ratio across commodities
  (1.0 = perfectly fair; 0 = a commodity starved). Round-robin token
  rotation must keep every steady commodity above the floor gate;
* **contention price** — aggregate throughput, for the trajectory
  record (the crossing serializes perpendicular lanes, so per-commodity
  throughput sits below a solo lane while the sum exceeds one).

Results land in ``benchmarks/results/BENCH_multiflow.json`` with the
tracked trajectory copy at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import horizon, run_once

from repro.core.params import Parameters
from repro.multiflow.commodities import default_commodities
from repro.sim.config import SimulationConfig
from repro.sim.simulator import build_simulation

DEFAULT_ROUNDS = 400
PAPER_ROUNDS = 2500  # match the corridor evaluation horizon

REPO_ROOT = Path(__file__).resolve().parent.parent


def crossing_config(rounds: int, count: int, workload: str) -> SimulationConfig:
    """``count`` crossing commodities on an 8x8 grid."""
    return SimulationConfig(
        grid_width=8,
        params=Parameters(l=0.25, rs=0.05, v=0.25),
        rounds=rounds,
        commodities=default_commodities(8, count),
        workload=workload,
        monitors=False,
        seed=7,
    )


def _timed_run(config: SimulationConfig, engine: str) -> dict:
    simulator = build_simulation(config, engine=engine)
    start = time.perf_counter()
    result = simulator.run()
    elapsed = time.perf_counter() - start
    system = simulator.system
    consumed = dict(system.consumed_by_commodity)
    floor = min(consumed.values())
    peak = max(consumed.values())
    return {
        "engine": engine,
        "seconds": elapsed,
        "rounds_per_sec": config.rounds / elapsed,
        "throughput": result.throughput,
        "consumed_by_commodity": consumed,
        "fairness_ratio": (floor / peak) if peak else 0.0,
    }


def _compare(config: SimulationConfig) -> dict:
    reference = _timed_run(config, "reference")
    incremental = _timed_run(config, "incremental")
    # Identical protocol outcomes — the lockstep harness's guarantee.
    assert (
        incremental["consumed_by_commodity"]
        == reference["consumed_by_commodity"]
    )
    return {
        "rounds": config.rounds,
        "commodities": len(config.commodities),
        "workload": config.workload,
        "reference": reference,
        "incremental": incremental,
        "speedup": incremental["rounds_per_sec"] / reference["rounds_per_sec"],
    }


def test_multiflow_throughput(benchmark, results_dir):
    rounds = horizon(DEFAULT_ROUNDS, PAPER_ROUNDS) or PAPER_ROUNDS

    def experiment():
        return {
            "steady_2_crossing": _compare(crossing_config(rounds, 2, "steady")),
            "steady_4_crossing": _compare(crossing_config(rounds, 4, "steady")),
            "flash_crowd_4_crossing": _compare(
                crossing_config(rounds, 4, "flash-crowd")
            ),
        }

    record = run_once(benchmark, experiment)

    payload = json.dumps(record, indent=2, sort_keys=True) + "\n"
    (results_dir / "BENCH_multiflow.json").write_text(payload)
    (REPO_ROOT / "BENCH_multiflow.json").write_text(payload)
    for name, comparison in record.items():
        reference = comparison["reference"]
        print(
            f"\n{name}: {reference['rounds_per_sec']:.0f} r/s reference, "
            f"speedup {comparison['speedup']:.2f}x, throughput "
            f"{reference['throughput']:.4f}, fairness "
            f"{reference['fairness_ratio']:.2f}"
        )

    # Fairness gates. No starvation: every steady commodity delivers.
    # The symmetric 2-commodity crossing must also be near-equal; with 4
    # commodities the inner lanes cross twice as many perpendicular
    # lanes and legitimately deliver less, so only the floor is gated
    # there (the ratio stays in the record as the trajectory metric).
    for name in ("steady_2_crossing", "steady_4_crossing"):
        ledger = record[name]["reference"]["consumed_by_commodity"]
        assert min(ledger.values()) > 0, (
            f"{name}: a commodity starved at the crossing: {ledger}"
        )
    assert record["steady_2_crossing"]["reference"]["fairness_ratio"] >= 0.5, (
        "symmetric 2-commodity crossing should deliver near-equally"
    )
    # Contention price: adding perpendicular commodities must not
    # collapse aggregate delivery.
    assert (
        record["steady_4_crossing"]["reference"]["throughput"]
        > record["steady_2_crossing"]["reference"]["throughput"] * 0.5
    )
