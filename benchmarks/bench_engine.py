"""Round-engine throughput: full-sweep reference vs dirty-set incremental.

Two workloads bracket the incremental engine's operating envelope:

* **quiescent-heavy** — the paper's corridor stretched to 16x16 with the
  complement alive but idle: 16 of 256 cells ever do anything, so a
  full-sweep engine wastes ~94% of every Route/Signal scan on cells
  whose state cannot change. This is the incremental engine's best
  case; the acceptance gate is >= 2x round throughput.
* **dense-saturated** — an 8x8 snake corridor covering *all* 64 cells,
  kept saturated by eager sources: every cell is dirty almost every
  round, so the incremental engine's bookkeeping is pure overhead. The
  gate is a ratio >= 0.9 (at most 10% regression).

Both runs use identical configs and seeds (the engine is an override,
not a config edit — the differential harness proves the outputs are
identical), monitors and observability off, so the measured delta is
engine cost alone. Results land in repo-root ``BENCH_engine.json`` (the
tracked trajectory file) with a working copy in
``benchmarks/results/BENCH_engine.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import horizon, run_once

from repro.grid.paths import snake_path, straight_path
from repro.grid.topology import Direction, Grid
from repro.core.params import Parameters
from repro.sim.config import SimulationConfig
from repro.sim.simulator import build_simulation

DEFAULT_ROUNDS = 600
PAPER_ROUNDS = 2500  # the corridor evaluation horizon (Figures 7-8)

#: The committed trajectory file lives at the repo root (next to the
#: ``BENCH_vectorized.json`` scaling record); ``benchmarks/results/``
#: keeps a working copy alongside the figure artifacts.
REPO_ROOT = Path(__file__).resolve().parent.parent


def quiescent_config(rounds: int) -> SimulationConfig:
    """16x16, straight length-16 corridor, complement alive but idle.

    The 240 off-corridor cells stay *alive*: a full-sweep engine must
    run Route and Signal over every one of them each round even though
    their state never changes after routing stabilizes. (Pre-failing the
    complement would let the reference skip them almost for free — the
    interesting case is quiescent, not dead.)
    """
    return SimulationConfig(
        grid_width=16,
        params=Parameters(l=0.25, rs=0.05, v=0.2),
        rounds=rounds,
        path=straight_path((1, 0), Direction.NORTH, 16).cells,
        fail_complement=False,
        monitors=False,
        seed=7,
    )


def dense_config(rounds: int) -> SimulationConfig:
    """8x8 snake covering all 64 cells, saturated by an eager source."""
    return SimulationConfig(
        grid_width=8,
        params=Parameters(l=0.25, rs=0.05, v=0.2),
        rounds=rounds,
        path=snake_path(Grid(8)).cells,
        fail_complement=False,  # the snake *is* the whole grid
        monitors=False,
        seed=7,
    )


def _timed_run(config: SimulationConfig, engine: str) -> dict:
    simulator = build_simulation(config, engine=engine)
    start = time.perf_counter()
    result = simulator.run()
    elapsed = time.perf_counter() - start
    return {
        "engine": engine,
        "seconds": elapsed,
        "rounds_per_sec": config.rounds / elapsed,
        "throughput": result.throughput,
        "consumed": result.consumed,
    }


def _compare(config: SimulationConfig) -> dict:
    reference = _timed_run(config, "reference")
    incremental = _timed_run(config, "incremental")
    # Identical protocol outcomes — the point of the differential harness.
    assert incremental["consumed"] == reference["consumed"]
    assert incremental["throughput"] == reference["throughput"]
    return {
        "rounds": config.rounds,
        "reference": reference,
        "incremental": incremental,
        "speedup": incremental["rounds_per_sec"] / reference["rounds_per_sec"],
    }


def test_engine_throughput(benchmark, results_dir):
    rounds = horizon(DEFAULT_ROUNDS, PAPER_ROUNDS) or PAPER_ROUNDS

    def experiment():
        return {
            "quiescent_16x16_corridor": _compare(quiescent_config(rounds)),
            "dense_8x8_snake": _compare(dense_config(rounds)),
        }

    record = run_once(benchmark, experiment)

    payload = json.dumps(record, indent=2, sort_keys=True) + "\n"
    (results_dir / "BENCH_engine.json").write_text(payload)
    (REPO_ROOT / "BENCH_engine.json").write_text(payload)
    for name, comparison in record.items():
        print(
            f"\n{name}: reference "
            f"{comparison['reference']['rounds_per_sec']:.0f} r/s, "
            f"incremental "
            f"{comparison['incremental']['rounds_per_sec']:.0f} r/s "
            f"-> {comparison['speedup']:.2f}x"
        )

    # Acceptance gates: the dirty-set engine must earn its keep where the
    # grid is quiescent and must stay within noise where it is not.
    assert record["quiescent_16x16_corridor"]["speedup"] >= 2.0, (
        "incremental engine should be >= 2x on the quiescent-heavy corridor"
    )
    assert record["dense_8x8_snake"]["speedup"] >= 0.9, (
        "incremental engine regressed > 10% on the dense saturated grid"
    )
