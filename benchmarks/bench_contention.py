"""Target-contention scaling bench (see repro/experiments/contention.py).

Offered load grows linearly with the boundary (4N - 4 sources); measured
delivery *decays toward an asymptotic floor* (the four feeder streets'
sustainable rate) while the in-flight queue absorbs the excess.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.experiments.contention import floor_ratio, measure


def test_target_contention_approaches_service_floor(benchmark):
    points = run_once(benchmark, lambda: measure(rounds=1000))
    print()
    print(
        format_table(
            ["grid", "sources", "throughput", "mean in-flight", "mean blocked"],
            [
                (p.grid_n, p.sources, p.throughput, p.mean_in_flight, p.mean_blocked)
                for p in points
            ],
        )
    )
    throughputs = [p.throughput for p in points]
    # Delivery decays with grid size...
    assert all(b <= a + 0.01 for a, b in zip(throughputs, throughputs[1:]))
    # ...toward an asymptote (last two sizes nearly equal)...
    assert floor_ratio(points) > 0.9
    # ...while the queue absorbs the linearly growing offered load.
    assert points[-1].mean_in_flight > 2 * points[0].mean_in_flight
    assert points[-1].mean_blocked > points[0].mean_blocked
