"""Performance microbenchmarks of the protocol implementation itself.

These measure cost, not correctness: per-round update cost as the grid
and the population grow, and the cost of the individual phases. Useful
for catching algorithmic regressions (e.g. an accidental O(cells^2)
scan) when extending the library.
"""

import random

from repro.core.params import Parameters
from repro.core.sources import EagerSource
from repro.core.system import System, build_corridor_system
from repro.grid.paths import snake_path, straight_path
from repro.grid.topology import Direction, Grid

PARAMS = Parameters(l=0.25, rs=0.05, v=0.2)


def corridor(n: int) -> System:
    path = straight_path((1, 0), Direction.NORTH, n)
    return build_corridor_system(Grid(n), PARAMS, path.cells)


def warmed(system: System, rounds: int) -> System:
    system.run(rounds)
    return system


def test_update_round_8x8(benchmark):
    system = warmed(corridor(8), 100)
    benchmark(system.update)


def test_update_round_16x16(benchmark):
    system = warmed(corridor(16), 100)
    benchmark(system.update)


def test_update_round_32x32(benchmark):
    system = warmed(corridor(32), 100)
    benchmark(system.update)


def test_update_round_loaded_snake(benchmark):
    """A fully occupied boustrophedon path: many entities, many grants."""
    grid = Grid(8)
    path = snake_path(grid)
    system = build_corridor_system(grid, PARAMS, path.cells)
    for cell in path.cells[:-1]:  # one entity per cell, centered (safe)
        system.seed_entity(cell, cell[0] + 0.5, cell[1] + 0.5)
    system.run(20)
    assert system.entity_count() > 40
    benchmark(system.update)


def test_route_phase_cost(benchmark):
    from repro.core.route import route_phase

    system = corridor(16)
    benchmark(lambda: route_phase(system.grid, system.cells, system.tid))


def test_signal_phase_cost(benchmark):
    from repro.core.signal import signal_phase

    system = warmed(corridor(16), 50)
    benchmark(lambda: signal_phase(system.grid, system.cells, system.params))


def test_move_phase_cost(benchmark):
    from repro.core.move import move_phase

    system = warmed(corridor(16), 50)
    benchmark(
        lambda: move_phase(system.grid, system.cells, system.params, system.tid)
    )


def test_safety_monitor_cost(benchmark):
    from repro.monitors.safety import check_safe

    system = warmed(corridor(8), 200)
    benchmark(lambda: check_safe(system))


def test_path_distance_cost(benchmark):
    system = System(grid=Grid(32), params=PARAMS, tid=(16, 16))
    benchmark(system.path_distance)
