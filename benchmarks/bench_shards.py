"""Sharded-engine throughput: rounds/s vs district count at 64x64 and
256x256, against the full-sweep reference.

The sharded engine is a *robustness* engine, not a speed engine: its
round cost is the reference sweep split across worker processes plus
per-round boundary serialization and the coordinator's global merge.
This benchmark records where that overhead sits (the committed
``BENCH_shards.json`` trajectory file) and gates only against
pathology: 1-shard mode — the degenerate fleet, pure
coordination overhead — must stay within an order of magnitude of the
reference (>= ``ONE_SHARD_GATE`` of its rounds/s on the 64x64 grid).
Shard-count *correctness* invariance is proven elsewhere
(``tests/test_shard_engine.py``); here both legs just spot-check the
shared-horizon consumed count.

Methodology matches ``bench_vectorized.py``: the straight-corridor
scaling workload, ``engine.step()`` timed directly (simulator probes
are O(N^2) Python per round and would drown the engine delta), and
fleet spawn/teardown excluded from the timed window by stepping once
before the clock starts.
"""

from __future__ import annotations

import json
import time

from conftest import run_once

from bench_engine import REPO_ROOT
from bench_vectorized import scaling_config

from repro.sim.simulator import build_simulation

GRID_SIZES = (64, 256)
SHARD_COUNTS = (1, 4)

#: Per-grid round budgets (shared by every engine leg so the consumed
#: spot-check compares identical horizons).
ROUNDS = {64: 24, 256: 6}

ONE_SHARD_GATE_GRID = 64
ONE_SHARD_GATE = 0.10


def _timed_steps(n: int, engine: str, shards=None) -> dict:
    config = scaling_config(n, ROUNDS[n])
    if shards is not None:
        from dataclasses import replace

        config = replace(config, shards=shards)
    simulator = build_simulation(config, engine=engine)
    stepper = simulator.engine
    try:
        stepper.step()  # spawn the fleet / warm the engine outside the clock
        rounds = ROUNDS[n] - 1
        start = time.perf_counter()
        for _ in range(rounds):
            stepper.step()
        elapsed = time.perf_counter() - start
        return {
            "engine": engine if shards is None else f"{engine}@{shards}",
            "rounds": rounds,
            "seconds": elapsed,
            "rounds_per_sec": rounds / elapsed,
            "consumed": simulator.system.total_consumed,
        }
    finally:
        stepper.close()


def _grid_entry(n: int) -> dict:
    reference = _timed_steps(n, "reference")
    entry = {"grid": n, "reference": reference, "sharded": []}
    for shards in SHARD_COUNTS:
        leg = _timed_steps(n, "sharded", shards=shards)
        leg["shards"] = shards
        leg["vs_reference"] = (
            leg["rounds_per_sec"] / reference["rounds_per_sec"]
        )
        # Identical consumed over the identical horizon — the invariance
        # the lockstep matrix proves, spot-checked per leg.
        assert leg["consumed"] == reference["consumed"]
        entry["sharded"].append(leg)
    return entry


def test_shard_scaling(benchmark, results_dir):
    def experiment():
        return {
            "schema": 1,
            "workload": "straight corridor at x=1, complement alive, "
            "monitors off, engine.step() timed directly, fleet spawn "
            "excluded",
            "entries": [_grid_entry(n) for n in GRID_SIZES],
        }

    record = run_once(benchmark, experiment)

    payload = json.dumps(record, indent=2, sort_keys=True) + "\n"
    (results_dir / "BENCH_shards.json").write_text(payload)
    (REPO_ROOT / "BENCH_shards.json").write_text(payload)

    ratios = {}
    for entry in record["entries"]:
        ref = entry["reference"]["rounds_per_sec"]
        print(f"\nN={entry['grid']}: reference {ref:.1f} r/s")
        for leg in entry["sharded"]:
            ratios[(entry["grid"], leg["shards"])] = leg["vs_reference"]
            print(
                f"  sharded@{leg['shards']}: {leg['rounds_per_sec']:.1f} r/s "
                f"({leg['vs_reference']:.2f}x reference)"
            )

    one_shard = ratios[(ONE_SHARD_GATE_GRID, 1)]
    assert one_shard >= ONE_SHARD_GATE, (
        f"1-shard mode regressed past the coordination-overhead budget on "
        f"the {ONE_SHARD_GATE_GRID}x{ONE_SHARD_GATE_GRID} grid: "
        f"{one_shard:.2f}x reference < {ONE_SHARD_GATE}x"
    )
