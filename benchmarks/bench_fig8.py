"""Figure 8 regeneration: throughput vs number of turns on a length-8 path.

Paper: 8x8 grid, rs = 0.05, K = 2500, four (v, l) combinations, paths of
8 cells with 0..6 turns (the corridor forces the route).

Expected shape (asserted): throughput decreases as turns increase, then
the decrease saturates — the signaling at corners leaves roughly one
entity per cell.
"""

from conftest import horizon, max_retries, point_timeout, run_once, workers

from repro.analysis.ascii_plot import line_plot
from repro.analysis.tables import format_series_table
from repro.experiments import fig8

DEFAULT_ROUNDS = 600


def test_fig8_throughput_vs_turns(benchmark, results_dir):
    rounds = horizon(DEFAULT_ROUNDS, fig8.ROUNDS)

    result = run_once(benchmark, lambda: fig8.run(
            rounds=rounds,
            workers=workers(),
            point_timeout=point_timeout(),
            max_retries=max_retries(),
        ))

    result.save_json(results_dir / "fig8.json")
    result.save_csv(results_dir / "fig8.csv")
    curves = fig8.series(result)
    print()
    print("Figure 8 — throughput vs turns (series = (v, l))")
    print(format_series_table(curves, x_label="turns"))
    print(line_plot(curves, x_label="turns", y_label="throughput"))

    checks = fig8.shape_checks(result)
    print(f"shape checks: {checks}")
    assert checks["turns_hurt"], "turns should reduce throughput"
    assert checks["saturation"], "the decrease should level off"

    assert all(run.monitor_violations == 0 for run in result.runs)
