"""Benchmarks of the extensions: 3-D throughput and multi-flow sharing.

Not paper figures — the paper's conclusion only sketches these
generalizations — but each assertion pins a behavior the extension
claims: 3-D shafts pipeline like 2-D corridors, and crossing flows share
the grid without starving each other.
"""

import random

from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.params import Parameters
from repro.extensions.grid3d import Grid3D, System3D, check_safe_3d
from repro.extensions.multiflow import Flow, MultiFlowSystem
from repro.grid.topology import Grid

ROUNDS = 1500


def test_3d_shaft_throughput(benchmark):
    """A vertical 3-D shaft should pipeline like a 2-D corridor: same
    protocol, one more axis."""

    def run():
        system = System3D(
            grid=Grid3D(1, 1, 8),
            l=0.25,
            rs=0.05,
            v=0.2,
            tid=(0, 0, 7),
            sources=((0, 0, 0),),
            rng=random.Random(0),
        )
        consumed = sum(system.update() for _ in range(ROUNDS))
        assert check_safe_3d(system) == []
        return consumed / ROUNDS

    throughput = run_once(benchmark, run)
    print(f"\n3-D shaft throughput: {throughput:.4f}")
    assert throughput > 0.1


def test_3d_corner_axis_reuse(benchmark):
    """Figure 8's turn penalty generalizes to 3-D — but only for corners
    that *reuse* an axis.

    After a turn, entities travel with their entry-axis coordinate
    snapped to the entry face (l/2 inside). A second turn that exits
    along that previously snapped axis must traverse almost a full cell
    before crossing (~(1-l)/v rounds), keeping the corner's entry slab
    occupied and blocking its inbound — the 2-D slowdown, where two
    turns always share an axis. A 3-D double corner that uses three
    *distinct* axes exits along a coordinate still at the lane center
    (half the traverse), and costs nearly nothing. This effect is only
    expressible in three dimensions.
    """

    def run_route(grid: Grid3D, route) -> float:
        system = System3D(
            grid=grid, l=0.25, rs=0.05, v=0.2, tid=route[-1],
            sources=(route[0],), rng=random.Random(0),
        )
        alive = set(route)
        for cid in grid.cells():
            if cid not in alive:
                system.fail(cid)
        consumed = sum(system.update() for _ in range(ROUNDS))
        assert check_safe_3d(system) == []
        return consumed / ROUNDS

    def run():
        straight = run_route(
            Grid3D(1, 1, 7), [(0, 0, k) for k in range(7)]
        )
        # z -> y -> x: three distinct axes across the two corners.
        distinct = run_route(
            Grid3D(3, 3, 3),
            [(0, 0, 0), (0, 0, 1), (0, 0, 2), (0, 1, 2), (0, 2, 2),
             (1, 2, 2), (2, 2, 2)],
        )
        # z -> x -> z: the second corner exits along the snapped axis.
        reuse = run_route(
            Grid3D(3, 1, 5),
            [(0, 0, 0), (0, 0, 1), (0, 0, 2), (1, 0, 2), (2, 0, 2),
             (2, 0, 3), (2, 0, 4)],
        )
        return [
            ("straight shaft (0 turns)", straight),
            ("double corner, 3 distinct axes", distinct),
            ("double corner, axis reused (2-D-like)", reuse),
        ]

    rows = run_once(benchmark, run)
    print()
    print(format_table(["topology", "throughput"], rows))
    straight, distinct, reuse = (value for _, value in rows)
    assert reuse < 0.85 * straight  # the 2-D-style turn penalty
    assert distinct > 0.95 * straight  # axis-distinct corners are ~free


def test_multiflow_crossing_shares_grid(benchmark):
    """Two crossing flows both deliver, safely and type-exclusively."""

    def run():
        system = MultiFlowSystem(
            grid=Grid(5),
            params=Parameters(l=0.2, rs=0.05, v=0.2),
            flows=[
                Flow(name="eastbound", target=(4, 2), sources=((0, 2),)),
                Flow(name="northbound", target=(2, 4), sources=((2, 0),)),
            ],
            rng=random.Random(0),
        )
        for _ in range(ROUNDS):
            system.update()
        assert system.check_safe() == []
        assert system.check_type_exclusive() == []
        return system.total_consumed

    consumed = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["flow", "consumed", "throughput"],
            [(name, count, count / ROUNDS) for name, count in sorted(consumed.items())],
        )
    )
    assert consumed["eastbound"] > 0
    assert consumed["northbound"] > 0
    ratio = min(consumed.values()) / max(consumed.values())
    assert ratio > 0.5  # the shared junction does not starve either flow
