"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify why the protocol's
mechanisms are load-bearing (see repro/experiments/ablations.py).
"""

import os

from conftest import run_once

from repro.analysis.tables import format_table
from repro.experiments.ablations import (
    centralized_ablation,
    source_policy_ablation,
    token_policy_ablation,
    unsafe_ablation,
)

ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "1500"))


def test_token_policy(benchmark):
    """Round-robin rotation (the paper's rule) vs sticky vs random:
    sticky starves one merge branch entirely (fairness -> 0)."""
    rows = run_once(benchmark, lambda: token_policy_ablation(rounds=ROUNDS))
    print()
    print(
        format_table(
            ["policy", "throughput", "fairness", "per-source"],
            [[r.policy, r.throughput, r.fairness, str(r.per_source_consumed)] for r in rows],
        )
    )
    by_name = {row.policy: row for row in rows}
    assert by_name["round-robin"].fairness > 0.8
    assert by_name["sticky"].fairness < 0.2
    assert by_name["round-robin"].throughput >= by_name["sticky"].throughput


def test_unsafe_baseline(benchmark):
    """Dropping the Signal gap check: more raw throughput, but separation
    violations appear — the exact trade Theorem 5 forbids."""
    rows = run_once(benchmark, lambda: unsafe_ablation(rounds=ROUNDS))
    print()
    print(
        format_table(
            ["variant", "throughput", "safety violations"],
            [[r.variant, r.throughput, r.safety_violations] for r in rows],
        )
    )
    by_name = {row.variant: row for row in rows}
    signaled = by_name["signaled (paper)"]
    greedy = by_name["greedy (no signal)"]
    assert signaled.safety_violations == 0
    assert greedy.safety_violations > 0
    assert greedy.throughput >= signaled.throughput


def test_centralized_baseline(benchmark):
    """A periodic central coordinator under the same churn as the cells:
    its outages make it lose to the distributed protocol."""
    rows = run_once(
        benchmark, lambda: centralized_ablation(rounds=ROUNDS, pf=0.01, pr=0.1)
    )
    print()
    print(
        format_table(
            ["variant", "throughput", "coordinator outage rounds"],
            [[r.variant, r.throughput, r.outage_rounds] for r in rows],
        )
    )
    distributed = rows[0]
    centralized = rows[1]
    assert distributed.throughput > 0
    assert centralized.outage_rounds > 0
    assert distributed.throughput >= centralized.throughput


def test_source_policy(benchmark):
    """Delivered throughput tracks offered load until it hits the eager
    (saturated) ceiling."""
    rows = run_once(benchmark, lambda: source_policy_ablation(rounds=ROUNDS))
    print()
    print(
        format_table(
            ["policy", "offered", "produced", "throughput"],
            [[r.policy, r.offered, r.produced, r.throughput] for r in rows],
        )
    )
    eager = rows[-1]
    assert all(row.throughput <= eager.throughput + 0.01 for row in rows)
    light, heavy = rows[0], rows[-2]
    assert light.throughput < heavy.throughput
