"""Figure 7 regeneration: throughput vs safety spacing rs, per velocity.

Paper: 8x8 grid, l = 0.25, straight length-8 corridor <1,0>..<1,7>,
K = 2500, velocities {0.05, 0.1, 0.2, 0.25}, rs sweeping the x-axis.

Expected shape (asserted): throughput decreases in rs; faster cells win
at mid-range rs; all curves saturate by rs ~ 0.55 (one entity per cell).
"""

from conftest import horizon, max_retries, point_timeout, run_once, workers

from repro.analysis.ascii_plot import line_plot
from repro.analysis.tables import format_series_table
from repro.experiments import fig7

DEFAULT_ROUNDS = 600


def test_fig7_throughput_vs_safety_spacing(benchmark, results_dir):
    rounds = horizon(DEFAULT_ROUNDS, fig7.ROUNDS)

    result = run_once(benchmark, lambda: fig7.run(
            rounds=rounds,
            workers=workers(),
            point_timeout=point_timeout(),
            max_retries=max_retries(),
        ))

    result.save_json(results_dir / "fig7.json")
    result.save_csv(results_dir / "fig7.csv")
    curves = fig7.series(result)
    print()
    print("Figure 7 — throughput vs rs (series = velocity v)")
    print(format_series_table(curves, x_label="rs"))
    print(line_plot(curves, x_label="rs", y_label="throughput"))

    checks = fig7.shape_checks(result)
    print(f"shape checks: {checks}")
    assert checks["monotone_rs"], "throughput should not increase with rs"
    assert checks["saturation"], "curves should plateau at large rs"
    assert checks["velocity_order_at_mid_rs"], "faster cells should win at mid rs"

    # Every run executed with the strict monitor suite: Theorem 5 held.
    assert all(run.monitor_violations == 0 for run in result.runs)
