"""Shared benchmark configuration.

Each figure benchmark regenerates the corresponding paper plot: it runs
the experiment sweep (timed via pytest-benchmark), prints the series
table and an ASCII rendering of the figure, saves JSON/CSV artifacts
under ``benchmarks/results/``, and asserts the paper's qualitative shape
checks.

Horizons: the paper uses K = 2500 (Figures 7-8) and K = 20000 (Figure
9). By default the benchmarks run scaled-down horizons so the whole
harness finishes in minutes; set ``REPRO_FULL=1`` for the paper's exact
horizons, or ``REPRO_BENCH_ROUNDS=<k>`` to pick one explicitly.

Parallelism: set ``REPRO_WORKERS=<n>`` (or ``0`` for one worker per CPU)
to fan each figure sweep out over a process pool — results are identical
to serial execution (the sweeps are deterministic per point), only the
wall clock changes.

Supervision: set ``REPRO_POINT_TIMEOUT=<seconds>`` to kill and retry
sweep points that hang past a wall-clock budget, and
``REPRO_MAX_RETRIES=<n>`` to change the per-point retry budget (default
2). Retries re-run the identical seeded config, so supervised results
stay identical to serial execution; an unattended overnight harness run
cannot be stalled by a single wedged point.

Engine: set ``REPRO_ENGINE=incremental`` to run every simulation through
the dirty-set round engine instead of the full-sweep reference (see
``docs/performance.md``). Results are byte-identical either way — the
differential harness proves it — so the toggle only changes round
throughput. The env var inherits into sweep worker processes, making it
the one switch that covers serial, parallel, and supervised execution.

Observability: ``REPRO_METRICS=1`` collects protocol metrics into every
``SimulationResult`` and ``REPRO_TRACE=<dir>`` streams per-run protocol
events as JSONL (one ``trace-<fingerprint>.jsonl`` per point) — see
``docs/observability.md``. Leave both unset when *measuring*: tracing
serializes every protocol event and perturbs timings by design. The
timing figures quoted in observability.md's overhead table were taken
with this harness's default (observability off) as the 1.00x baseline.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def horizon(default: int, paper: int) -> Optional[int]:
    """Effective per-point horizon for a figure benchmark.

    Returns None (meaning "the paper's K") when REPRO_FULL is set.
    """
    if os.environ.get("REPRO_FULL"):
        return None
    override = os.environ.get("REPRO_BENCH_ROUNDS")
    if override:
        return int(override)
    return default


def workers() -> int:
    """Process count for sweep execution (``REPRO_WORKERS``, default 1)."""
    return int(os.environ.get("REPRO_WORKERS", "1"))


def point_timeout() -> Optional[float]:
    """Per-point wall-clock budget (``REPRO_POINT_TIMEOUT``, default off)."""
    override = os.environ.get("REPRO_POINT_TIMEOUT")
    return float(override) if override else None


def max_retries() -> int:
    """Per-point retry budget (``REPRO_MAX_RETRIES``, default 2)."""
    return int(os.environ.get("REPRO_MAX_RETRIES", "2"))


def engine() -> Optional[str]:
    """Round engine override (``REPRO_ENGINE``, default None = reference)."""
    return os.environ.get("REPRO_ENGINE") or None


@pytest.fixture
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
