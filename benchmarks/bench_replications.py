"""Statistical rigor bench: multi-seed replications of a Figure 9 point.

The paper reports single-run throughputs. Under fault churn the estimate
is a random variable; this bench runs independent replications of a
mid-sweep Figure 9 point, reports mean +/- CI, and asserts the relative
CI half-width is small enough that single-run comparisons between
adjacent pf values (which differ by ~20-40%) are meaningful.
"""

from conftest import run_once

from repro.analysis.aggregate import summarize
from repro.analysis.tables import format_table
from repro.core.params import Parameters
from repro.grid.paths import straight_path
from repro.grid.topology import Direction
from repro.sim.config import FaultSpec, SimulationConfig
from repro.sim.runner import run_replications

PATH = straight_path((1, 0), Direction.NORTH, 8)
REPLICATIONS = 6
ROUNDS = 4000


def config(pf: float, pr: float) -> SimulationConfig:
    return SimulationConfig(
        grid_width=8,
        params=Parameters(l=0.2, rs=0.05, v=0.2),
        rounds=ROUNDS,
        path=PATH.cells,
        fail_complement=False,
        fault=FaultSpec(pf=pf, pr=pr),
        seed=90,
    )


def test_fig9_point_replication_ci(benchmark):
    def run():
        rows = []
        for pf in (0.02, 0.03):
            runs = run_replications(config(pf, pr=0.1), REPLICATIONS)
            rows.append((pf, summarize(runs)))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["pf", "mean throughput", "CI half-width", "n"],
            [
                (pf, s.mean, s.ci_half_width, s.count)
                for pf, s in rows
            ],
        )
    )
    for pf, summary in rows:
        assert summary.count == REPLICATIONS
        # Seed-to-seed noise is small relative to the effect sizes the
        # figure interprets.
        assert summary.ci_half_width < 0.2 * summary.mean
    # The pf effect exceeds the noise: adjacent points are separable.
    (pf_a, summary_a), (pf_b, summary_b) = rows
    gap = summary_a.mean - summary_b.mean
    assert gap > summary_a.ci_half_width + summary_b.ci_half_width