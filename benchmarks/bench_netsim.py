"""Benchmarks of the message-passing implementation.

Two questions: what does the protocol *cost* on the wire (messages per
round per cell, by type), and what does realizing shared variables as
three broadcast sub-rounds cost in wall-clock versus the shared-variable
model?
"""

import random

from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.params import Parameters
from repro.core.sources import EagerSource
from repro.core.system import System
from repro.grid.paths import straight_path
from repro.grid.topology import Direction, Grid
from repro.netsim.runtime import MessagePassingSystem

PARAMS = Parameters(l=0.25, rs=0.05, v=0.2)


def build_passing(n: int) -> MessagePassingSystem:
    path = straight_path((1, 0), Direction.NORTH, n)
    system = MessagePassingSystem(
        grid=Grid(n),
        params=PARAMS,
        tid=path.target,
        sources={path.source: EagerSource()},
        rng=random.Random(0),
    )
    for cid in Grid(n).cells():
        if cid not in path:
            system.fail(cid)
    return system


def test_update_round_message_passing_8x8(benchmark):
    system = build_passing(8)
    system.run(100)
    benchmark(system.update)


def test_update_round_message_passing_16x16(benchmark):
    system = build_passing(16)
    system.run(100)
    benchmark(system.update)


def test_message_cost_accounting(benchmark):
    """Wire cost of 500 corridor rounds, reported by message type.

    The steady-state advert cost is exactly
    ``3 x sum(live cell degree)`` per round; transfers add the traffic
    itself. The assertion pins the advert count so protocol changes that
    alter communication cost are caught.
    """

    def run():
        system = build_passing(8)
        system.run(500)
        return system

    system = run_once(benchmark, run)
    stats = system.network.stats
    print()
    print(
        format_table(
            ["message type", "total", "per round"],
            [
                (name, count, count / 500)
                for name, count in sorted(stats.sent_by_type.items())
            ],
        )
    )
    degree_sum = sum(
        len(system.grid.neighbors(cid)) for cid in system.non_faulty_cells()
    )
    for advert in ("RouteAdvert", "OccupancyAdvert", "GrantAdvert"):
        assert stats.sent_by_type[advert] == degree_sum * 500
    assert stats.sent_by_type["EntityTransferMessage"] >= system.total_consumed
