"""Vectorized-engine scaling: array-native sweeps vs the full-sweep
reference at N in {16, 64, 256, 1024}.

The workload is the paper's straight corridor at ``x = 1`` stretched to
an ``N x N`` grid with the complement alive but idle — the shape whose
Route/Signal sweeps are pure per-cell overhead for the object engines,
and exactly what the structure-of-arrays core turns into whole-grid
numpy operations.

Methodology: each measurement times ``engine.step()`` directly (system
construction excluded), not ``Simulator.step()`` — the simulator's
occupancy/entity probes are themselves ``O(N^2)`` Python per round and
would drown the engine delta at the largest grids. The reference engine
is measured up to 256 (a 1024x1024 full Python sweep takes minutes per
round); at 1024 the vectorized engine runs alone and its entry records
``speedup: null``.

The acceptance gate is the tentpole's bar: >= 10x over the reference on
the 64x64 grid. Results land in repo-root ``BENCH_vectorized.json``
(the tracked trajectory file; schema: engine, grid N, rounds/sec,
speedup) with a working copy in ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import time

from conftest import run_once

from repro.core.params import Parameters
from repro.grid.paths import straight_path
from repro.grid.topology import Direction
from repro.sim.config import SimulationConfig
from repro.sim.simulator import build_simulation

from bench_engine import REPO_ROOT

GRID_SIZES = (16, 64, 256, 1024)

#: Per-grid round budgets: enough rounds for a stable per-round figure,
#: small enough that the whole scan stays in benchmark-smoke territory.
VECTORIZED_ROUNDS = {16: 400, 64: 200, 256: 40, 1024: 8}
REFERENCE_ROUNDS = {16: 400, 64: 40, 256: 8}

SPEEDUP_GATE_GRID = 64
SPEEDUP_GATE = 10.0


def scaling_config(n: int, rounds: int) -> SimulationConfig:
    """N x N grid, straight length-N corridor at x=1, complement idle."""
    return SimulationConfig(
        grid_width=n,
        params=Parameters(l=0.25, rs=0.05, v=0.2),
        rounds=rounds,
        path=straight_path((1, 0), Direction.NORTH, n).cells,
        fail_complement=False,
        monitors=False,
        seed=7,
    )


def _timed_steps(n: int, engine: str, rounds: int) -> dict:
    simulator = build_simulation(scaling_config(n, rounds), engine=engine)
    stepper = simulator.engine
    start = time.perf_counter()
    for _ in range(rounds):
        stepper.step()
    elapsed = time.perf_counter() - start
    return {
        "engine": engine,
        "rounds": rounds,
        "seconds": elapsed,
        "rounds_per_sec": rounds / elapsed,
        "consumed": simulator.system.total_consumed,
    }


def _scaling_entry(n: int) -> dict:
    vectorized = _timed_steps(n, "vectorized", VECTORIZED_ROUNDS[n])
    entry = {"grid": n, "vectorized": vectorized, "speedup": None}
    if n in REFERENCE_ROUNDS:
        reference = _timed_steps(n, "reference", REFERENCE_ROUNDS[n])
        entry["reference"] = reference
        entry["speedup"] = (
            vectorized["rounds_per_sec"] / reference["rounds_per_sec"]
        )
        # Both engines consumed identically over the shared horizon —
        # the differential harness's promise, spot-checked here.
        shared = min(VECTORIZED_ROUNDS[n], REFERENCE_ROUNDS[n])
        if shared == VECTORIZED_ROUNDS[n] == REFERENCE_ROUNDS[n]:
            assert vectorized["consumed"] == reference["consumed"]
    return entry


def test_vectorized_scaling(benchmark, results_dir):
    def experiment():
        return {
            "schema": 1,
            "workload": "straight corridor at x=1, complement alive, "
            "monitors off, engine.step() timed directly",
            "entries": [_scaling_entry(n) for n in GRID_SIZES],
        }

    record = run_once(benchmark, experiment)

    payload = json.dumps(record, indent=2, sort_keys=True) + "\n"
    (results_dir / "BENCH_vectorized.json").write_text(payload)
    (REPO_ROOT / "BENCH_vectorized.json").write_text(payload)

    speedups = {}
    for entry in record["entries"]:
        vec = entry["vectorized"]["rounds_per_sec"]
        speedups[entry["grid"]] = entry["speedup"]
        label = (
            f"{entry['speedup']:.1f}x" if entry["speedup"] else "(vec only)"
        )
        print(f"\nN={entry['grid']}: vectorized {vec:.0f} r/s {label}")

    # The tentpole's acceptance bar: >= 10x on the 64x64 grid.
    assert speedups[SPEEDUP_GATE_GRID] >= SPEEDUP_GATE, (
        f"vectorized engine should be >= {SPEEDUP_GATE}x the reference on "
        f"the {SPEEDUP_GATE_GRID}x{SPEEDUP_GATE_GRID} grid, got "
        f"{speedups[SPEEDUP_GATE_GRID]:.1f}x"
    )
