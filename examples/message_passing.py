#!/usr/bin/env python3
"""The protocol over real messages — and its wire cost.

The paper specifies ``System`` with shared variables but describes the
intended implementation: each round, every cell broadcasts its state to
its neighbors. This example runs that implementation
(:mod:`repro.netsim`): one paper round becomes three broadcast
sub-rounds (dist -> Route, next/occupancy -> Signal, grant -> Move) plus
entity hand-off messages.

It then runs the shared-variable model side by side under the same
scripted failures and checks, round by round, that both are in exactly
the same state — the bisimulation that justifies analyzing the simple
model while deploying the message-passing one.

Run:  python examples/message_passing.py
"""

import random

from repro import EagerSource, Parameters, System
from repro.grid import Direction, Grid, straight_path
from repro.netsim import MessagePassingSystem

ROUNDS = 1000
FAULT_PLAN = {100: ("fail", (1, 4)), 400: ("recover", (1, 4))}


def build(cls, path):
    system = cls(
        grid=Grid(8),
        params=Parameters(l=0.25, rs=0.05, v=0.2),
        tid=path.target,
        sources={path.source: EagerSource()},
        rng=random.Random(0),
    )
    for cid in Grid(8).cells():
        if cid not in path:
            system.fail(cid)
    return system


def fingerprint(cells):
    return {
        cid: (
            state.failed,
            state.dist,
            state.next_id,
            state.signal,
            tuple(
                (uid, round(e.x, 9), round(e.y, 9))
                for uid, e in sorted(state.members.items())
            ),
        )
        for cid, state in cells.items()
    }


def main() -> None:
    path = straight_path((1, 0), Direction.NORTH, 8)
    shared = build(System, path)
    passing = build(MessagePassingSystem, path)

    divergence = None
    messages = 0
    for round_index in range(ROUNDS):
        if round_index in FAULT_PLAN:
            kind, cell = FAULT_PLAN[round_index]
            for system in (shared, passing):
                getattr(system, kind)(cell)
        shared.update()
        report = passing.update()
        messages += report.messages_sent
        if fingerprint(shared.cells) != fingerprint(passing.cells):
            divergence = round_index
            break

    print(f"rounds executed:        {ROUNDS}")
    print(f"fault plan:             {FAULT_PLAN}")
    print(
        "bisimulation:           "
        + ("IDENTICAL every round" if divergence is None else f"DIVERGED at {divergence}")
    )
    print(f"entities delivered:     {passing.total_consumed} "
          f"(shared model: {shared.total_consumed})")
    print(f"total messages:         {messages}")
    print(f"messages per round:     {messages / ROUNDS:.1f}")
    stats = passing.network.stats
    print("by type:")
    for name, count in sorted(stats.sent_by_type.items()):
        print(f"  {name:<24} {count:>8}  ({count / ROUNDS:.2f}/round)")
    print(f"suppressed (crashed):   {stats.suppressed_from_crashed}")


if __name__ == "__main__":
    main()
