#!/usr/bin/env python3
"""Exhaustive model checking of the protocol on a tiny instance.

The paper proves Theorem 5 by assertional reasoning. For instances small
enough to enumerate, this reproduction can do better than sampling: it
explores *every* reachable state — across all interleavings of crash
failures with synchronous rounds — and checks the safety property on
each one.

The second half shows the flip side: the same explorer, pointed at the
signal-free greedy baseline, automatically finds a concrete
counterexample trace leading to a separation violation.

Run:  python examples/model_checking.py
"""

import random

from repro import EagerSource, Parameters, System
from repro.baselines import UnsafeSystem
from repro.core.sources import CappedSource
from repro.dts import explore
from repro.dts.system_adapter import SystemDTS
from repro.grid import Grid
from repro.monitors import check_safe

PARAMS = Parameters(l=0.25, rs=0.3, v=0.25)  # d = 0.55


def build(cls) -> System:
    """A 3x2 world where two flows merge at the *intermediate* cell (1,0):
    source (0,0) enters it from the west, source (1,1) from the north,
    and both continue east to the target (2,0). Simultaneous entry into a
    non-target cell is exactly the scenario the Signal mutual exclusion
    prevents."""
    system = cls(
        grid=Grid(3, 2),
        params=PARAMS,
        tid=(2, 0),
        sources={
            (0, 0): CappedSource(EagerSource(), limit=2),
            (1, 1): CappedSource(EagerSource(), limit=2),
        },
        rng=random.Random(0),
    )
    return system


def main() -> None:
    print("=== 1. Exhaustive safety check of the paper's protocol ===")
    dts = SystemDTS(build(System), crashable=[(1, 0)])
    result = explore(
        dts,
        predicate=lambda key: not check_safe(dts.snapshot(key)),
        max_states=500_000,
    )
    print(f"reachable states explored: {result.state_count}")
    print(f"exploration complete:      {result.complete}")
    print(f"Safe (Theorem 5) violated: {result.violation is not None}")
    assert result.violation is None and result.complete

    print()
    print("=== 2. Counterexample search against the greedy baseline ===")
    unsafe_dts = SystemDTS(build(UnsafeSystem))
    unsafe_result = explore(
        unsafe_dts,
        predicate=lambda key: not check_safe(unsafe_dts.snapshot(key)),
        max_states=500_000,
    )
    if unsafe_result.violation is None:
        print("no violation found in", unsafe_result.state_count, "states")
        return
    trace = unsafe_result.trace_to(unsafe_result.violation)
    print(f"violation found after exploring {unsafe_result.state_count} states")
    print(f"counterexample trace ({len(trace)} steps):")
    for action, key in trace:
        snapshot = unsafe_dts.snapshot(key)
        positions = {
            e.uid: (round(e.x, 3), round(e.y, 3)) for e in snapshot.all_entities()
        }
        print(f"  {action or 'init':>8} -> entities {positions}")
    final = unsafe_dts.snapshot(unsafe_result.violation)
    for violation in check_safe(final):
        print(f"  VIOLATION: {violation}")


if __name__ == "__main__":
    main()
