#!/usr/bin/env python3
"""Quickstart: the paper's Figure 7 setup in ~30 lines.

Builds the 8x8 corridor system (source <1,0>, target <1,7>, every
off-path cell failed), runs 2500 synchronous rounds with the full
runtime-verification suite attached, and prints the measured throughput
alongside a final snapshot of the grid.

Run:  python examples/quickstart.py
"""

from repro import MonitorSuite, Parameters, build_corridor_system
from repro.grid import Direction, Grid, straight_path
from repro.viz import render_grid

ROUNDS = 2500


def main() -> None:
    grid = Grid(8)
    path = straight_path((1, 0), Direction.NORTH, 8)
    params = Parameters(l=0.25, rs=0.05, v=0.2)

    system = build_corridor_system(grid, params, path.cells)
    monitors = MonitorSuite().attach(system)  # raises on any violation

    consumed = 0
    for _ in range(ROUNDS):
        report = system.update()
        monitors.after_round(system, report)
        consumed += report.consumed_count

    print(f"rounds:     {ROUNDS}")
    print(f"produced:   {system.total_produced}")
    print(f"consumed:   {consumed}")
    print(f"throughput: {consumed / ROUNDS:.4f} entities/round")
    print(f"safety:     Theorem 5 checked on every round — "
          f"{'CLEAN' if monitors.clean else 'VIOLATED'}")
    print()
    print(render_grid(system))


if __name__ == "__main__":
    main()
