#!/usr/bin/env python3
"""Reproduce the paper's Figure 1 scene as an SVG.

Figure 1 shows a 4x4 instance: target ``<2,2>`` (green), source set
``SID = {<1,0>}`` (blue), cell ``<2,1>`` failed (red), entities drawn
with their safety regions, and the ``next`` arrows of the routing field.
This example builds that exact configuration, lets routing converge and
a little traffic flow, and writes ``figure1.svg`` plus the ASCII
rendering for terminals.

Run:  python examples/figure1_scene.py [output.svg]
"""

import sys

from repro import EagerSource, MonitorSuite, Parameters, System
from repro.grid import Grid
from repro.viz import render_grid, render_routes, save_svg

ROUNDS = 60


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "figure1.svg"
    system = System(
        grid=Grid(4),
        params=Parameters(l=0.25, rs=0.1, v=0.2),
        tid=(2, 2),
        sources={(1, 0): EagerSource()},
    )
    system.fail((2, 1))
    monitors = MonitorSuite().attach(system)
    for _ in range(ROUNDS):
        report = system.update()
        monitors.after_round(system, report)

    path = save_svg(
        system,
        out,
        title=f"Figure 1 scene after {ROUNDS} rounds "
        f"(consumed {system.total_consumed}, safety clean: {monitors.clean})",
    )
    print(render_grid(system))
    print()
    print(render_routes(system))
    print()
    print(f"SVG written to {path}")
    print(f"entities consumed: {system.total_consumed}; safety: "
          f"{'CLEAN' if monitors.clean else 'VIOLATED'}")


if __name__ == "__main__":
    main()
