#!/usr/bin/env python3
"""Highway under failures — self-stabilization end to end.

A 12-cell highway (the coupled high-density regime the paper motivates:
vehicles in a cell move as a lattice) suffers a burst of crash/recovery
churn in its control software, then the faults cease. The example shows
the paper's three claims live:

1. **Safety through the churn** — the monitor suite checks Theorem 5,
   Invariants 1-2, H, and Lemma 4 every round, including mid-outage.
2. **Routing stabilization** — after the last fault, the example measures
   how many rounds until every cell's dist/next matches the BFS ground
   truth (Lemma 6 / Corollary 7 promise O(N^2)).
3. **Progress resumes** — throughput collapses during the outage and
   recovers after it.

Run:  python examples/highway_failures.py
"""

import random

from repro import EagerSource, MonitorSuite, Parameters, System
from repro.faults import BernoulliFaultModel, FaultInjector
from repro.faults.model import WindowedFaultModel
from repro.grid import Grid
from repro.monitors import routing_matches_ground_truth

GRID = Grid(12, 3)  # a 3-lane highway, 12 cells long
ENTRY = (0, 1)
EXIT = (11, 1)
CHURN_START, CHURN_STOP = 500, 1000
ROUNDS = 2500
WINDOW = 100


def main() -> None:
    params = Parameters(l=0.2, rs=0.05, v=0.2)
    system = System(
        grid=GRID,
        params=params,
        tid=EXIT,
        sources={ENTRY: EagerSource()},
        rng=random.Random(3),
    )
    monitors = MonitorSuite().attach(system)
    injector = FaultInjector(
        WindowedFaultModel(
            inner=BernoulliFaultModel(
                pf=0.03, pr=0.1, immune=frozenset({EXIT})
            ),
            start=CHURN_START,
            stop=CHURN_STOP,
            recover_all_at_stop=True,
        ),
        rng=random.Random(99),
    )

    consumed_in_window = []
    window_count = 0
    stabilized_after = None
    for round_index in range(ROUNDS):
        injector.apply(system)
        report = system.update()
        monitors.after_round(system, report)
        window_count += report.consumed_count
        if (round_index + 1) % WINDOW == 0:
            consumed_in_window.append(window_count)
            window_count = 0
        if (
            stabilized_after is None
            and round_index > CHURN_STOP
            and routing_matches_ground_truth(system)
        ):
            stabilized_after = round_index - CHURN_STOP

    print(f"highway: {GRID.width}x{GRID.height}, entry {ENTRY}, exit {EXIT}")
    print(f"churn window: rounds [{CHURN_START}, {CHURN_STOP}) with pf=0.03 pr=0.1")
    print(f"total failures injected: {injector.total_failures}")
    print()
    print(f"{'rounds':>12} | {'throughput':>10} | phase")
    for index, count in enumerate(consumed_in_window):
        start = index * WINDOW
        if start < CHURN_START:
            phase = "nominal"
        elif start < CHURN_STOP:
            phase = "CHURN"
        else:
            phase = "recovered"
        bar = "#" * int(200 * count / WINDOW)
        print(f"{start:>5}-{start + WINDOW:>5} | {count / WINDOW:>10.3f} | {phase:<10} {bar}")
    print()
    print(f"safety (Theorem 5 et al.): {'CLEAN' if monitors.clean else 'VIOLATED'}")
    print(
        "routing stabilized "
        f"{stabilized_after} rounds after churn stopped "
        f"(Corollary 7 bound: O(N^2) = {GRID.size})"
    )
    before = sum(consumed_in_window[: CHURN_START // WINDOW]) / CHURN_START
    after = sum(consumed_in_window[CHURN_STOP // WINDOW :]) / (ROUNDS - CHURN_STOP)
    print(f"throughput before churn: {before:.3f}, after recovery: {after:.3f}")


if __name__ == "__main__":
    main()
