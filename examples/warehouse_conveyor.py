#!/usr/bin/env python3
"""Warehouse conveyor routing — the paper's package-routing motivation.

The introduction cites "packages being routed on a grid of
multi-directional conveyors" as a setting where entities are passive and
cells are active. This example builds a 10x10 conveyor floor with:

* three intake stations (sources) on the west wall,
* one shipping dock (target) on the east wall,
* fixed obstacles (support pillars, dead conveyors) as pre-failed cells,

and routes packages with the distributed protocol. No conveyor ever
holds two packages closer than the safety gap (checked every round), and
the self-stabilizing routing finds ways around the obstacles on its own —
nothing is precomputed.

Run:  python examples/warehouse_conveyor.py
"""

import random

from repro import EagerSource, MonitorSuite, Parameters, Simulator, System
from repro.grid import Grid
from repro.metrics import latency_stats
from repro.viz import render_grid, render_routes

ROUNDS = 3000
FLOOR = Grid(10)
DOCK = (9, 4)
INTAKES = [(0, 1), (0, 4), (0, 8)]
PILLARS = [
    (3, 3), (3, 4), (3, 5),          # a wall of pillars with gaps
    (6, 0), (6, 1), (6, 2),          # dead conveyors near the south edge
    (6, 7), (6, 8), (6, 9),          # and near the north edge
    (5, 5),
]


def main() -> None:
    params = Parameters(l=0.2, rs=0.1, v=0.1)
    system = System(
        grid=FLOOR,
        params=params,
        tid=DOCK,
        sources={intake: EagerSource() for intake in INTAKES},
        rng=random.Random(7),
    )
    for pillar in PILLARS:
        system.fail(pillar)

    simulator = Simulator(system=system, rounds=ROUNDS, monitors=MonitorSuite())
    result = simulator.run()

    print("conveyor floor after", ROUNDS, "rounds:")
    print(render_grid(system))
    print()
    print("routing field (arrows = next conveyor toward the dock):")
    print(render_routes(system))
    print()
    print(f"packages shipped:    {result.consumed}")
    print(f"floor throughput:    {result.throughput:.4f} packages/round")
    print(f"packages in transit: {result.in_flight}")
    print(f"safety violations:   {result.monitor_violations} (Theorem 5 held)")

    latencies = simulator.tracker.latencies()
    if latencies:
        stats = latency_stats(latencies)
        print(
            f"transit latency:     mean {stats.mean:.0f}, median {stats.median:.0f}, "
            f"p95 {stats.p95:.0f}, max {stats.maximum:.0f} rounds"
        )

    per_intake = {}
    for record in simulator.tracker.consumed():
        per_intake[record.source] = per_intake.get(record.source, 0) + 1
    print("shipped per intake: ", {str(k): v for k, v in sorted(per_intake.items())})


if __name__ == "__main__":
    main()
