"""Aggregation of simulation results across replications."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Sequence, Tuple

from repro.metrics.series import mean_and_ci
from repro.sim.results import SimulationResult


@dataclass(frozen=True)
class Summary:
    """Mean and CI half-width of one metric over grouped runs."""

    count: int
    mean: float
    ci_half_width: float

    def __str__(self) -> str:
        return f"{self.mean:.4f} +/- {self.ci_half_width:.4f} (n={self.count})"


def summarize(
    runs: Sequence[SimulationResult],
    metric: Callable[[SimulationResult], float] = lambda r: r.throughput,
) -> Summary:
    """Mean/CI of a metric over runs."""
    values = [metric(run) for run in runs]
    mean, half = mean_and_ci(values)
    return Summary(count=len(values), mean=mean, ci_half_width=half)


def aggregate_by(
    runs: Sequence[SimulationResult],
    key: Callable[[SimulationResult], Hashable],
    metric: Callable[[SimulationResult], float] = lambda r: r.throughput,
) -> Dict[Hashable, Summary]:
    """Group runs by ``key`` and summarize ``metric`` per group."""
    groups: Dict[Hashable, List[SimulationResult]] = {}
    for run in runs:
        groups.setdefault(key(run), []).append(run)
    return {group: summarize(members, metric) for group, members in groups.items()}


def curve(
    runs: Sequence[SimulationResult],
    x_key: str,
    metric: Callable[[SimulationResult], float] = lambda r: r.throughput,
) -> List[Tuple[float, float, float]]:
    """``(x, mean, ci)`` points for runs keyed by an ``extras`` field."""
    grouped = aggregate_by(runs, key=lambda r: r.extras[x_key], metric=metric)
    return [
        (x, summary.mean, summary.ci_half_width)
        for x, summary in sorted(grouped.items())
    ]
