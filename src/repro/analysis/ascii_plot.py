"""Terminal line plots.

Good enough to eyeball the shape of a reproduced figure directly in CI
logs — monotonicity, crossovers, and saturation are all visible — without
any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

_MARKERS = "ox+*#@%&"


def line_plot(
    curves: Dict,
    width: int = 64,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render ``{series_key: [(x, y), ...]}`` as an ASCII scatter/line plot."""
    all_points: List[Tuple[float, float]] = [
        point for points in curves.values() for point in points
    ]
    if not all_points:
        return "(no data)"
    xs = [x for x, _ in all_points]
    ys = [y for _, y in all_points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    legend: List[str] = []
    for index, key in enumerate(sorted(curves, key=repr)):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} = {key}")
        for x, y in curves[key]:
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((y - y_lo) / y_span * (height - 1))
            canvas[height - 1 - row][col] = marker

    lines = [f"{y_label} (top={y_hi:.4f}, bottom={y_lo:.4f})"]
    lines.extend("|" + "".join(row) for row in canvas)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: left={x_lo:g}, right={x_hi:g}")
    lines.extend(" " + entry for entry in legend)
    return "\n".join(lines)
