"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], float_format: str = "{:.4f}"
) -> str:
    """A padded, pipe-separated text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = [
        " | ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in rendered_rows:
        lines.append(" | ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def format_series_table(
    curves: Dict, x_label: str, value_label: str = "throughput"
) -> str:
    """Render ``{series_key: [(x, y), ...]}`` as one wide table.

    Series become columns; the x values (unioned across series) become
    rows — the same layout as reading points off the paper's figures.
    """
    series_keys = sorted(curves, key=repr)
    xs = sorted({x for points in curves.values() for x, _ in points})
    lookup = {key: dict(points) for key, points in curves.items()}
    headers = [x_label] + [f"{value_label}[{key}]" for key in series_keys]
    rows: List[List] = []
    for x in xs:
        row: List = [x]
        for key in series_keys:
            value = lookup[key].get(x)
            row.append("-" if value is None else value)
        rows.append(row)
    return format_table(headers, rows)
