"""Throughput-estimate convergence analysis.

The paper defines average throughput as the large-``K`` limit of the
K-round throughput and picks ``K = 2500`` (``20000`` under churn)
without further justification. This module makes that choice auditable:
given a per-round consumption series, it finds the earliest horizon at
which the running estimate enters a band around its final value and
stays there, and how much margin the chosen ``K`` left after that point.

Note the intrinsic limit of a self-referential check: the final estimate
always matches itself, so ``settled_at`` always exists; what separates a
trustworthy horizon from a dubious one is the *margin* — the fraction of
the run spent inside the band. A margin near zero means the estimate was
still drifting when the run ended.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.metrics.throughput import ThroughputMeter


@dataclass(frozen=True)
class ConvergenceReport:
    """Outcome of a convergence scan over a consumption series."""

    rounds: int
    final_estimate: float
    settled_at: int
    """Earliest round index from which every running estimate stays
    within the tolerance band of the final estimate."""

    relative_tolerance: float

    @property
    def margin(self) -> float:
        """Fraction of the horizon spent after settling (1 = immediate)."""
        return 1.0 - self.settled_at / self.rounds

    def converged(self, min_margin: float = 0.5) -> bool:
        """Did the run spend at least ``min_margin`` of its rounds settled?"""
        return self.margin >= min_margin


def convergence_report(
    per_round: Sequence[int], relative_tolerance: float = 0.05
) -> ConvergenceReport:
    """Scan a consumption series for estimate convergence.

    The running estimate at round ``k`` is the cumulative ``k``-round
    throughput; ``settled_at`` is one past the last round whose estimate
    fell outside ``relative_tolerance`` of the final estimate.
    """
    if not per_round:
        raise ValueError("empty consumption series")
    if relative_tolerance <= 0:
        raise ValueError("relative_tolerance must be positive")
    rounds = len(per_round)
    final = sum(per_round) / rounds
    if final == 0.0:
        # Nothing was ever delivered; the zero estimate is trivially settled.
        return ConvergenceReport(
            rounds=rounds,
            final_estimate=0.0,
            settled_at=0,
            relative_tolerance=relative_tolerance,
        )
    band = relative_tolerance * final
    last_violation = -1
    cumulative = 0
    for index, count in enumerate(per_round):
        cumulative += count
        estimate = cumulative / (index + 1)
        if abs(estimate - final) > band:
            last_violation = index
    return ConvergenceReport(
        rounds=rounds,
        final_estimate=final,
        settled_at=last_violation + 1,
        relative_tolerance=relative_tolerance,
    )


def meter_report(
    meter: ThroughputMeter, relative_tolerance: float = 0.05
) -> ConvergenceReport:
    """Convenience wrapper over a :class:`ThroughputMeter`."""
    return convergence_report(meter.per_round, relative_tolerance)


def recommend_horizon(
    per_round: Sequence[int],
    relative_tolerance: float = 0.05,
    safety_factor: float = 2.0,
) -> int:
    """A horizon recommendation: ``settled_at x safety_factor``.

    When the observed run barely settled (margin near zero), the
    recommendation accordingly exceeds the observed length — i.e. "run
    longer than you did".
    """
    report = convergence_report(per_round, relative_tolerance)
    return max(1, int(report.settled_at * safety_factor))
