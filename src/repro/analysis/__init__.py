"""Result analysis: aggregation across seeds, convergence auditing,
tables, and terminal plots."""

from repro.analysis.aggregate import aggregate_by, summarize
from repro.analysis.ascii_plot import line_plot
from repro.analysis.convergence import (
    ConvergenceReport,
    convergence_report,
    meter_report,
    recommend_horizon,
)
from repro.analysis.tables import format_series_table, format_table

__all__ = [
    "ConvergenceReport",
    "aggregate_by",
    "convergence_report",
    "format_series_table",
    "format_table",
    "line_plot",
    "meter_report",
    "recommend_horizon",
    "summarize",
]
