"""Path construction and analysis on the cell lattice.

The Figure 8 experiment measures throughput against *path complexity*,
defined as the number of turns along a fixed-length path. This module
builds such paths: straight corridors, staircases, snakes, and — the
general constructor — :func:`turns_path`, which produces a path of a given
cell count with an exact number of direction changes.

A *path* is a sequence of pairwise-adjacent cell identifiers with no
repeats; its *length* is its number of cells (the paper's length-8 path
from ``<1,0>`` to ``<1,7>`` has 8 cells and 7 hops).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.grid.topology import (
    CellId,
    Direction,
    Grid,
    direction_between,
    manhattan_distance,
)


@dataclass(frozen=True)
class Path:
    """An ordered, self-avoiding sequence of adjacent cells."""

    cells: Tuple[CellId, ...]
    _index: dict = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        if len(self.cells) < 1:
            raise ValueError("a path needs at least one cell")
        seen = set()
        for cell in self.cells:
            if cell in seen:
                raise ValueError(f"path revisits cell {cell}")
            seen.add(cell)
        for a, b in zip(self.cells, self.cells[1:]):
            if manhattan_distance(a, b) != 1:
                raise ValueError(f"cells {a} and {b} are not adjacent")
        object.__setattr__(
            self, "_index", {cell: k for k, cell in enumerate(self.cells)}
        )

    @classmethod
    def from_cells(cls, cells: Sequence[CellId]) -> "Path":
        return cls(tuple(cells))

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[CellId]:
        return iter(self.cells)

    def __contains__(self, cell: CellId) -> bool:
        return cell in self._index

    @property
    def source(self) -> CellId:
        return self.cells[0]

    @property
    def target(self) -> CellId:
        return self.cells[-1]

    @property
    def hops(self) -> int:
        """Number of edges along the path."""
        return len(self.cells) - 1

    @property
    def turns(self) -> int:
        """Number of direction changes along the path."""
        return count_turns(self.cells)

    def directions(self) -> List[Direction]:
        """The direction of each hop, in order."""
        return [direction_between(a, b) for a, b in zip(self.cells, self.cells[1:])]

    def successor(self, cell: CellId) -> Optional[CellId]:
        """The next cell after ``cell`` along the path, or None at the end."""
        k = self._index.get(cell)
        if k is None:
            raise ValueError(f"cell {cell} not on path")
        return self.cells[k + 1] if k + 1 < len(self.cells) else None

    def index_of(self, cell: CellId) -> int:
        """Position of ``cell`` along the path (0 = source)."""
        k = self._index.get(cell)
        if k is None:
            raise ValueError(f"cell {cell} not on path")
        return k

    def fits(self, grid: Grid) -> bool:
        """True when every cell of the path lies in ``grid``."""
        return all(grid.contains(cell) for cell in self.cells)


def is_valid_path(cells: Sequence[CellId]) -> bool:
    """True when ``cells`` forms a self-avoiding lattice path."""
    try:
        Path.from_cells(cells)
    except ValueError:
        return False
    return True


def count_turns(cells: Sequence[CellId]) -> int:
    """Number of direction changes along a cell sequence."""
    directions = [
        direction_between(a, b) for a, b in zip(cells, cells[1:])
    ]
    return sum(1 for a, b in zip(directions, directions[1:]) if a is not b)


def straight_path(start: CellId, direction: Direction, length: int) -> Path:
    """A straight corridor of ``length`` cells from ``start``."""
    if length < 1:
        raise ValueError("length must be at least 1")
    cells = [start]
    for _ in range(length - 1):
        cells.append(direction.step(cells[-1]))
    return Path.from_cells(cells)


def staircase_path(start: CellId, length: int) -> Path:
    """A maximally turning path: alternate north/east every hop."""
    return turns_path(start, length, max(0, length - 2))


def turns_path(
    start: CellId,
    length: int,
    turns: int,
    first: Direction = Direction.NORTH,
    second: Direction = Direction.EAST,
) -> Path:
    """A path of ``length`` cells from ``start`` with exactly ``turns`` turns.

    The path alternates between ``first`` and ``second`` (which must lie on
    different axes) across ``turns + 1`` straight segments whose lengths are
    as balanced as possible. With the defaults, the result climbs north and
    steps east — the staircase family used for the Figure 8 experiment.

    ``turns`` can be at most ``length - 2`` (every interior cell a corner).
    """
    if length < 1:
        raise ValueError("length must be at least 1")
    if turns < 0:
        raise ValueError("turns must be nonnegative")
    if length == 1:
        if turns > 0:
            raise ValueError("a single-cell path cannot turn")
        return Path.from_cells([start])
    hops = length - 1
    if turns > hops - 1:
        raise ValueError(
            f"a path with {hops} hops supports at most {hops - 1} turns, got {turns}"
        )
    if first.axis == second.axis:
        raise ValueError("first and second directions must lie on different axes")

    segments = turns + 1
    base, extra = divmod(hops, segments)
    # Balanced segment lengths: the first `extra` segments get one more hop.
    lengths = [base + (1 if k < extra else 0) for k in range(segments)]

    cells = [start]
    for k, seg_len in enumerate(lengths):
        direction = first if k % 2 == 0 else second
        for _ in range(seg_len):
            cells.append(direction.step(cells[-1]))
    return Path.from_cells(cells)


def snake_path(grid: Grid, columns: Optional[int] = None) -> Path:
    """A boustrophedon path covering ``columns`` full columns of ``grid``.

    Starts at ``(0, 0)``, goes up column 0, east one step, down column 1,
    and so on. Useful as a long, turn-heavy workload.
    """
    assert grid.height is not None
    if columns is None:
        columns = grid.width
    if not 1 <= columns <= grid.width:
        raise ValueError(f"columns must be in [1, {grid.width}], got {columns}")
    cells: List[CellId] = []
    for i in range(columns):
        rows = range(grid.height) if i % 2 == 0 else range(grid.height - 1, -1, -1)
        for j in rows:
            cells.append((i, j))
    return Path.from_cells(cells)
