"""Corridor workloads.

The paper's path experiments (Figures 7 and 8) route all traffic along a
fixed path. With shortest-path routing, the clean way to force a specific
route is to make the complement of the path permanently faulty — the
routing protocol then has exactly one feasible route. These helpers build
such *corridors*.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Set

from repro.grid.paths import Path
from repro.grid.topology import CellId, Grid


def corridor_region(grid: Grid, path: Path) -> FrozenSet[CellId]:
    """The set of cells a corridor workload keeps alive (the path itself)."""
    if not path.fits(grid):
        raise ValueError("path does not fit in the grid")
    return frozenset(path.cells)


def corridor_failures(grid: Grid, path: Path) -> FrozenSet[CellId]:
    """Cells to mark permanently failed so traffic can only follow ``path``."""
    alive = corridor_region(grid, path)
    return frozenset(cell for cell in grid.cells() if cell not in alive)


def complement(grid: Grid, alive: Iterable[CellId]) -> FrozenSet[CellId]:
    """Cells of ``grid`` not in ``alive``."""
    alive_set: Set[CellId] = set(alive)
    for cell in alive_set:
        grid.require(cell)
    return frozenset(cell for cell in grid.cells() if cell not in alive_set)
