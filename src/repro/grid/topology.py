"""Cell lattice topology.

The system consists of ``width x height`` unit-square cells; cell
``<i, j>`` occupies the square with bottom-left corner ``(i, j)``.
Cells ``<m, n>`` and ``<i, j>`` are neighbors when
``|i - m| + |j - n| = 1`` (4-neighborhood). The paper uses square
``N x N`` grids; rectangular grids are supported because the corridor
workloads and the 3-D extension both want them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Optional, Tuple

CellId = Tuple[int, int]
"""A cell identifier ``<i, j>``: grid column ``i``, grid row ``j``."""


class Direction(Enum):
    """The four lattice directions, as unit steps in identifier space."""

    EAST = (1, 0)
    WEST = (-1, 0)
    NORTH = (0, 1)
    SOUTH = (0, -1)

    @property
    def di(self) -> int:
        return self.value[0]

    @property
    def dj(self) -> int:
        return self.value[1]

    @property
    def opposite(self) -> "Direction":
        return _OPPOSITES[self]

    @property
    def axis(self) -> str:
        """``"x"`` for east/west, ``"y"`` for north/south."""
        return "x" if self.dj == 0 else "y"

    def step(self, cell: CellId) -> CellId:
        """The identifier one step from ``cell`` in this direction."""
        return (cell[0] + self.di, cell[1] + self.dj)


_OPPOSITES = {
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
}

DIRECTIONS: Tuple[Direction, ...] = (
    Direction.EAST,
    Direction.WEST,
    Direction.NORTH,
    Direction.SOUTH,
)


def manhattan_distance(a: CellId, b: CellId) -> int:
    """L1 distance between two cell identifiers."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def direction_between(src: CellId, dst: CellId) -> Direction:
    """The direction from ``src`` to an *adjacent* cell ``dst``.

    Raises ``ValueError`` when the cells are not lattice neighbors.
    """
    delta = (dst[0] - src[0], dst[1] - src[1])
    for direction in DIRECTIONS:
        if direction.value == delta:
            return direction
    raise ValueError(f"cells {src} and {dst} are not neighbors")


@dataclass(frozen=True)
class Grid:
    """A finite ``width x height`` lattice of unit cells.

    ``Grid(n)`` builds the paper's ``n x n`` instance. Identifiers range
    over ``[0, width) x [0, height)``.
    """

    width: int
    height: Optional[int] = None

    def __post_init__(self) -> None:
        if self.height is None:
            object.__setattr__(self, "height", self.width)
        if self.width < 1 or self.height < 1:  # type: ignore[operator]
            raise ValueError(
                f"grid dimensions must be positive, got {self.width}x{self.height}"
            )

    @property
    def size(self) -> int:
        """Total number of cells."""
        assert self.height is not None
        return self.width * self.height

    def contains(self, cell: CellId) -> bool:
        """True when ``cell`` is a valid identifier for this grid."""
        i, j = cell
        assert self.height is not None
        return 0 <= i < self.width and 0 <= j < self.height

    def require(self, cell: CellId) -> CellId:
        """Return ``cell`` if valid, else raise ``ValueError``."""
        if not self.contains(cell):
            raise ValueError(f"cell {cell} outside {self.width}x{self.height} grid")
        return cell

    def cells(self) -> Iterator[CellId]:
        """All identifiers in row-major order (column fastest)."""
        assert self.height is not None
        for j in range(self.height):
            for i in range(self.width):
                yield (i, j)

    def neighbors(self, cell: CellId) -> List[CellId]:
        """The in-grid lattice neighbors of ``cell``, in a fixed order."""
        self.require(cell)
        return [
            moved
            for direction in DIRECTIONS
            if self.contains(moved := direction.step(cell))
        ]

    def are_neighbors(self, a: CellId, b: CellId) -> bool:
        """True when both cells are in the grid and L1-adjacent."""
        return self.contains(a) and self.contains(b) and manhattan_distance(a, b) == 1

    def boundary_cells(self) -> Iterator[CellId]:
        """Cells on the outer rim of the grid."""
        assert self.height is not None
        for cell in self.cells():
            i, j = cell
            if i in (0, self.width - 1) or j in (0, self.height - 1):
                yield cell

    def cell_origin(self, cell: CellId) -> Tuple[float, float]:
        """Bottom-left corner of ``cell`` in the Euclidean plane."""
        self.require(cell)
        return (float(cell[0]), float(cell[1]))
