"""Grid substrate: the partitioned plane's cell lattice.

Provides cell identifiers, neighbor relations, direction algebra, path
generation (including paths with a prescribed number of turns, used by the
Figure 8 experiment), and corridor workload construction.
"""

from repro.grid.paths import (
    Path,
    count_turns,
    is_valid_path,
    snake_path,
    staircase_path,
    straight_path,
    turns_path,
)
from repro.grid.regions import corridor_failures, corridor_region
from repro.grid.topology import (
    DIRECTIONS,
    CellId,
    Direction,
    Grid,
    direction_between,
    manhattan_distance,
)

__all__ = [
    "CellId",
    "DIRECTIONS",
    "Direction",
    "Grid",
    "Path",
    "corridor_failures",
    "corridor_region",
    "count_turns",
    "direction_between",
    "is_valid_path",
    "manhattan_distance",
    "snake_path",
    "staircase_path",
    "straight_path",
    "turns_path",
]
