"""The per-cell process of the message-passing implementation.

A :class:`CellProcess` owns exactly the paper's per-cell variables
(held in a :class:`~repro.core.cell.CellState`) and advances through the
three communication sub-rounds of one paper round:

    advert_route    -> on_route       (Route,  from received dists)
    advert_occupancy-> on_occupancy   (Signal, from received next/occupancy)
    advert_grant    -> on_grant       (Move,   from the received grant)
                       on_transfers   (accept entities handed over)

The computations reuse the *same* phase logic as the shared-variable
model (``_route_step``-equivalent folding, ``gap_clear``), so any
divergence between the two models is a protocol bug, not a re-coding
artifact — and the bisimulation tests would catch it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.cell import INFINITY, CellState
from repro.core.entity import Entity
from repro.core.move import crossed_boundary
from repro.core.params import Parameters
from repro.core.policies import TokenPolicy
from repro.core.signal import gap_clear
from repro.grid.topology import CellId, Grid, direction_between
from repro.netsim.message import (
    EntityTransferMessage,
    GrantAdvert,
    Message,
    OccupancyAdvert,
    RouteAdvert,
)
from repro.netsim.network import SynchronousNetwork


class CellProcess:
    """One cell's protocol logic over messages."""

    def __init__(
        self,
        cell_id: CellId,
        grid: Grid,
        params: Parameters,
        is_target: bool,
        token_policy: TokenPolicy,
    ):
        self.grid = grid
        self.params = params
        self.is_target = is_target
        self.token_policy = token_policy
        self.state = CellState(cell_id=cell_id)
        if is_target:
            self.state.dist = 0.0
        self.consumed_this_round: List[Entity] = []

    # ------------------------------------------------------------------

    @property
    def cell_id(self) -> CellId:
        return self.state.cell_id

    @property
    def failed(self) -> bool:
        return self.state.failed

    def crash(self) -> None:
        """Apply the fail transition to the local state."""
        self.state.mark_failed()

    def recover(self) -> None:
        """Un-crash with cleared protocol state (target: dist = 0)."""
        self.state.mark_recovered(is_target=self.is_target)

    # ------------------------------------------------------------------
    # Sub-round 1: Route
    # ------------------------------------------------------------------

    def advert_route(self, network: SynchronousNetwork) -> None:
        """Sub-round 1 send: broadcast the current dist estimate."""
        if self.failed:
            return
        dist = None if self.state.dist == INFINITY else self.state.dist
        network.broadcast(
            self.cell_id,
            lambda dst: RouteAdvert(src=self.cell_id, dst=dst, dist=dist),
        )

    def on_route(self, inbox: Iterable[Message]) -> None:
        """Sub-round 1 compute: Route from received dists (silence = infinity)."""
        if self.failed or self.is_target:
            return
        # Missing adverts read as infinity — silence is failure.
        dists: Dict[CellId, float] = {
            nbr: INFINITY for nbr in self.grid.neighbors(self.cell_id)
        }
        for message in inbox:
            if isinstance(message, RouteAdvert):
                dists[message.src] = (
                    INFINITY if message.dist is None else message.dist
                )
        best = min(sorted(dists), key=lambda n: (dists[n], n))
        if dists[best] == INFINITY:
            self.state.dist = INFINITY
            self.state.next_id = None
        else:
            self.state.dist = dists[best] + 1.0
            self.state.next_id = best

    # ------------------------------------------------------------------
    # Sub-round 2: Signal
    # ------------------------------------------------------------------

    def advert_occupancy(self, network: SynchronousNetwork) -> None:
        """Sub-round 2 send: broadcast next pointer and occupancy flag."""
        if self.failed:
            return
        network.broadcast(
            self.cell_id,
            lambda dst: OccupancyAdvert(
                src=self.cell_id,
                dst=dst,
                next_id=self.state.next_id,
                nonempty=bool(self.state.members),
            ),
        )

    def on_occupancy(self, inbox: Iterable[Message]) -> None:
        """Sub-round 2 compute: NEPrev, token maintenance, and the grant."""
        if self.failed:
            return
        ne_prev = {
            message.src
            for message in inbox
            if isinstance(message, OccupancyAdvert)
            and message.next_id == self.cell_id
            and message.nonempty
        }
        state = self.state
        state.ne_prev = ne_prev
        if state.token is not None and state.token not in ne_prev:
            state.token = None
        if state.token is None:
            state.token = self.token_policy.initial(ne_prev)
        if state.token is None:
            state.signal = None
            return
        toward = direction_between(self.cell_id, state.token)
        if gap_clear(state, toward, self.params):
            state.signal = state.token
            state.token = self.token_policy.rotate(ne_prev, state.token)
        else:
            state.signal = None

    # ------------------------------------------------------------------
    # Sub-round 3: Move + transfers
    # ------------------------------------------------------------------

    def advert_grant(self, network: SynchronousNetwork) -> None:
        """Sub-round 3 send: broadcast the signal (grant) value."""
        if self.failed:
            return
        network.broadcast(
            self.cell_id,
            lambda dst: GrantAdvert(
                src=self.cell_id, dst=dst, signal=self.state.signal
            ),
        )

    def on_grant(
        self, inbox: Iterable[Message], network: SynchronousNetwork
    ) -> bool:
        """Apply Move if the next-hop's grant names this cell.

        Crossing entities leave the local membership immediately and ride
        an :class:`EntityTransferMessage`; returns True when the cell
        moved this round.
        """
        if self.failed or self.state.next_id is None or not self.state.members:
            return False
        nxt = self.state.next_id
        granted = any(
            isinstance(message, GrantAdvert)
            and message.src == nxt
            and message.signal == self.cell_id
            for message in inbox
        )
        if not granted:
            return False
        toward = direction_between(self.cell_id, nxt)
        for entity in self.state.entities():
            entity.translate(toward, self.params.v)
            if crossed_boundary(entity, self.cell_id, toward, self.params.half_l):
                self.state.remove_entity(entity.uid)
                network.send(
                    EntityTransferMessage(
                        src=self.cell_id,
                        dst=nxt,
                        uid=entity.uid,
                        position=(entity.x, entity.y),
                        birth_round=entity.birth_round,
                    )
                )
        return True

    def on_transfers(self, inbox: Iterable[Message]) -> List[Entity]:
        """Accept handed-over entities; the target consumes them.

        Returns the entities consumed this round (empty for non-targets).
        A crashed receiver ignores its mailbox — but the protocol
        guarantees nothing is ever sent to one (no grant, no movement
        toward it), which the runtime asserts.
        """
        self.consumed_this_round = []
        for message in inbox:
            if not isinstance(message, EntityTransferMessage):
                continue
            if self.failed:
                raise AssertionError(
                    f"entity {message.uid} was transferred into crashed cell "
                    f"{self.cell_id} — protocol violation"
                )
            entity = Entity(
                uid=message.uid,
                x=message.position[0],
                y=message.position[1],
                birth_round=message.birth_round,
                side=self.params.l,
            )
            if self.is_target:
                self.consumed_this_round.append(entity)
                continue
            toward = direction_between(message.src, self.cell_id)
            entity.snap_to_entry_edge(self.cell_id, toward, self.params.half_l)
            self.state.add_entity(entity)
        return self.consumed_this_round
