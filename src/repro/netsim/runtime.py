"""The message-passing system runtime.

Drives one paper round as three broadcast/compute sub-rounds plus the
transfer delivery and source production, over a
:class:`~repro.netsim.network.SynchronousNetwork`. The public surface
mirrors :class:`repro.core.system.System` (``update``, ``fail``,
``recover``, ``entity_count`` ...), so simulations, monitors, and the
bisimulation tests can treat the two implementations uniformly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set

from repro.core.cell import CellState
from repro.core.entity import Entity
from repro.core.params import Parameters
from repro.core.policies import RoundRobinTokenPolicy, TokenPolicy
from repro.core.sources import SourcePolicy
from repro.grid.topology import CellId, Grid
from repro.netsim.network import SynchronousNetwork
from repro.netsim.process import CellProcess


@dataclass
class NetRoundReport:
    """Observable outcome of one message-passing round."""

    round_index: int
    consumed: List[Entity] = field(default_factory=list)
    produced: List[Entity] = field(default_factory=list)
    moved_cells: List[CellId] = field(default_factory=list)
    messages_sent: int = 0

    @property
    def consumed_count(self) -> int:
        return len(self.consumed)


class MessagePassingSystem:
    """The protocol over real messages (see package docstring)."""

    def __init__(
        self,
        grid: Grid,
        params: Parameters,
        tid: CellId,
        sources: Optional[Mapping[CellId, SourcePolicy]] = None,
        token_policy: Optional[TokenPolicy] = None,
        rng: Optional[random.Random] = None,
    ):
        grid.require(tid)
        self.grid = grid
        self.params = params
        self.tid = tid
        self.sources: Dict[CellId, SourcePolicy] = dict(sources or {})
        for source in self.sources:
            grid.require(source)
            if source == tid:
                raise ValueError("the target cell cannot be a source")
        self.token_policy = token_policy or RoundRobinTokenPolicy()
        self.rng = rng or random.Random(0)
        self.network = SynchronousNetwork(grid)
        self.processes: Dict[CellId, CellProcess] = {
            cid: CellProcess(
                cell_id=cid,
                grid=grid,
                params=params,
                is_target=(cid == tid),
                token_policy=self.token_policy,
            )
            for cid in grid.cells()
        }
        self.round_index = 0
        self._next_uid = 0
        self.total_produced = 0
        self.total_consumed = 0

    # ------------------------------------------------------------------

    @property
    def cells(self) -> Dict[CellId, CellState]:
        """The per-cell states, shaped like ``System.cells``.

        Lets the monitor suite and the renderers work on either
        implementation unchanged.
        """
        return {cid: process.state for cid, process in self.processes.items()}

    def fail(self, cid: CellId) -> None:
        """Crash a cell between rounds."""
        self.processes[self.grid.require(cid)].crash()

    def recover(self, cid: CellId) -> None:
        """Un-crash a cell with cleared protocol state."""
        process = self.processes[self.grid.require(cid)]
        if process.failed:
            process.recover()

    def failed_cells(self) -> Set[CellId]:
        """Identifiers of currently crashed cells."""
        return {cid for cid, process in self.processes.items() if process.failed}

    def non_faulty_cells(self) -> Set[CellId]:
        """Identifiers of live cells."""
        return {cid for cid, process in self.processes.items() if not process.failed}

    def entity_count(self) -> int:
        """Entities currently present across all cells."""
        return sum(len(process.state.members) for process in self.processes.values())

    def seed_entity(self, cid: CellId, x: float, y: float) -> Entity:
        """Place a fresh entity at an absolute position (setup helper)."""
        entity = Entity(
            uid=self._next_uid,
            x=x,
            y=y,
            birth_round=self.round_index,
            side=self.params.l,
        )
        self._next_uid += 1
        self.total_produced += 1
        self.processes[self.grid.require(cid)].state.add_entity(entity)
        return entity

    # ------------------------------------------------------------------

    def update(self) -> NetRoundReport:
        """One paper round = three communication sub-rounds + production."""
        self.network.set_crashed(self.failed_cells())
        report = NetRoundReport(round_index=self.round_index)
        sent_before = self.network.stats.total_sent

        # Sub-round 1: dist adverts -> Route.
        for process in self._live_processes():
            process.advert_route(self.network)
        inboxes = self.network.deliver()
        for cid, process in self.processes.items():
            process.on_route(inboxes.get(cid, []))

        # Sub-round 2: next/occupancy adverts -> Signal.
        for process in self._live_processes():
            process.advert_occupancy(self.network)
        inboxes = self.network.deliver()
        for cid, process in self.processes.items():
            process.on_occupancy(inboxes.get(cid, []))

        # Sub-round 3: grant adverts -> Move; then transfer delivery.
        for process in self._live_processes():
            process.advert_grant(self.network)
        inboxes = self.network.deliver()
        for cid, process in self.processes.items():
            if process.on_grant(inboxes.get(cid, []), self.network):
                report.moved_cells.append(cid)
        transfer_inboxes = self.network.deliver()
        for cid, process in self.processes.items():
            consumed = process.on_transfers(transfer_inboxes.get(cid, []))
            report.consumed.extend(consumed)

        report.produced = self._produce()
        report.messages_sent = self.network.stats.total_sent - sent_before
        self.total_consumed += len(report.consumed)
        self.round_index += 1
        return report

    def run(self, rounds: int) -> List[NetRoundReport]:
        """Run ``rounds`` consecutive message-passing rounds."""
        return [self.update() for _ in range(rounds)]

    def _live_processes(self) -> List[CellProcess]:
        return [p for p in self.processes.values() if not p.failed]

    def _produce(self) -> List[Entity]:
        produced: List[Entity] = []
        for cid in sorted(self.sources):
            process = self.processes[cid]
            if process.failed:
                continue
            candidate = self.sources[cid].place(
                process.state, self.params, self.round_index, self.rng
            )
            if candidate is None:
                continue
            entity = Entity(
                uid=self._next_uid,
                x=candidate.x,
                y=candidate.y,
                birth_round=self.round_index,
                side=self.params.l,
            )
            self._next_uid += 1
            self.total_produced += 1
            process.state.add_entity(entity)
            produced.append(entity)
        return produced
