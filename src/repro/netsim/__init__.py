"""Message-passing realization of the protocol.

The paper models ``System`` with shared variables but explains the
intended implementation: "at the beginning of each round, Cell_{i,j}
broadcasts messages containing the values of these variables and
receives similar values from its neighbors" (Section II-B). This package
builds that implementation for real:

* :mod:`repro.netsim.message` — the wire messages: per-phase state
  adverts and entity-transfer messages.
* :mod:`repro.netsim.network` — a synchronous network: per-sub-round
  mailboxes with reliable, bounded (one sub-round) delivery; crashed
  nodes fall silent, which is precisely how neighbors observe failure.
* :mod:`repro.netsim.process` — a per-cell process that runs the
  protocol using *only* messages and local state.
* :mod:`repro.netsim.runtime` — :class:`MessagePassingSystem`, which
  drives one paper round as three communication sub-rounds
  (dist -> Route, next/occupancy -> Signal, grants -> Move + transfers).

``MessagePassingSystem`` is step-for-step equivalent to the
shared-variable :class:`repro.core.system.System`: the bisimulation
tests in ``tests/test_netsim.py`` run both side by side under identical
fault schedules and assert state equality after every round.
"""

from repro.netsim.message import (
    EntityTransferMessage,
    GrantAdvert,
    Message,
    OccupancyAdvert,
    RouteAdvert,
)
from repro.netsim.network import NetworkStats, SynchronousNetwork
from repro.netsim.process import CellProcess
from repro.netsim.runtime import MessagePassingSystem

__all__ = [
    "CellProcess",
    "EntityTransferMessage",
    "GrantAdvert",
    "Message",
    "MessagePassingSystem",
    "NetworkStats",
    "OccupancyAdvert",
    "RouteAdvert",
    "SynchronousNetwork",
]
