"""Wire messages of the message-passing implementation.

One paper round decomposes into three communication sub-rounds, each
with its own message type (a fourth carries entity hand-offs):

1. :class:`RouteAdvert` — the sender's current ``dist`` estimate; the
   input to the receivers' Route computation.
2. :class:`OccupancyAdvert` — the sender's (post-Route) ``next`` pointer
   and whether it holds entities; the input to ``NEPrev`` and therefore
   Signal.
3. :class:`GrantAdvert` — the sender's (post-Signal) ``signal`` value;
   the permission a mover checks before applying velocity.
4. :class:`EntityTransferMessage` — an entity whose edge crossed the
   shared boundary, handed to the neighbor (or to the target, which
   consumes it).

Messages are immutable value objects; entity payloads carry plain floats
so a transfer is a copy, not shared mutable state (no accidental
shared-memory cheating).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.grid.topology import CellId


@dataclass(frozen=True)
class Message:
    """Base class: every message names its sender and destination."""

    src: CellId
    dst: CellId


@dataclass(frozen=True)
class RouteAdvert(Message):
    """Sub-round 1: the sender's dist estimate (None encodes infinity)."""

    dist: Optional[float]


@dataclass(frozen=True)
class OccupancyAdvert(Message):
    """Sub-round 2: the sender's next pointer and occupancy flag."""

    next_id: Optional[CellId]
    nonempty: bool


@dataclass(frozen=True)
class GrantAdvert(Message):
    """Sub-round 3: the sender's signal value (who may move toward it)."""

    signal: Optional[CellId]


@dataclass(frozen=True)
class EntityTransferMessage(Message):
    """An entity crossing the shared boundary into the destination cell.

    ``position`` is the entity center *after* movement, before the
    receiver snaps it onto its entry edge (the receiver knows the entry
    direction from ``src``).
    """

    uid: int
    position: Tuple[float, float]
    birth_round: int
