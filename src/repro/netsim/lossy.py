"""Lossy advert delivery — graceful degradation under message loss.

The paper assumes reliable, timely delivery. The protocol nevertheless
has a striking robustness property the shared-variable model hides:
every advert's *absence* is interpreted conservatively —

* a missing ``RouteAdvert`` reads as ``dist = infinity`` (the neighbor
  may be worth avoiding; at worst a detour),
* a missing ``OccupancyAdvert`` keeps the sender out of ``NEPrev`` (at
  worst it waits a round longer),
* a missing ``GrantAdvert`` means no permission (at worst nobody moves).

So dropping *adverts* with any probability can only cost throughput,
never safety. :class:`LossyNetwork` implements exactly that fault model.

``EntityTransferMessage`` is exempt: it is bookkeeping for a *physical*
hand-off (the entity is already straddling the boundary), not soft
state — a real deployment acknowledges it or keeps the entity. Dropping
it would teleport matter out of existence, which no network fault can
do. The experiment in ``benchmarks/bench_lossy.py`` sweeps the drop
probability and verifies: monitors stay clean, conservation holds,
throughput decays smoothly to zero.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.netsim.message import EntityTransferMessage, Message
from repro.netsim.network import SynchronousNetwork


class LossyNetwork(SynchronousNetwork):
    """A synchronous network that drops each advert with probability p."""

    def __init__(self, grid, drop_probability: float, rng: Optional[random.Random] = None):
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError(
                f"drop probability must be in [0, 1], got {drop_probability}"
            )
        super().__init__(grid)
        self.drop_probability = drop_probability
        self.rng = rng or random.Random(0)
        self.dropped = 0

    def send(self, message: Message) -> None:
        if (
            not isinstance(message, EntityTransferMessage)
            and self.rng.random() < self.drop_probability
        ):
            self.dropped += 1
            return
        super().send(message)
