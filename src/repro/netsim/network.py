"""The synchronous network substrate.

Delivery model (matching the paper's assumptions): messages sent in a
sub-round are delivered, reliably and unmodified, at the end of that
sub-round; computation is instantaneous. Crashed senders produce
nothing — "a failed cell does nothing; it never moves and it never
communicates" — so a silent neighbor is indistinguishable from a crashed
one, which is exactly the observation model the protocol is built on.

The network also keeps per-type counters, making the protocol's
communication cost measurable (messages per round, per cell).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Set, Type

from repro.grid.topology import CellId
from repro.netsim.message import Message

#: Default cap on the retained per-delivery history — the same
#: convention as ``repro.faults.injector.DEFAULT_HISTORY_LIMIT``, so a
#: long soak run cannot grow memory linearly with rounds. ``None`` opts
#: out (unbounded).
DEFAULT_HISTORY_LIMIT = 10_000


@dataclass
class NetworkStats:
    """Cumulative message accounting.

    The aggregate counters are exact for the whole run;
    ``delivered_history`` (messages handed over per ``deliver`` call,
    i.e. per sub-round) is a bounded ring buffer keeping the most recent
    ``history_limit`` samples.
    """

    sent_by_type: Dict[str, int] = field(default_factory=dict)
    suppressed_from_crashed: int = 0
    delivered: int = 0
    history_limit: Optional[int] = DEFAULT_HISTORY_LIMIT
    delivered_history: Deque[int] = field(init=False)

    def __post_init__(self) -> None:
        if self.history_limit is not None and self.history_limit <= 0:
            raise ValueError(
                f"history_limit must be positive or None, got {self.history_limit}"
            )
        self.delivered_history = deque(maxlen=self.history_limit)

    def record_sent(self, message: Message) -> None:
        """Count one sent message by its type name."""
        name = type(message).__name__
        self.sent_by_type[name] = self.sent_by_type.get(name, 0) + 1

    def record_delivery(self, count: int) -> None:
        """Record one ``deliver`` batch (bounded per-sub-round history)."""
        self.delivered += count
        self.delivered_history.append(count)

    @property
    def total_sent(self) -> int:
        return sum(self.sent_by_type.values())


class SynchronousNetwork:
    """Per-sub-round mailboxes over a fixed neighbor topology."""

    def __init__(self, grid, history_limit: Optional[int] = DEFAULT_HISTORY_LIMIT):
        self.grid = grid
        self._outbox: List[Message] = []
        self._crashed: Set[CellId] = set()
        self.stats = NetworkStats(history_limit=history_limit)

    # ------------------------------------------------------------------

    def set_crashed(self, crashed: Iterable[CellId]) -> None:
        """Update the crash set; crashed senders' messages are dropped."""
        self._crashed = set(crashed)

    def send(self, message: Message) -> None:
        """Queue a message for end-of-sub-round delivery.

        Raises on non-neighbor destinations — the protocol only ever
        talks to adjacent cells, and a violation here means a bug.
        """
        if not self.grid.are_neighbors(message.src, message.dst):
            raise ValueError(
                f"message from {message.src} to non-neighbor {message.dst}"
            )
        if message.src in self._crashed:
            self.stats.suppressed_from_crashed += 1
            return
        self.stats.record_sent(message)
        self._outbox.append(message)

    def broadcast(self, src: CellId, make_message) -> None:
        """Send ``make_message(dst)`` to every lattice neighbor of ``src``."""
        for dst in self.grid.neighbors(src):
            self.send(make_message(dst))

    def deliver(self) -> Dict[CellId, List[Message]]:
        """End the sub-round: hand every queued message to its destination.

        Messages to crashed cells are delivered too (a crashed receiver
        simply ignores its mailbox) — suppression is a *sender* property.
        Delivery order is deterministic: by (sender, type name) so runs
        are reproducible regardless of send order.
        """
        inboxes: Dict[CellId, List[Message]] = {}
        for message in sorted(
            self._outbox, key=lambda m: (m.src, type(m).__name__)
        ):
            inboxes.setdefault(message.dst, []).append(message)
        self.stats.record_delivery(len(self._outbox))
        self._outbox = []
        return inboxes

    @property
    def in_flight(self) -> int:
        return len(self._outbox)
