"""The signal-free (greedy) baseline.

Identical to the paper's protocol except that Move ignores the Signal
permission entirely: every cell with a route moves its entities toward
``next`` each round. Transfers still snap entities onto the entry edge.

This is *deliberately unsafe*: an entity can be snapped onto an edge
whose entry strip is occupied, violating the separation requirement. The
ablation benchmark runs it with a non-strict monitor suite and counts the
violations — quantifying exactly what the Signal mechanism buys.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.cell import CellState
from repro.core.entity import Entity
from repro.core.move import MovePhaseReport, Transfer, crossed_boundary
from repro.core.params import Parameters
from repro.core.route import route_phase
from repro.core.system import RoundReport, System
from repro.core.signal import SignalPhaseReport
from repro.grid.topology import CellId, Direction, Grid, direction_between


def greedy_move_phase(
    grid: Grid,
    cells: Dict[CellId, CellState],
    params: Parameters,
    tid: CellId,
) -> MovePhaseReport:
    """Move every routed, non-faulty cell's entities — no permission check.

    Entities never enter failed cells (the routing already steers away,
    and a greedy mover with ``next`` pointing at a failed cell is skipped),
    but nothing prevents separation violations at the entry edge.
    """
    report = MovePhaseReport()
    pending: List[Tuple[Entity, CellId, CellId, Direction]] = []
    for cid, state in cells.items():
        if state.failed or state.next_id is None or not state.members:
            continue
        nxt = state.next_id
        if cells[nxt].failed:
            continue
        toward = direction_between(cid, nxt)
        report.moved_cells.append(cid)
        for entity in state.entities():
            entity.translate(toward, params.v)
            if crossed_boundary(entity, cid, toward, params.half_l):
                pending.append((entity, cid, nxt, toward))
    for entity, cid, nxt, toward in pending:
        cells[cid].remove_entity(entity.uid)
        if nxt == tid:
            report.consumed.append(entity)
            report.transfers.append(
                Transfer(uid=entity.uid, src=cid, dst=nxt, consumed=True)
            )
        else:
            entity.snap_to_entry_edge(nxt, toward, params.half_l)
            cells[nxt].add_entity(entity)
            report.transfers.append(
                Transfer(uid=entity.uid, src=cid, dst=nxt, consumed=False)
            )
    return report


class UnsafeSystem(System):
    """A ``System`` whose update skips Signal and moves greedily."""

    def update(self) -> RoundReport:
        route_report = route_phase(self.grid, self.cells, self.tid)
        self._notify_phase("route")
        # No Signal phase: clear any stale grants so monitors don't read them.
        for state in self.cells.values():
            state.signal = None
        signal_report = SignalPhaseReport()
        self._notify_phase("signal")
        move_report = greedy_move_phase(self.grid, self.cells, self.params, self.tid)
        self._notify_phase("move")
        self.total_consumed += len(move_report.consumed)
        produced = self._produce()
        self._notify_phase("produce")
        report = RoundReport(
            round_index=self.round_index,
            route=route_report,
            signal=signal_report,
            move=move_report,
            produced=produced,
        )
        self.round_index += 1
        return report
