"""Comparison baselines.

The paper motivates its protocol against two alternatives, both built
here so the claimed advantages are measurable rather than rhetorical:

* :mod:`repro.baselines.unsafe` — the same routing and movement *without*
  the Signal permission mechanism. Throughput rises, but the monitors
  count separation violations, demonstrating that Signal is what buys
  Theorem 5.
* :mod:`repro.baselines.centralized` — a periodic central coordinator
  (the classical air-traffic-control shape the introduction contrasts
  with): instant global routing while the coordinator is alive, total
  stall while it is down. Under churn this exhibits the single point of
  failure the distributed protocol avoids.
"""

from repro.baselines.centralized import CentralizedSystem, CoordinatorSpec
from repro.baselines.unsafe import UnsafeSystem, greedy_move_phase

__all__ = [
    "CentralizedSystem",
    "CoordinatorSpec",
    "UnsafeSystem",
    "greedy_move_phase",
]
