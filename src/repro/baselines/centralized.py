"""The centralized-coordinator baseline.

The paper's introduction contrasts distributed traffic control with the
classical centralized shape: "a coordinator periodically collects
information from the vehicles, decides, and disseminates the waypoints".
This baseline realizes that shape over the same cell substrate:

* Every ``period`` rounds, a central coordinator with global knowledge
  writes each cell's ``dist``/``next`` directly from a BFS — routing is
  *instantly* correct (better than the distributed protocol can do) but
  *stale in between*: crashes occurring mid-period are not routed around
  until the next coordination pulse.
* Movement permissions still use the Signal mechanism (this baseline is
  safe; the comparison isolates the coordination topology, not safety).
* The coordinator itself is a single point of failure: while it is down,
  no waypoints are valid and nothing moves. Cell-level churn plus
  coordinator churn is the regime where the distributed protocol's
  advantage shows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.cell import INFINITY
from repro.core.move import MovePhaseReport, move_phase
from repro.core.route import RoutePhaseReport
from repro.core.signal import SignalPhaseReport, signal_phase
from repro.core.system import RoundReport, System


@dataclass
class CoordinatorSpec:
    """Coordinator behavior: pulse period and its own crash/recovery coins."""

    period: int = 10
    pf: float = 0.0
    pr: float = 0.2

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError(f"period must be at least 1, got {self.period}")
        if not 0.0 <= self.pf <= 1.0 or not 0.0 <= self.pr <= 1.0:
            raise ValueError("coordinator pf/pr must be probabilities")


class CentralizedSystem(System):
    """A ``System`` routed by a periodic central coordinator."""

    def __init__(self, *args, coordinator: Optional[CoordinatorSpec] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.coordinator = coordinator or CoordinatorSpec()
        self.coordinator_up = True
        self._coord_rng = random.Random(self.rng.random())
        self.coordinator_outage_rounds = 0

    def clone(self) -> "CentralizedSystem":
        other = super().clone()
        other.coordinator = self.coordinator
        other.coordinator_up = self.coordinator_up
        other._coord_rng.setstate(self._coord_rng.getstate())
        other.coordinator_outage_rounds = self.coordinator_outage_rounds
        return other

    def _coordinator_churn(self) -> None:
        if self.coordinator_up:
            if self._coord_rng.random() < self.coordinator.pf:
                self.coordinator_up = False
        else:
            if self._coord_rng.random() < self.coordinator.pr:
                self.coordinator_up = True

    def _central_route(self) -> RoutePhaseReport:
        """The coordination pulse: write global-BFS routes into every cell."""
        report = RoutePhaseReport()
        rho = self.path_distance()
        for cid, state in self.cells.items():
            if state.failed:
                continue
            new_dist = rho[cid]
            if cid == self.tid:
                new_next = None
            elif new_dist == INFINITY:
                new_next = None
            else:
                new_next = min(
                    (
                        nbr
                        for nbr in self.grid.neighbors(cid)
                        if rho[nbr] == new_dist - 1
                    ),
                    default=None,
                )
            if new_dist != state.dist:
                report.changed_dist.append(cid)
                state.dist = new_dist
            if new_next != state.next_id:
                report.changed_next.append(cid)
                state.next_id = new_next
        return report

    def update(self) -> RoundReport:
        self._coordinator_churn()
        if self.coordinator_up and self.round_index % self.coordinator.period == 0:
            route_report = self._central_route()
        else:
            route_report = RoutePhaseReport()  # stale waypoints between pulses
        self._notify_phase("route")

        if self.coordinator_up:
            signal_report = signal_phase(
                self.grid, self.cells, self.params, self.token_policy
            )
            self._notify_phase("signal")
            move_report = move_phase(self.grid, self.cells, self.params, self.tid)
        else:
            # Coordinator down: no valid waypoints, nothing moves.
            self.coordinator_outage_rounds += 1
            for state in self.cells.values():
                state.signal = None
            signal_report = SignalPhaseReport()
            self._notify_phase("signal")
            move_report = MovePhaseReport()
        self._notify_phase("move")
        self.total_consumed += len(move_report.consumed)
        produced = self._produce()
        self._notify_phase("produce")
        report = RoundReport(
            round_index=self.round_index,
            route=route_report,
            signal=signal_report,
            move=move_report,
            produced=produced,
        )
        self.round_index += 1
        return report
