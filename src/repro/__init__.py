"""Safe and Stabilizing Distributed Cellular Flows — full reproduction.

A production-quality Python implementation of the distributed traffic
control protocol of Johnson, Mitra & Manamcheri (ICDCS 2010): the
Route/Signal/Move cell protocol with its safety (Theorem 5) and
stabilization/progress (Lemmas 6-9, Theorem 10) properties enforced by
runtime monitors, plus the complete simulation and experiment harness
that regenerates the paper's Figures 7-9.

Quickstart::

    from repro import Parameters, build_corridor_system
    from repro.grid import Grid, straight_path, Direction

    grid = Grid(8)
    path = straight_path((1, 0), Direction.NORTH, 8)
    system = build_corridor_system(grid, Parameters(l=0.25, rs=0.05, v=0.2),
                                   path.cells)
    consumed = sum(system.update().consumed_count for _ in range(2500))
    print(consumed / 2500)  # average throughput

See ``README.md`` for the architecture overview and ``DESIGN.md`` for the
paper-to-module map.
"""

from repro.core import (
    BernoulliSource,
    CappedSource,
    CellState,
    EagerSource,
    Entity,
    Parameters,
    RoundReport,
    SilentSource,
    SourcePolicy,
    System,
    build_corridor_system,
)
from repro.monitors import MonitorSuite
from repro.obs import MetricsRegistry, ObservabilityConfig
from repro.sim import (
    FaultSpec,
    SimulationConfig,
    SimulationResult,
    Simulator,
    build_simulation,
)

__version__ = "1.0.0"

__all__ = [
    "BernoulliSource",
    "CappedSource",
    "CellState",
    "EagerSource",
    "Entity",
    "FaultSpec",
    "MetricsRegistry",
    "MonitorSuite",
    "ObservabilityConfig",
    "Parameters",
    "RoundReport",
    "SilentSource",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "SourcePolicy",
    "System",
    "__version__",
    "build_corridor_system",
    "build_simulation",
]
