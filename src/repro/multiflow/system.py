"""The multi-commodity round automaton.

One grid, many concurrent commodities (arXiv:1209.2058). Each round
runs the same three phases as the single-flow ``System`` — Route,
Signal, Move, then source production — generalized as follows:

* **Route** runs the Jacobi distance-vector relaxation once *per
  commodity*, against that commodity's target, into per-commodity
  ``dists`` / ``nexts`` tables. Ties between equal-distance neighbors
  are split ECMP-style: among the id-sorted tied neighbors, cell
  ``<i, j>`` routing commodity ``k`` picks index ``(k + i + j) mod
  |ties|`` — the ``(dist, commodity_id, cell_id)`` tie-break.
  Different commodities (and adjacent cells of one commodity) spread
  over distinct shortest paths instead of converging on one.
* **Signal** is the paper's token rule with one extra conjunct:
  a grant additionally requires *residency compatibility* — the
  holder's entities may only enter a cell that is empty, already
  resident to the same commodity, or their commodity's own target.
  Cells stay type-exclusive (one commodity per cell at a time), which
  is what lets one scalar token/signal per cell remain sound.
* **Move** steers each cell's entities along its *resident*
  commodity's next pointer and consumes an entity when it crosses
  into its own commodity's target; per-commodity produced/consumed
  ledgers are maintained alongside the scalar totals.
* **Production** iterates commodities in table order, gated by the
  system's :class:`~repro.multiflow.workload.WorkloadProfile` — the
  demand schedule — plus the usual route-exists and separation gates
  and the residency gate above.

The automaton deliberately reuses the core phase *reports*
(``RoutePhaseReport`` etc.) and the core ``CellState`` scalar fields
(``token`` / ``signal`` / ``ne_prev``), so the monitor suite, the
observability layer, and the canonical-state differential harness all
apply unchanged; per-commodity state lives in the ``dists`` /
``nexts`` dict extensions of :class:`MultiCommodityCellState`.

Known limitation, inherited from the extension sketch and documented
in ``docs/multiflow.md``: two commodities forced head-to-head through
a shared corridor can gridlock; :meth:`MultiCommoditySystem.
detect_waiting_cycles` detects the condition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.cell import (
    DIST_SENTINEL,
    INFINITY,
    CellState,
    dist_from_int,
    dist_to_int,
)
from repro.core.entity import Entity
from repro.core.move import MovePhaseReport, Transfer, crossed_boundary
from repro.core.params import Parameters
from repro.core.policies import RoundRobinTokenPolicy, TokenPolicy
from repro.core.route import RoutePhaseReport
from repro.core.signal import SignalPhaseReport, gap_clear
from repro.core.system import RoundReport
from repro.geometry.point import Point
from repro.geometry.separation import fits_among
from repro.grid.topology import CellId, Direction, Grid, direction_between
from repro.multiflow.commodities import Commodity, CommodityTable
from repro.multiflow.workload import WorkloadProfile, resolve_workload


def commodity_of(entity: Entity) -> str:
    """The commodity tag carried by an entity of this system."""
    return entity.commodity_name  # type: ignore[attr-defined]


@dataclass
class MultiCommodityCellState(CellState):
    """``CellState`` plus per-commodity routing tables.

    The scalar protocol fields (``token``, ``signal``, ``ne_prev``,
    ``members``, ``failed``) keep their core meaning — there is one
    token rule per cell, not per commodity. The scalar ``dist`` /
    ``next_id`` stay at their defaults (masked to "no route"): routing
    state lives in ``dists[name]`` / ``nexts[name]``.
    """

    dists: Dict[str, float] = field(default_factory=dict)
    nexts: Dict[str, Optional[CellId]] = field(default_factory=dict)

    @property
    def resident_commodity(self) -> Optional[str]:
        """The commodity of the entities currently in the cell.

        Type-exclusivity (enforced by Signal and production) makes the
        members' tags unanimous; an empty cell has no resident.
        """
        for entity in self.members.values():
            return commodity_of(entity)
        return None

    def clone(self) -> "MultiCommodityCellState":
        """An independent deep copy (entities and routing tables)."""
        copy = MultiCommodityCellState(
            cell_id=self.cell_id,
            next_id=self.next_id,
            ne_prev=set(self.ne_prev),
            dist=self.dist,
            token=self.token,
            signal=self.signal,
            failed=self.failed,
            dists=dict(self.dists),
            nexts=dict(self.nexts),
        )
        for entity in self.members.values():
            clone = entity.clone()
            clone.commodity_name = commodity_of(entity)  # type: ignore[attr-defined]
            copy.members[clone.uid] = clone
        return copy


class MultiCommoditySystem:
    """The multi-commodity system automaton.

    Drop-in compatible with the simulator surface of the single-flow
    ``System``: ``update() -> RoundReport``, ``fail`` / ``recover``,
    ``phase_observer`` / ``cell_observer`` hooks, scalar
    ``total_produced`` / ``total_consumed``, plus the per-commodity
    ``produced_by_commodity`` / ``consumed_by_commodity`` ledgers the
    conservation oracle audits.
    """

    #: Marks the system for engine dispatch and the differential
    #: harness's canonical-state extension.
    is_multiflow = True

    def __init__(
        self,
        grid: Grid,
        params: Parameters,
        commodities: Union[CommodityTable, Sequence[Commodity]],
        workload: Union[str, WorkloadProfile, None] = None,
        token_policy: Optional[TokenPolicy] = None,
        rng: Optional[random.Random] = None,
    ):
        self.grid = grid
        self.params = params
        self.table = (
            commodities
            if isinstance(commodities, CommodityTable)
            else CommodityTable(commodities)
        ).validate(grid)
        self.workload = resolve_workload(workload)
        self.token_policy = token_policy or RoundRobinTokenPolicy()
        self.rng = rng or random.Random(0)
        self.cells: Dict[CellId, MultiCommodityCellState] = {
            cid: MultiCommodityCellState(cell_id=cid) for cid in grid.cells()
        }
        for commodity in self.table:
            for cid, cell in self.cells.items():
                cell.dists[commodity.name] = (
                    0.0 if cid == commodity.target else INFINITY
                )
                cell.nexts[commodity.name] = None
        self.round_index = 0
        self._next_uid = 0
        self.total_produced = 0
        self.total_consumed = 0
        self.produced_by_commodity: Dict[str, int] = {
            c.name: 0 for c in self.table
        }
        self.consumed_by_commodity: Dict[str, int] = {
            c.name: 0 for c in self.table
        }
        #: Same contract as ``System.phase_observer``.
        self.phase_observer: Optional[Callable] = None
        #: Same contract as ``System.cell_observer``.
        self.cell_observer: Optional[Callable] = None

    # ------------------------------------------------------------------
    # Environment transitions
    # ------------------------------------------------------------------

    def fail(self, cid: CellId) -> None:
        """Crash a cell: scalar flags plus per-commodity route masking."""
        self.grid.require(cid)
        state = self.cells[cid]
        already_failed = state.failed
        state.mark_failed()
        for name in self.table.names():
            state.dists[name] = INFINITY
            state.nexts[name] = None
        if not already_failed:
            self._notify_cell_event("fail", cid)

    def recover(self, cid: CellId) -> None:
        """Un-crash a cell; a commodity target recovers with dist 0."""
        self.grid.require(cid)
        state = self.cells[cid]
        if not state.failed:
            return
        state.mark_recovered(is_target=False)
        for commodity in self.table:
            state.dists[commodity.name] = (
                0.0 if commodity.target == cid else INFINITY
            )
            state.nexts[commodity.name] = None
        self._notify_cell_event("recover", cid)

    def failed_cells(self) -> Set[CellId]:
        """Identifiers of currently failed cells."""
        return {cid for cid, s in self.cells.items() if s.failed}

    def non_faulty_cells(self) -> Set[CellId]:
        """Identifiers of currently non-faulty cells."""
        return {cid for cid, s in self.cells.items() if not s.failed}

    def _notify_phase(self, name: str) -> None:
        if self.phase_observer is not None:
            self.phase_observer(name, self)

    def _notify_cell_event(self, event: str, cid: CellId) -> None:
        if self.cell_observer is not None:
            self.cell_observer(event, cid)

    # ------------------------------------------------------------------
    # The update transition
    # ------------------------------------------------------------------

    def update(self) -> RoundReport:
        """One synchronous round: Route; Signal; Move; production."""
        route_report = self._route_phase()
        self._notify_phase("route")
        signal_report = self._signal_phase()
        self._notify_phase("signal")
        move_report = self._move_phase()
        self._notify_phase("move")
        self.total_consumed += len(move_report.consumed)
        produced = self._produce()
        self._notify_phase("produce")
        report = RoundReport(
            round_index=self.round_index,
            route=route_report,
            signal=signal_report,
            move=move_report,
            produced=produced,
        )
        self.round_index += 1
        return report

    def run(self, rounds: int) -> List[RoundReport]:
        """Run ``rounds`` consecutive updates (no faults)."""
        return [self.update() for _ in range(rounds)]

    # -- Route ---------------------------------------------------------

    def _route_phase(self) -> RoutePhaseReport:
        changed_dist: Set[CellId] = set()
        changed_next: Set[CellId] = set()
        for index, commodity in enumerate(self.table):
            name = commodity.name
            snapshot = {
                cid: (INFINITY if cell.failed else cell.dists[name])
                for cid, cell in self.cells.items()
            }
            for cid, cell in self.cells.items():
                if cell.failed or cid == commodity.target:
                    continue
                new_dist, new_next = self._route_step(
                    index, cid, snapshot.__getitem__
                )
                if new_dist != cell.dists[name]:
                    cell.dists[name] = new_dist
                    changed_dist.add(cid)
                if new_next != cell.nexts[name]:
                    cell.nexts[name] = new_next
                    changed_next.add(cid)
        return RoutePhaseReport(
            changed_dist=sorted(changed_dist, key=_row_major),
            changed_next=sorted(changed_next, key=_row_major),
        )

    def _route_step(
        self,
        commodity_index: int,
        cid: CellId,
        dist_of: Callable[[CellId], float],
    ) -> Tuple[float, Optional[CellId]]:
        """One relaxation with the ``(dist, commodity, cell)`` tie-break.

        Distances use the exact integral embedding (``dist_to_int``) so
        the minimum and the tie set are computed without float ``==``.
        """
        neighbors = sorted(self.grid.neighbors(cid))
        ints = [dist_to_int(dist_of(n)) for n in neighbors]
        best = min(ints)
        if best >= DIST_SENTINEL:
            return INFINITY, None
        ties = [n for n, d in zip(neighbors, ints) if d == best]
        i, j = cid
        pick = ties[(commodity_index + i + j) % len(ties)]
        return dist_from_int(best) + 1.0, pick

    # -- Signal --------------------------------------------------------

    def _moving_direction(self, cid: CellId) -> Optional[CellId]:
        """Where the cell's resident commodity wants to go next."""
        cell = self.cells[cid]
        resident = cell.resident_commodity
        if resident is None:
            return None
        return cell.nexts[resident]

    def _signal_phase(self) -> SignalPhaseReport:
        report = SignalPhaseReport()
        ne_prev_map: Dict[CellId, Set[CellId]] = {}
        for cid, cell in self.cells.items():
            if cell.failed:
                continue
            inbound: Set[CellId] = set()
            for nbr in self.grid.neighbors(cid):
                nstate = self.cells[nbr]
                if nstate.failed or not nstate.members:
                    continue
                if self._moving_direction(nbr) == cid:
                    inbound.add(nbr)
            ne_prev_map[cid] = inbound
        for cid, ne_prev in ne_prev_map.items():
            cell = self.cells[cid]
            cell.ne_prev = ne_prev
            if cell.token is not None and cell.token not in ne_prev:
                cell.token = None
            if cell.token is None:
                cell.token = self.token_policy.initial(ne_prev)
            if cell.token is None:
                cell.signal = None
                continue
            reason = self._grant_block_reason(cid, cell, cell.token)
            if reason is None:
                cell.signal = cell.token
                report.granted[cid] = cell.token
                cell.token = self.token_policy.rotate(ne_prev, cell.token)
                if cell.token != cell.signal:
                    report.rotated.append((cid, cell.signal, cell.token))
            else:
                cell.signal = None
                report.blocked.append(cid)
                report.block_reasons[cid] = reason
        return report

    def _grant_block_reason(
        self, cid: CellId, cell: MultiCommodityCellState, holder_id: CellId
    ) -> Optional[str]:
        """Why the token holder cannot be granted, or None to grant.

        Residency is checked before the gap so a type-exclusion block
        is reported as ``"residency"`` even when the strip is also
        occupied (which it is, by the resident entities).
        """
        holder = self.cells[holder_id]
        resident = cell.resident_commodity
        incoming = holder.resident_commodity
        compatible = (
            resident is None
            or resident == incoming
            or self.table.by_name(incoming).target == cid
        )
        if not compatible:
            return "residency"
        toward = direction_between(cid, holder_id)
        if not gap_clear(cell, toward, self.params):
            return "gap"
        return None

    # -- Move ----------------------------------------------------------

    def _move_phase(self) -> MovePhaseReport:
        report = MovePhaseReport()
        movers: List[Tuple[CellId, CellId]] = []
        for cid, cell in self.cells.items():
            if cell.failed or not cell.members:
                continue
            nxt = self._moving_direction(cid)
            if nxt is None:
                continue
            nstate = self.cells[nxt]
            if not nstate.failed and nstate.signal == cid:
                movers.append((cid, nxt))
        half_l = self.params.half_l
        pending: List[Tuple[Entity, CellId, CellId, Direction]] = []
        for cid, nxt in movers:
            report.moved_cells.append(cid)
            direction = direction_between(cid, nxt)
            for entity in self.cells[cid].entities():
                entity.translate(direction, self.params.v)
                if crossed_boundary(entity, cid, direction, half_l):
                    pending.append((entity, cid, nxt, direction))
        for entity, src, dst, direction in pending:
            self.cells[src].remove_entity(entity.uid)
            name = commodity_of(entity)
            if self.table.by_name(name).target == dst:
                report.consumed.append(entity)
                self.consumed_by_commodity[name] += 1
                report.transfers.append(
                    Transfer(uid=entity.uid, src=src, dst=dst, consumed=True)
                )
            else:
                entity.snap_to_entry_edge(dst, direction, half_l)
                self.cells[dst].add_entity(entity)
                report.transfers.append(
                    Transfer(uid=entity.uid, src=src, dst=dst, consumed=False)
                )
        return report

    # -- Production ----------------------------------------------------

    def _produce(self) -> List[Entity]:
        produced: List[Entity] = []
        for index, commodity in enumerate(self.table):
            if not self.workload.active(index, self.round_index):
                continue
            name = commodity.name
            for cid in sorted(commodity.sources):
                cell = self.cells[cid]
                if cell.failed:
                    continue
                resident = cell.resident_commodity
                if resident is not None and resident != name:
                    continue
                nxt = cell.nexts[name]
                if nxt is None:
                    continue
                candidate = self._entry_point(cid, nxt)
                centers = [e.center for e in cell.members.values()]
                if not fits_among(candidate, centers, self.params.d):
                    continue
                entity = Entity(
                    uid=self._next_uid,
                    x=candidate.x,
                    y=candidate.y,
                    birth_round=self.round_index,
                    side=self.params.l,
                )
                entity.commodity_name = name  # type: ignore[attr-defined]
                self._next_uid += 1
                cell.add_entity(entity)
                self.total_produced += 1
                self.produced_by_commodity[name] += 1
                produced.append(entity)
        return produced

    def _entry_point(self, cid: CellId, nxt: CellId) -> Point:
        """Lane-centered insertion point on the wall opposite the exit."""
        i, j = cid
        half = self.params.half_l
        exit_dir = direction_between(cid, nxt)
        if exit_dir is Direction.EAST:
            return Point(i + half, j + 0.5)
        if exit_dir is Direction.WEST:
            return Point(i + 1 - half, j + 0.5)
        if exit_dir is Direction.NORTH:
            return Point(i + 0.5, j + half)
        return Point(i + 0.5, j + 1 - half)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def entity_count(self) -> int:
        """Entities currently in flight, all commodities."""
        return sum(len(cell.members) for cell in self.cells.values())

    def in_flight_by_commodity(self) -> Dict[str, int]:
        """In-flight entity counts keyed by commodity name."""
        counts = {name: 0 for name in self.table.names()}
        for cell in self.cells.values():
            for entity in cell.members.values():
                counts[commodity_of(entity)] += 1
        return counts

    def check_type_exclusive(self) -> List[CellId]:
        """Cells currently holding entities of more than one commodity."""
        offenders = []
        for cid, cell in self.cells.items():
            tags = {commodity_of(e) for e in cell.members.values()}
            if len(tags) > 1:
                offenders.append(cid)
        return offenders

    def detect_waiting_cycles(self) -> List[List[CellId]]:
        """Cycles in the waits-on graph (potential gridlock).

        Cell ``c`` waits on ``n`` when ``c`` is nonempty, wants to
        move into ``n``, and ``n`` is nonempty too. A cycle of such
        edges can never drain — the head-to-head deadlock documented
        in ``docs/multiflow.md``. Returns each cycle once.
        """
        waits_on: Dict[CellId, CellId] = {}
        for cid, cell in self.cells.items():
            if cell.failed or not cell.members:
                continue
            nxt = self._moving_direction(cid)
            if nxt is None:
                continue
            nstate = self.cells[nxt]
            if not nstate.failed and nstate.members:
                waits_on[cid] = nxt
        cycles: List[List[CellId]] = []
        visited: Set[CellId] = set()
        for start in sorted(waits_on):
            if start in visited:
                continue
            trail: List[CellId] = []
            seen_at: Dict[CellId, int] = {}
            cursor: Optional[CellId] = start
            while (
                cursor is not None
                and cursor in waits_on
                and cursor not in visited
            ):
                seen_at[cursor] = len(trail)
                trail.append(cursor)
                cursor = waits_on[cursor]
                if cursor in seen_at:
                    cycles.append(trail[seen_at[cursor] :])
                    break
            visited.update(trail)
        return cycles


def _row_major(cid: CellId) -> Tuple[int, int]:
    """Row-major sort key ``(j, i)``, matching the grid sweep order."""
    return (cid[1], cid[0])
