"""Round engines over the multi-commodity automaton.

Two engines, mirroring the single-flow pair and proven observationally
identical by the lockstep harness (``tests/test_multiflow_differential.py``):

* ``MultiflowReferenceEngine`` delegates each round to
  ``MultiCommoditySystem.update()`` — the executable spec.
* ``MultiflowIncrementalEngine`` keeps one Route dirty set *per
  commodity* and relaxes only dirty cells with deferred writes,
  exactly like the single-flow incremental engine's Route rule. The
  Signal, Move, and production phases run as full sweeps: Signal
  depends on residency (membership), which every transfer can change,
  so a pending-set over it buys little on the small multi-commodity
  grids while risking RNG divergence; Route is where the quiescence
  win lives.

Dispatch: ``repro.sim.engine.make_engine`` routes a system with
``is_multiflow`` set here, keyed by the same public engine names
(``reference`` / ``incremental``); the vectorized and sharded engines
do not support multi-commodity state and are rejected at config
validation (and again here, defensively).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.cell import INFINITY
from repro.core.route import RoutePhaseReport
from repro.core.system import RoundReport
from repro.grid.topology import CellId
from repro.multiflow.system import MultiCommoditySystem, _row_major


class MultiflowRoundEngine:
    """Interface: a pluggable multi-commodity round executor."""

    name = "abstract"

    def __init__(self, system: MultiCommoditySystem, config=None):
        self.system = system
        self.config = config
        #: Bound by the simulator when metrics are enabled.
        self.metrics = None

    def step(self) -> RoundReport:
        """Advance the system one round and return its report."""
        raise NotImplementedError

    def close(self) -> None:
        """Release engine resources (no-op for in-process engines)."""


class MultiflowReferenceEngine(MultiflowRoundEngine):
    """The trusted baseline: full-sweep ``update()`` every round."""

    name = "reference"

    def step(self) -> RoundReport:
        """One full-sweep round."""
        return self.system.update()


class MultiflowIncrementalEngine(MultiflowRoundEngine):
    """Per-commodity dirty-set Route, full-sweep Signal/Move/produce.

    Dirty-set rule: commodity ``k``'s relaxation at cell ``c`` reads
    its neighbors' ``dists[k]``, so ``c`` re-relaxes for ``k`` when a
    neighbor's ``dists[k]`` changed last round or a fault event
    touched ``c``'s neighborhood (fault events dirty every commodity).
    Writes are deferred within a commodity's sweep so dirty cells read
    the same pre-round snapshot the reference's Jacobi step reads.
    """

    name = "incremental"

    def __init__(self, system: MultiCommoditySystem, config=None):
        super().__init__(system, config)
        all_cells = set(system.cells)
        self._route_dirty: Dict[str, Set[CellId]] = {
            name: set(all_cells) for name in system.table.names()
        }
        self._chained_observer = system.cell_observer
        system.cell_observer = self._on_cell_event

    def _on_cell_event(self, event: str, cid: CellId) -> None:
        if event in ("fail", "recover"):
            self._invalidate_around(cid)
        if self._chained_observer is not None:
            self._chained_observer(event, cid)

    def _invalidate_around(self, cid: CellId) -> None:
        region = [cid] + self.system.grid.neighbors(cid)
        for dirty in self._route_dirty.values():
            dirty.update(region)

    def step(self) -> RoundReport:
        """One round, observationally identical to the reference."""
        system = self.system
        route_report = self._route_phase()
        system._notify_phase("route")
        signal_report = system._signal_phase()
        system._notify_phase("signal")
        move_report = system._move_phase()
        system._notify_phase("move")
        system.total_consumed += len(move_report.consumed)
        produced = system._produce()
        system._notify_phase("produce")
        report = RoundReport(
            round_index=system.round_index,
            route=route_report,
            signal=signal_report,
            move=move_report,
            produced=produced,
        )
        system.round_index += 1
        return report

    def _route_phase(self) -> RoutePhaseReport:
        system = self.system
        changed_dist: Set[CellId] = set()
        changed_next: Set[CellId] = set()
        for index, commodity in enumerate(system.table):
            name = commodity.name
            dirty = self._route_dirty[name]
            self._route_dirty[name] = set()
            if not dirty:
                continue
            updates: List[Tuple[CellId, float, Optional[CellId], bool]] = []
            live = _live_dist(system, name)
            for cid in sorted(dirty, key=_row_major):
                cell = system.cells[cid]
                if cell.failed or cid == commodity.target:
                    continue
                new_dist, new_next = system._route_step(index, cid, live)
                dist_changed = new_dist != cell.dists[name]
                next_changed = new_next != cell.nexts[name]
                if dist_changed or next_changed:
                    updates.append((cid, new_dist, new_next, dist_changed))
            for cid, new_dist, new_next, dist_changed in updates:
                cell = system.cells[cid]
                if dist_changed:
                    cell.dists[name] = new_dist
                    changed_dist.add(cid)
                    next_dirty = self._route_dirty[name]
                    next_dirty.add(cid)
                    next_dirty.update(system.grid.neighbors(cid))
                if new_next != cell.nexts[name]:
                    cell.nexts[name] = new_next
                    changed_next.add(cid)
        return RoutePhaseReport(
            changed_dist=sorted(changed_dist, key=_row_major),
            changed_next=sorted(changed_next, key=_row_major),
        )


def _live_dist(
    system: MultiCommoditySystem, name: str
) -> Callable[[CellId], float]:
    """A fault-masked reader of the current ``dists[name]`` values.

    Safe to read live (rather than snapshotting) because the
    incremental sweep defers all writes until after the reads.
    """

    def read(cid: CellId) -> float:
        cell = system.cells[cid]
        return INFINITY if cell.failed else cell.dists[name]

    return read


MULTIFLOW_ENGINES = {
    MultiflowReferenceEngine.name: MultiflowReferenceEngine,
    MultiflowIncrementalEngine.name: MultiflowIncrementalEngine,
}
"""Engine names supported for multi-commodity systems."""


def make_multiflow_engine(
    name: str, system: MultiCommoditySystem, config=None
) -> MultiflowRoundEngine:
    """Instantiate the multi-commodity engine called ``name``.

    Raises ``ValueError`` for engines without multi-commodity support
    (``vectorized``, ``sharded``).
    """
    try:
        return MULTIFLOW_ENGINES[name](system, config)
    except KeyError:
        raise ValueError(
            f"engine {name!r} does not support multi-commodity systems; "
            f"choose from {sorted(MULTIFLOW_ENGINES)}"
        ) from None
