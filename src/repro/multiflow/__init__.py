"""First-class multi-commodity cellular flows.

The authors' journal extension (*Safe and Stabilizing Distributed
Multi-Path Cellular Flows*, arXiv:1209.2058) generalizes the ICDCS'10
protocol from one flow to many concurrent (source, target) *commodity*
pairs with per-commodity routing tables and multi-path route
diversity. This package is that generalization promoted to a real
subsystem — the thin sketch it grew out of remains at
``repro.extensions.multiflow``.

Layout:

* :mod:`repro.multiflow.commodities` — ``Commodity`` pairs and the
  validated ``CommodityTable``;
* :mod:`repro.multiflow.workload` — demand as ``WorkloadProfile``
  schedules behind the ``WORKLOAD_PROFILES`` registry;
* :mod:`repro.multiflow.system` — the multi-commodity round automaton
  (per-commodity Route with ECMP tie-splitting, residency-aware
  Signal, commodity-tagged Move/produce);
* :mod:`repro.multiflow.engine` — reference and incremental round
  engines over that automaton;
* :mod:`repro.multiflow.monitors` — the monitor suite extended with
  type-exclusivity and per-commodity conservation checks.

See ``docs/multiflow.md`` for the protocol recap and the demand
library; the surface is wired through ``SimulationConfig``
(``commodities=`` / ``workload=``), ``build_simulation``, the CLI
(``run --commodities/--workload``), the fuzz generator, and the
lockstep differential harness, so it inherits the full verification
stack.
"""

from repro.multiflow.commodities import (
    Commodity,
    CommodityTable,
    default_commodities,
)
from repro.multiflow.workload import (
    WORKLOAD_PROFILES,
    WorkloadProfile,
    resolve_workload,
)

__all__ = [
    "Commodity",
    "CommodityTable",
    "default_commodities",
    "WORKLOAD_PROFILES",
    "WorkloadProfile",
    "resolve_workload",
]
