"""Workload profiles: demand as a deterministic schedule.

The single-flow system expresses demand through *source policies*
(eager, bernoulli, ...), which decide per cell. Multi-commodity
workloads need the orthogonal knob: *when is each commodity offering
load at all?* A ``WorkloadProfile`` answers exactly that — a pure,
deterministic function of ``(commodity_index, round_index)`` — so two
builds of the same config replay the same demand without consuming
any randomness.

The registry ``WORKLOAD_PROFILES`` is the single source of truth for
the profile names accepted by ``SimulationConfig(workload=...)`` and
the CLI's ``--workload``; the table in ``docs/multiflow.md`` is
diffed against it by ``tests/test_docs.py``.

>>> sorted(WORKLOAD_PROFILES)
['bursty', 'diurnal', 'flash-crowd', 'steady']
>>> WORKLOAD_PROFILES["steady"].active(0, 12345)
True
>>> resolve_workload(None).name
'steady'
"""

from __future__ import annotations

from typing import Dict, Optional, Union


class WorkloadProfile:
    """A deterministic demand schedule over (commodity, round).

    ``active(commodity_index, round_index)`` gates production: a
    commodity's sources only attempt insertion on rounds where its
    profile is active. Implementations must be pure functions of the
    two arguments — no randomness, no state — so that demand is part
    of the reproducible scenario, not of the execution.

    >>> profile = WORKLOAD_PROFILES["diurnal"]
    >>> profile.active(0, 0), profile.active(0, 25)
    (True, False)
    """

    name: str = ""
    description: str = ""

    def active(self, commodity_index: int, round_index: int) -> bool:
        """True when the commodity's sources should offer load."""
        raise NotImplementedError


class SteadyProfile(WorkloadProfile):
    """Constant demand: every commodity offers load every round."""

    name = "steady"
    description = "every commodity offers load on every round"

    def active(self, commodity_index: int, round_index: int) -> bool:
        """Always true.

        >>> SteadyProfile().active(3, 999)
        True
        """
        return True


class DiurnalProfile(WorkloadProfile):
    """A day/night duty cycle, phase-shifted per commodity."""

    name = "diurnal"
    description = (
        "on for the first 20 rounds of each 40-round day, "
        "phase-shifted 7 rounds per commodity"
    )

    def active(self, commodity_index: int, round_index: int) -> bool:
        """True during the commodity's 20-round daytime window.

        >>> p = DiurnalProfile()
        >>> [p.active(0, r) for r in (0, 19, 20, 39, 40)]
        [True, True, False, False, True]
        >>> p.active(1, 19)  # commodity 1 is shifted by 7 rounds
        False
        """
        return (round_index + 7 * commodity_index) % 40 < 20


class BurstyProfile(WorkloadProfile):
    """Short demand bursts separated by idle gaps."""

    name = "bursty"
    description = (
        "4-round bursts every 17 rounds, offset 11 rounds per commodity"
    )

    def active(self, commodity_index: int, round_index: int) -> bool:
        """True during the commodity's 4-round burst window.

        >>> p = BurstyProfile()
        >>> [p.active(0, r) for r in (0, 3, 4, 16, 17)]
        [True, True, False, False, True]
        """
        return (round_index + 11 * commodity_index) % 17 < 4


class FlashCrowdProfile(WorkloadProfile):
    """A steady baseline commodity plus periodic all-on surges."""

    name = "flash-crowd"
    description = (
        "commodity 0 is steady; every other commodity joins only "
        "during the final 20 rounds of each 60-round period"
    )

    def active(self, commodity_index: int, round_index: int) -> bool:
        """True for commodity 0 always, for the crowd during surges.

        >>> p = FlashCrowdProfile()
        >>> p.active(0, 10), p.active(1, 10), p.active(1, 45)
        (True, False, True)
        """
        if commodity_index == 0:
            return True
        return round_index % 60 >= 40


WORKLOAD_PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        SteadyProfile(),
        DiurnalProfile(),
        BurstyProfile(),
        FlashCrowdProfile(),
    )
}
"""Registry of the demand profiles accepted by ``workload=``.

Keys are the profile names; ``docs/multiflow.md``'s workload table is
CI-diffed against this mapping.
"""


def resolve_workload(
    workload: Union[str, WorkloadProfile, None]
) -> WorkloadProfile:
    """Map a profile name (or None, or a profile) to a profile.

    >>> resolve_workload("bursty").name
    'bursty'
    >>> resolve_workload(None).name
    'steady'
    """
    if workload is None:
        return WORKLOAD_PROFILES["steady"]
    if isinstance(workload, WorkloadProfile):
        return workload
    try:
        return WORKLOAD_PROFILES[workload]
    except KeyError:
        raise ValueError(
            f"unknown workload profile {workload!r}; "
            f"choose from {sorted(WORKLOAD_PROFILES)}"
        ) from None
