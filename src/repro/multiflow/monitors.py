"""Runtime monitors for the multi-commodity system.

The paper's properties carry over unchanged — ``Safe``, containment,
disjoint membership, and predicate H are all stated over cell members
and scalar signals, which the multi-commodity automaton reuses — so
:class:`MultiflowMonitorSuite` simply extends the core
:class:`~repro.monitors.recorder.MonitorSuite` with the two properties
the generalization adds:

* **type-exclusivity** — no cell ever holds entities of two
  commodities (the residency conjunct of Signal plus the production
  gate must make this invariant);
* **per-commodity conservation** — for every commodity,
  ``produced == consumed + in-flight`` after every round; the scalar
  conservation audit cannot see one commodity's entities leaking into
  another's ledger.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.monitors.recorder import MonitorSuite


@dataclass
class MultiflowMonitorSuite(MonitorSuite):
    """The core monitor suite plus the multi-commodity invariants."""

    check_type_exclusivity: bool = True
    check_commodity_conservation: bool = True

    def after_round(self, system, report) -> None:
        """Run all core checks, then the multi-commodity ones."""
        super().after_round(system, report)
        if self.check_type_exclusivity:
            for cid in system.check_type_exclusive():
                self._record(
                    system.round_index,
                    "TypeExclusive",
                    f"cell {cid} holds entities of multiple commodities",
                )
        if self.check_commodity_conservation:
            in_flight = system.in_flight_by_commodity()
            for name in system.table.names():
                produced = system.produced_by_commodity[name]
                consumed = system.consumed_by_commodity[name]
                if produced != consumed + in_flight[name]:
                    self._record(
                        system.round_index,
                        "CommodityConservation",
                        f"commodity {name!r}: produced {produced} != "
                        f"consumed {consumed} + in-flight {in_flight[name]}",
                    )
