"""Commodities: concurrent (source, target) flow pairs.

A *commodity* is one named demand stream — entities produced at its
source cells and consumed at its target cell. The journal extension
(arXiv:1209.2058) runs many commodities concurrently over one grid,
each with its own routing table; the ``CommodityTable`` is the
validated, ordered collection the multi-commodity system and the
simulation config share.

>>> east = Commodity("east", target=(3, 1), sources=((0, 1),))
>>> north = Commodity("north", target=(1, 3), sources=((1, 0),))
>>> table = CommodityTable((east, north))
>>> len(table)
2
>>> table.index_of("north")
1
>>> table.by_name("east").target
(3, 1)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Sequence, Tuple

from repro.grid.topology import CellId, Grid


@dataclass(frozen=True)
class Commodity:
    """One named (source, target) demand pair.

    ``name`` labels the commodity everywhere — routing tables, entity
    tags, metrics labels, conservation ledgers. ``target`` is the cell
    that consumes the commodity's entities; ``sources`` are the cells
    that produce them.

    >>> c = Commodity("east", target=(3, 1), sources=((0, 1),))
    >>> c.name, c.target
    ('east', (3, 1))
    >>> Commodity("bad", target=(0, 0), sources=((0, 0),))
    Traceback (most recent call last):
        ...
    ValueError: commodity 'bad': target (0, 0) cannot also be a source
    """

    name: str
    target: CellId
    sources: Tuple[CellId, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("commodity name must be non-empty")
        object.__setattr__(self, "target", tuple(self.target))
        object.__setattr__(
            self, "sources", tuple(tuple(s) for s in self.sources)
        )
        if not self.sources:
            raise ValueError(
                f"commodity {self.name!r} needs at least one source"
            )
        if len(set(self.sources)) != len(self.sources):
            raise ValueError(f"commodity {self.name!r}: duplicate sources")
        if self.target in self.sources:
            raise ValueError(
                f"commodity {self.name!r}: target {self.target} "
                "cannot also be a source"
            )


class CommodityTable:
    """The ordered, name-unique collection of a system's commodities.

    Order is significant: it fixes the commodity index used by the
    ECMP tie-splitting rule and the iteration order of the Route and
    produce phases, so two systems built from the same table are
    deterministic replicas.

    >>> table = CommodityTable(
    ...     [
    ...         Commodity("a", target=(2, 0), sources=((0, 0),)),
    ...         Commodity("b", target=(0, 2), sources=((2, 2),)),
    ...     ]
    ... )
    >>> table.names()
    ('a', 'b')
    >>> [commodity.name for commodity in table]
    ['a', 'b']
    >>> table[1].target
    (0, 2)
    """

    def __init__(self, commodities: Sequence[Commodity]):
        self._commodities: Tuple[Commodity, ...] = tuple(commodities)
        if not self._commodities:
            raise ValueError("a commodity table needs at least one commodity")
        names = [c.name for c in self._commodities]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate commodity names: {names}")
        self._index: Dict[str, int] = {
            name: k for k, name in enumerate(names)
        }

    def __len__(self) -> int:
        return len(self._commodities)

    def __iter__(self) -> Iterator[Commodity]:
        return iter(self._commodities)

    def __getitem__(self, index: int) -> Commodity:
        """The commodity at position ``index`` (table order)."""
        return self._commodities[index]

    def names(self) -> Tuple[str, ...]:
        """All commodity names, in table order."""
        return tuple(c.name for c in self._commodities)

    def index_of(self, name: str) -> int:
        """The table position of the commodity called ``name``."""
        return self._index[name]

    def by_name(self, name: str) -> Commodity:
        """The commodity called ``name`` (raises ``KeyError`` if absent)."""
        return self._commodities[self._index[name]]

    def targets(self) -> Tuple[CellId, ...]:
        """All target cells, in table order."""
        return tuple(c.target for c in self._commodities)

    def validate(self, grid: Grid) -> "CommodityTable":
        """Check every referenced cell is on ``grid``; return self.

        Targets must additionally be pairwise distinct — each target
        consumes exactly one commodity.
        """
        for commodity in self._commodities:
            grid.require(commodity.target)
            for source in commodity.sources:
                grid.require(source)
        targets = [c.target for c in self._commodities]
        if len(set(targets)) != len(targets):
            raise ValueError(f"commodity targets must be distinct: {targets}")
        return self


def default_commodities(
    grid_width: int, count: int, grid_height: int = None
) -> Tuple[Commodity, ...]:
    """A deterministic crossing layout of ``count`` commodities.

    Even-indexed commodities flow west-to-east along interior rows,
    odd-indexed ones south-to-north along interior columns, so any two
    perpendicular commodities contend for the crossing cell — the
    contention pattern the fairness experiments measure. Used by the
    CLI's ``run --commodities N``.

    >>> for c in default_commodities(5, 3):
    ...     print(c.name, c.sources[0], "->", c.target)
    c0 (0, 1) -> (4, 1)
    c1 (1, 0) -> (1, 4)
    c2 (0, 2) -> (4, 2)
    """
    height = grid_height if grid_height is not None else grid_width
    if count < 1:
        raise ValueError("commodity count must be >= 1")
    lanes_h = max(0, height - 2)
    lanes_v = max(0, grid_width - 2)
    if (count + 1) // 2 > lanes_h or count // 2 > lanes_v:
        raise ValueError(
            f"grid {grid_width}x{height} too small for {count} "
            "crossing commodities"
        )
    commodities = []
    for k in range(count):
        lane = 1 + k // 2
        if k % 2 == 0:
            commodities.append(
                Commodity(
                    f"c{k}",
                    target=(grid_width - 1, lane),
                    sources=((0, lane),),
                )
            )
        else:
            commodities.append(
                Commodity(
                    f"c{k}", target=(lane, height - 1), sources=((lane, 0),)
                )
            )
    return tuple(commodities)
