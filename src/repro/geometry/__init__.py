"""Geometry substrate: epsilon-robust scalar comparisons, points, intervals,
axis-aligned squares, and the center-spacing separation predicates used by
the cellular-flow safety property.

All protocol-level geometric predicates (gap checks, boundary crossings,
safety separation) are funneled through this package so the floating-point
tolerance policy lives in exactly one place (:mod:`repro.geometry.tolerance`).
"""

from repro.geometry.interval import Interval
from repro.geometry.point import Point, Vector
from repro.geometry.separation import (
    axis_separated,
    min_axis_separation,
    pairwise_axis_separated,
)
from repro.geometry.square import Square
from repro.geometry.tolerance import (
    EPS,
    is_close,
    strictly_greater,
    strictly_less,
    tol_ge,
    tol_gt,
    tol_le,
    tol_lt,
)

__all__ = [
    "EPS",
    "Interval",
    "Point",
    "Square",
    "Vector",
    "axis_separated",
    "is_close",
    "min_axis_separation",
    "pairwise_axis_separated",
    "strictly_greater",
    "strictly_less",
    "tol_ge",
    "tol_gt",
    "tol_le",
    "tol_lt",
]
