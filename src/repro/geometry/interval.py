"""Closed 1-D intervals.

Used for per-axis projections of entities and cells: boundary-crossing
tests, containment checks (Invariant 1), and the gap predicates of the
Signal function all reduce to interval algebra on one axis at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.tolerance import EPS, tol_ge, tol_le


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` on the real line."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi + EPS:
            raise ValueError(f"empty interval: lo={self.lo} > hi={self.hi}")

    @property
    def length(self) -> float:
        return self.hi - self.lo

    @property
    def center(self) -> float:
        return (self.lo + self.hi) / 2.0

    def contains(self, value: float, eps: float = EPS) -> bool:
        """True when ``value`` lies in the interval (within tolerance)."""
        return tol_ge(value, self.lo, eps) and tol_le(value, self.hi, eps)

    def contains_interval(self, other: "Interval", eps: float = EPS) -> bool:
        """True when ``other`` is contained in this interval (within tolerance)."""
        return tol_ge(other.lo, self.lo, eps) and tol_le(other.hi, self.hi, eps)

    def overlaps(self, other: "Interval", eps: float = EPS) -> bool:
        """True when the two closed intervals intersect (within tolerance)."""
        return tol_le(self.lo, other.hi, eps) and tol_le(other.lo, self.hi, eps)

    def gap_to(self, other: "Interval") -> float:
        """Distance between the intervals; 0 when they overlap."""
        if self.overlaps(other, eps=0.0):
            return 0.0
        if self.hi < other.lo:
            return other.lo - self.hi
        return self.lo - other.hi

    def shifted(self, delta: float) -> "Interval":
        """The interval translated by ``delta``."""
        return Interval(self.lo + delta, self.hi + delta)

    def clamped_to(self, bounds: "Interval") -> "Interval":
        """This interval intersected with ``bounds`` (must be nonempty)."""
        return Interval(max(self.lo, bounds.lo), min(self.hi, bounds.hi))
