"""Center-spacing separation predicates.

The paper's safety property (Theorem 5) requires that for any two distinct
entities ``p != q`` in the same cell,

    ``|px - qx| >= d  or  |py - qy| >= d``        with ``d = rs + l``.

That is, the centers must be separated by at least the *center spacing
requirement* ``d`` along at least one axis. These helpers implement that
predicate and a few aggregates used by monitors and the source policy.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.tolerance import EPS, tol_ge


def axis_separated(p: Point, q: Point, d: float, eps: float = EPS) -> bool:
    """True when ``p`` and ``q`` are separated by at least ``d`` on some axis."""
    return tol_ge(abs(p.x - q.x), d, eps) or tol_ge(abs(p.y - q.y), d, eps)


def min_axis_separation(p: Point, q: Point) -> float:
    """The larger of the two per-axis center distances.

    Safety requires this value to be at least ``d``; monitors report it so
    violations are quantifiable rather than boolean.
    """
    return max(abs(p.x - q.x), abs(p.y - q.y))


def pairwise_axis_separated(
    centers: Sequence[Point], d: float, eps: float = EPS
) -> bool:
    """True when every distinct pair in ``centers`` is axis-separated by ``d``.

    Quadratic in the number of entities, which is fine: a unit cell can hold
    at most ``(1 // d + 1) ** 2`` entities, a small constant for the paper's
    parameter ranges.
    """
    n = len(centers)
    for a in range(n):
        for b in range(a + 1, n):
            if not axis_separated(centers[a], centers[b], d, eps):
                return False
    return True


def separation_violations(
    centers: Sequence[Point], d: float, eps: float = EPS
) -> Iterable[Tuple[int, int, float]]:
    """Yield ``(index_a, index_b, separation)`` for every violating pair."""
    n = len(centers)
    for a in range(n):
        for b in range(a + 1, n):
            if not axis_separated(centers[a], centers[b], d, eps):
                yield a, b, min_axis_separation(centers[a], centers[b])


def fits_among(candidate: Point, centers: Iterable[Point], d: float) -> bool:
    """True when placing an entity at ``candidate`` keeps all pairs separated.

    Used by source cells to decide whether an insertion would violate the
    minimum gap requirement (the paper's source specification).
    """
    return all(axis_separated(candidate, other, d) for other in centers)
