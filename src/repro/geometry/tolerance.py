"""Floating-point tolerance policy for all geometric predicates.

Entity positions accumulate velocity increments over thousands of rounds,
so protocol predicates such as the Signal gap check (``px + l/2 <= i+1-d``)
and the Move boundary-crossing check (``px + l/2 > i+1``) must not flip on
sub-epsilon noise. Every comparison in the protocol and in the runtime
monitors goes through the helpers below.

The convention mirrors the paper's inequalities:

* ``tol_le(a, b)`` / ``tol_ge(a, b)`` — non-strict comparisons that accept
  values within ``EPS``; used for *permissive* checks ("the gap is clear",
  "the separation is at least d").
* ``tol_lt(a, b)`` / ``tol_gt(a, b)`` — strict comparisons that require the
  difference to exceed ``EPS``; used for *triggering* checks ("the entity
  crossed the boundary") so an entity flush against the boundary does not
  spuriously transfer.
"""

EPS: float = 1e-9
"""Absolute comparison tolerance.

The simulation operates on coordinates of order one (unit cells) with
velocity steps no smaller than ~1e-3, so an absolute tolerance is both
simpler and safer than a relative one.
"""


def is_close(a: float, b: float, eps: float = EPS) -> bool:
    """Return True when ``a`` and ``b`` differ by at most ``eps``."""
    return abs(a - b) <= eps


def tol_le(a: float, b: float, eps: float = EPS) -> bool:
    """Tolerant ``a <= b``: true when ``a`` exceeds ``b`` by at most ``eps``."""
    return a <= b + eps


def tol_ge(a: float, b: float, eps: float = EPS) -> bool:
    """Tolerant ``a >= b``: true when ``a`` falls short of ``b`` by at most ``eps``."""
    return a >= b - eps


def tol_lt(a: float, b: float, eps: float = EPS) -> bool:
    """Strict ``a < b``: true only when ``b - a`` exceeds ``eps``."""
    return a < b - eps


def tol_gt(a: float, b: float, eps: float = EPS) -> bool:
    """Strict ``a > b``: true only when ``a - b`` exceeds ``eps``."""
    return a > b + eps


# Readability aliases used by the movement code, where the strictness of a
# comparison is the point (boundary crossings must not fire on noise).
strictly_less = tol_lt
strictly_greater = tol_gt
