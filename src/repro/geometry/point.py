"""Immutable 2-D points and vectors.

Entity centers and displacement steps are represented with these types.
They are deliberately tiny value objects — plain tuples with arithmetic —
so the hot simulation loop pays no abstraction tax.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.tolerance import EPS, is_close


@dataclass(frozen=True)
class Vector:
    """A 2-D displacement."""

    dx: float
    dy: float

    def __add__(self, other: "Vector") -> "Vector":
        return Vector(self.dx + other.dx, self.dy + other.dy)

    def __neg__(self) -> "Vector":
        return Vector(-self.dx, -self.dy)

    def __mul__(self, scalar: float) -> "Vector":
        return Vector(self.dx * scalar, self.dy * scalar)

    __rmul__ = __mul__

    def norm(self) -> float:
        """Euclidean length of the vector."""
        return math.hypot(self.dx, self.dy)

    def manhattan(self) -> float:
        """L1 length of the vector."""
        return abs(self.dx) + abs(self.dy)

    def is_axis_aligned(self) -> bool:
        """True when the vector moves along exactly one axis (or is zero)."""
        return is_close(self.dx, 0.0) or is_close(self.dy, 0.0)


ZERO_VECTOR = Vector(0.0, 0.0)


@dataclass(frozen=True)
class Point:
    """A 2-D position in the partitioned plane."""

    x: float
    y: float

    def __add__(self, vec: Vector) -> "Point":
        return Point(self.x + vec.dx, self.y + vec.dy)

    def __sub__(self, other: "Point") -> Vector:
        return Vector(self.x - other.x, self.y - other.y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance between two points."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_to(self, other: "Point") -> float:
        """L1 distance between two points."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def almost_equal(self, other: "Point", eps: float = EPS) -> bool:
        """Coordinate-wise comparison within ``eps``."""
        return is_close(self.x, other.x, eps) and is_close(self.y, other.y, eps)
