"""Axis-aligned squares.

Entities occupy ``l x l`` squares centered on their position; cells occupy
unit squares anchored at integer corners. Both are modeled here so that
containment (Invariant 1) and overlap reasoning share one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.interval import Interval
from repro.geometry.point import Point, Vector
from repro.geometry.tolerance import EPS


@dataclass(frozen=True)
class Square:
    """An axis-aligned square with center ``center`` and side ``side``."""

    center: Point
    side: float

    def __post_init__(self) -> None:
        if self.side <= 0:
            raise ValueError(f"square side must be positive, got {self.side}")

    @classmethod
    def from_corner(cls, corner: Point, side: float) -> "Square":
        """Build a square from its bottom-left corner (cells are anchored so)."""
        half = side / 2.0
        return cls(Point(corner.x + half, corner.y + half), side)

    @classmethod
    def unit_cell(cls, i: int, j: int) -> "Square":
        """The unit square occupied by cell ``<i, j>`` (corner at ``(i, j)``)."""
        return cls.from_corner(Point(float(i), float(j)), 1.0)

    @property
    def half(self) -> float:
        return self.side / 2.0

    @property
    def x_extent(self) -> Interval:
        return Interval(self.center.x - self.half, self.center.x + self.half)

    @property
    def y_extent(self) -> Interval:
        return Interval(self.center.y - self.half, self.center.y + self.half)

    @property
    def left(self) -> float:
        return self.center.x - self.half

    @property
    def right(self) -> float:
        return self.center.x + self.half

    @property
    def bottom(self) -> float:
        return self.center.y - self.half

    @property
    def top(self) -> float:
        return self.center.y + self.half

    def contains_point(self, point: Point, eps: float = EPS) -> bool:
        """Closed containment of a point (within tolerance)."""
        return self.x_extent.contains(point.x, eps) and self.y_extent.contains(
            point.y, eps
        )

    def contains_square(self, other: "Square", eps: float = EPS) -> bool:
        """Closed containment of another square (within tolerance).

        This is exactly Invariant 1 when ``self`` is a unit cell and
        ``other`` is an entity footprint.
        """
        return self.x_extent.contains_interval(
            other.x_extent, eps
        ) and self.y_extent.contains_interval(other.y_extent, eps)

    def overlaps(self, other: "Square", eps: float = EPS) -> bool:
        """True when the closed squares intersect (within tolerance)."""
        return self.x_extent.overlaps(other.x_extent, eps) and self.y_extent.overlaps(
            other.y_extent, eps
        )

    def interiors_overlap(self, other: "Square") -> bool:
        """True when the open interiors intersect (edge contact does not count)."""
        return self.x_extent.overlaps(other.x_extent, eps=-EPS) and self.y_extent.overlaps(
            other.y_extent, eps=-EPS
        )

    def translated(self, vec: Vector) -> "Square":
        """The square moved by ``vec``."""
        return Square(self.center + vec, self.side)
