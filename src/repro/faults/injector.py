"""Fault injection: applying a fault model to a ``System``.

The injector owns its own rng stream (independent of the system's source
rng) so that fault randomness and arrival randomness can be seeded and
varied independently across experiment repetitions.

The per-round decision history is bounded by default (a long soak run —
Figure 9 uses K = 20000, and the ROADMAP points much further — must not
grow memory linearly with rounds); pass ``history_limit=None`` to keep
every decision. Aggregate counters (``total_failures`` /
``total_recoveries``) and ``last_disruption_round`` are exact regardless
of the cap.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Optional, Sequence, Tuple

from repro.core.system import System
from repro.faults.model import FaultDecision, FaultModel, NoFaults
from repro.grid.topology import CellId

#: Default cap on retained per-round decisions. Mirrored by
#: :class:`repro.netsim.network.NetworkStats` for its per-delivery
#: history, so both soak-sensitive ring buffers share one convention.
DEFAULT_HISTORY_LIMIT = 10_000


class FaultInjector:
    """Per-round driver: consult the model, apply fail/recover to the system.

    ``history`` keeps the most recent ``history_limit`` decisions
    (``None`` = unbounded, the pre-cap behavior).
    """

    def __init__(
        self,
        model: Optional[FaultModel] = None,
        rng: Optional[random.Random] = None,
        history_limit: Optional[int] = DEFAULT_HISTORY_LIMIT,
        metrics=None,
        relocations: Sequence[Tuple[int, CellId]] = (),
    ):
        if history_limit is not None and history_limit <= 0:
            raise ValueError(
                f"history_limit must be positive or None, got {history_limit}"
            )
        self.model = model or NoFaults()
        self.rng = rng or random.Random(0)
        #: Optional :class:`repro.obs.metrics.MetricsRegistry`; when set,
        #: ``faults.failed`` / ``faults.recovered`` counters track every
        #: applied transition. Assignable after construction (the
        #: simulator binds it when observability is enabled).
        self.metrics = metrics
        #: Scheduled target relocations ``(round_index, new_target)``,
        #: applied (in round order) before the fault decision of the
        #: matching round. Compiled from adversary scripts such as
        #: ``rotating_target``; counts as a disruption for
        #: ``last_disruption_round``.
        self.relocations: Tuple[Tuple[int, CellId], ...] = tuple(
            sorted((int(rnd), tuple(cell)) for rnd, cell in relocations)
        )
        self._relocation_pos = 0
        self.history: Deque[FaultDecision] = deque(maxlen=history_limit)
        self.total_failures = 0
        self.total_recoveries = 0
        self.rounds_applied = 0
        self._last_disruption: Optional[int] = None

    def apply(self, system: System) -> FaultDecision:
        """Decide and apply this round's fault events (before ``update``)."""
        while (
            self._relocation_pos < len(self.relocations)
            and self.relocations[self._relocation_pos][0] == system.round_index
        ):
            _, new_tid = self.relocations[self._relocation_pos]
            system.relocate_target(new_tid)
            self._relocation_pos += 1
            self._last_disruption = self.rounds_applied
        alive = sorted(system.non_faulty_cells())
        failed = sorted(system.failed_cells())
        decision = self.model.decide(system.round_index, alive, failed, self.rng)
        for cid in sorted(decision.fail):
            system.fail(cid)
        for cid in sorted(decision.recover):
            system.recover(cid)
        self.history.append(decision)
        if not decision.is_quiet:
            self._last_disruption = self.rounds_applied
        self.rounds_applied += 1
        self.total_failures += len(decision.fail)
        self.total_recoveries += len(decision.recover)
        if self.metrics is not None and not decision.is_quiet:
            if decision.fail:
                self.metrics.counter("faults.failed").inc(len(decision.fail))
            if decision.recover:
                self.metrics.counter("faults.recovered").inc(len(decision.recover))
        return decision

    @property
    def last_disruption_round(self) -> Optional[int]:
        """Index of the most recent round with any fault activity.

        Tracked incrementally, so it stays exact even after older
        decisions have been evicted from the bounded ``history``.
        """
        return self._last_disruption
