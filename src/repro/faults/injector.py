"""Fault injection: applying a fault model to a ``System``.

The injector owns its own rng stream (independent of the system's source
rng) so that fault randomness and arrival randomness can be seeded and
varied independently across experiment repetitions.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.system import System
from repro.faults.model import FaultDecision, FaultModel, NoFaults


class FaultInjector:
    """Per-round driver: consult the model, apply fail/recover to the system."""

    def __init__(
        self,
        model: Optional[FaultModel] = None,
        rng: Optional[random.Random] = None,
    ):
        self.model = model or NoFaults()
        self.rng = rng or random.Random(0)
        self.history: List[FaultDecision] = []
        self.total_failures = 0
        self.total_recoveries = 0

    def apply(self, system: System) -> FaultDecision:
        """Decide and apply this round's fault events (before ``update``)."""
        alive = sorted(system.non_faulty_cells())
        failed = sorted(system.failed_cells())
        decision = self.model.decide(system.round_index, alive, failed, self.rng)
        for cid in sorted(decision.fail):
            system.fail(cid)
        for cid in sorted(decision.recover):
            system.recover(cid)
        self.history.append(decision)
        self.total_failures += len(decision.fail)
        self.total_recoveries += len(decision.recover)
        return decision

    @property
    def last_disruption_round(self) -> Optional[int]:
        """Index of the most recent round with any fault activity."""
        for index in range(len(self.history) - 1, -1, -1):
            if not self.history[index].is_quiet:
                return index
        return None
