"""Deterministic scripted fault schedules.

Tests and stabilization experiments want *exact* adversaries: "fail cell
(2,3) at round 10, recover it at round 50". A scripted model is a list of
timed events compiled into per-round decisions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.faults.model import FaultDecision, FaultModel
from repro.grid.topology import CellId


@dataclass(frozen=True)
class FaultEvent:
    """One timed event: fail or recover a cell at a given round."""

    round_index: int
    cell: CellId
    kind: str  # "fail" | "recover"

    def __post_init__(self) -> None:
        if self.kind not in ("fail", "recover"):
            raise ValueError(f"kind must be 'fail' or 'recover', got {self.kind!r}")
        if self.round_index < 0:
            raise ValueError(f"round_index must be nonnegative, got {self.round_index}")


def partition_events(
    wall: Iterable[CellId], down_round: int, heal_round: int
) -> List[FaultEvent]:
    """The event list of a healing partition: a wall of cells (typically a
    full grid row or column) fails simultaneously at ``down_round`` and
    recovers simultaneously at ``heal_round``.

    Used by the ``partition_heal`` adversary class; exposed standalone so
    tests and experiments can script exact partitions.
    """
    if heal_round <= down_round:
        raise ValueError(
            f"heal_round must follow down_round, got {down_round} -> {heal_round}"
        )
    events: List[FaultEvent] = []
    for cell in sorted(set(wall)):
        events.append(FaultEvent(down_round, cell, "fail"))
        events.append(FaultEvent(heal_round, cell, "recover"))
    return events


class ScriptedFaultModel(FaultModel):
    """Replay an explicit event list, ignoring the rng entirely."""

    def __init__(self, events: Sequence[FaultEvent]):
        self._by_round: Dict[int, List[FaultEvent]] = {}
        for event in events:
            self._by_round.setdefault(event.round_index, []).append(event)

    @classmethod
    def fail_at(
        cls, schedule: Iterable[Tuple[int, CellId]]
    ) -> "ScriptedFaultModel":
        """Shorthand for fail-only scripts: ``[(round, cell), ...]``."""
        return cls([FaultEvent(rnd, cell, "fail") for rnd, cell in schedule])

    @classmethod
    def partition(
        cls, wall: Iterable[CellId], down_round: int, heal_round: int
    ) -> "ScriptedFaultModel":
        """A partition mask: fail every ``wall`` cell at ``down_round``,
        heal them all at ``heal_round``."""
        return cls(partition_events(wall, down_round, heal_round))

    @property
    def last_round(self) -> int:
        """The round of the final scripted event (-1 when empty)."""
        return max(self._by_round, default=-1)

    def decide(
        self,
        round_index: int,
        alive: Iterable[CellId],
        failed: Iterable[CellId],
        rng: random.Random,
    ) -> FaultDecision:
        events = self._by_round.get(round_index, [])
        fail: Set[CellId] = {e.cell for e in events if e.kind == "fail"}
        recover: Set[CellId] = {e.cell for e in events if e.kind == "recover"}
        overlap = fail & recover
        if overlap:
            raise ValueError(
                f"round {round_index}: cells scheduled to both fail and recover: "
                f"{sorted(overlap)}"
            )
        return FaultDecision(fail=frozenset(fail), recover=frozenset(recover))
