"""Fault substrate: crash and crash-recovery models for the cell grid.

The paper analyzes permanent crash failures (safety holds regardless;
progress resumes once failures cease) and evaluates, in Figure 9, a
random failure/recovery model where each round every live cell fails with
probability ``pf`` and every failed cell recovers with probability ``pr``
(following DeVille & Mitra, SSS 2009).

* :mod:`repro.faults.model` — fault model interface + Bernoulli model.
* :mod:`repro.faults.schedule` — deterministic scripted fault schedules.
* :mod:`repro.faults.injector` — applies a model to a ``System`` each round.
"""

from repro.faults.injector import FaultInjector
from repro.faults.model import (
    BernoulliFaultModel,
    FaultDecision,
    FaultModel,
    NoFaults,
    WindowedFaultModel,
)
from repro.faults.schedule import FaultEvent, ScriptedFaultModel

__all__ = [
    "BernoulliFaultModel",
    "FaultDecision",
    "FaultEvent",
    "FaultInjector",
    "FaultModel",
    "NoFaults",
    "ScriptedFaultModel",
    "WindowedFaultModel",
]
