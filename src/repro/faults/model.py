"""Fault model interface and the Bernoulli crash-recovery model.

A fault model is consulted once per round, *before* the ``update``
transition (the paper's ``fail`` transitions interleave between atomic
updates), and decides which cells to fail and which to recover.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.grid.topology import CellId


@dataclass(frozen=True)
class FaultDecision:
    """The fail/recover sets for one round."""

    fail: FrozenSet[CellId] = frozenset()
    recover: FrozenSet[CellId] = frozenset()

    @property
    def is_quiet(self) -> bool:
        return not self.fail and not self.recover


class FaultModel:
    """Interface: decide the fault events of each round."""

    def decide(
        self,
        round_index: int,
        alive: Iterable[CellId],
        failed: Iterable[CellId],
        rng: random.Random,
    ) -> FaultDecision:
        """Return which of the ``alive`` cells crash and which of the
        ``failed`` cells recover this round."""
        raise NotImplementedError


class NoFaults(FaultModel):
    """The fault-free environment (Figures 7 and 8)."""

    def decide(
        self,
        round_index: int,
        alive: Iterable[CellId],
        failed: Iterable[CellId],
        rng: random.Random,
    ) -> FaultDecision:
        return FaultDecision()


@dataclass
class BernoulliFaultModel(FaultModel):
    """The Figure 9 model: i.i.d. per-round, per-cell fail/recover coins.

    Each live cell fails with probability ``pf``; each failed cell recovers
    with probability ``pr``. ``immune`` cells never fail — the analysis
    sections assume the target is immune, while the Figure 9 experiment
    lets every cell (including the target) fail and recover; both setups
    are expressible.

    The long-run fraction of failed cells approaches
    ``pf / (pf + pr)`` (the stationary point of the two-state chain).
    """

    pf: float
    pr: float
    immune: FrozenSet[CellId] = frozenset()

    def __post_init__(self) -> None:
        if not 0.0 <= self.pf <= 1.0:
            raise ValueError(f"pf must be in [0, 1], got {self.pf}")
        if not 0.0 <= self.pr <= 1.0:
            raise ValueError(f"pr must be in [0, 1], got {self.pr}")

    def stationary_failed_fraction(self) -> float:
        """Expected long-run fraction of failed (non-immune) cells."""
        if self.pf == 0.0:
            return 0.0
        if self.pf + self.pr == 0.0:
            return 0.0
        return self.pf / (self.pf + self.pr)

    def decide(
        self,
        round_index: int,
        alive: Iterable[CellId],
        failed: Iterable[CellId],
        rng: random.Random,
    ) -> FaultDecision:
        # Sorted iteration makes the rng stream independent of set order,
        # so runs are reproducible for a given seed.
        to_fail: Set[CellId] = {
            cid
            for cid in sorted(alive)
            if cid not in self.immune and rng.random() < self.pf
        }
        to_recover: Set[CellId] = {
            cid for cid in sorted(failed) if rng.random() < self.pr
        }
        return FaultDecision(fail=frozenset(to_fail), recover=frozenset(to_recover))


@dataclass
class ComposedFaultModel(FaultModel):
    """The union of several models' decisions in one environment.

    Lets a scripted adversary campaign play *on top of* background
    Bernoulli churn. Decisions are consulted in tuple order (so the rng
    stream stays deterministic) and unioned; a cell both failed and
    recovered by different models fails (the adversary wins ties — the
    conservative reading for safety properties).
    """

    models: Tuple[FaultModel, ...]

    def decide(
        self,
        round_index: int,
        alive: Iterable[CellId],
        failed: Iterable[CellId],
        rng: random.Random,
    ) -> FaultDecision:
        fail: Set[CellId] = set()
        recover: Set[CellId] = set()
        for model in self.models:
            decision = model.decide(round_index, alive, failed, rng)
            fail |= decision.fail
            recover |= decision.recover
        return FaultDecision(
            fail=frozenset(fail), recover=frozenset(recover - fail)
        )


@dataclass
class WindowedFaultModel(FaultModel):
    """Wrap a model so it is active only during ``[start, stop)`` rounds.

    Used by stabilization experiments: inject faults for a window, then
    measure how long recovery of routing/progress takes after the window
    closes (the paper's "once new failures cease" premise). Cells failed
    during the window optionally all recover at ``stop``.
    """

    inner: FaultModel
    start: int
    stop: int
    recover_all_at_stop: bool = False

    def decide(
        self,
        round_index: int,
        alive: Iterable[CellId],
        failed: Iterable[CellId],
        rng: random.Random,
    ) -> FaultDecision:
        if self.start <= round_index < self.stop:
            return self.inner.decide(round_index, alive, failed, rng)
        if self.recover_all_at_stop and round_index == self.stop:
            return FaultDecision(recover=frozenset(failed))
        return FaultDecision()
