"""Static global shortest-path tables (the centralized baseline's core).

One BFS from the target yields dist/next for every node — instantly
correct, but with no notion of failure: the tables are only as fresh as
the last time someone recomputed them. Used by the centralized baseline
and as the verification oracle for the distance-vector router.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Hashable, Iterable, Optional, Set, Tuple

INFINITY = math.inf
Node = Hashable


def static_routes(
    graph, target: Node, excluded: Iterable[Node] = ()
) -> Tuple[Dict[Node, float], Dict[Node, Optional[Node]]]:
    """BFS ``(dist, next_hop)`` tables toward ``target``.

    ``excluded`` nodes (e.g. currently crashed ones) are treated as absent.
    Next-hop ties break toward the neighbor with the smallest ``repr`` for
    determinism.
    """
    nodes = set(graph.nodes)
    if target not in nodes:
        raise ValueError(f"target {target!r} not in graph")
    excluded_set: Set[Node] = set(excluded)
    dist: Dict[Node, float] = {node: INFINITY for node in nodes}
    next_hop: Dict[Node, Optional[Node]] = {node: None for node in nodes}
    if target in excluded_set:
        return dist, next_hop

    dist[target] = 0.0
    queue = deque([target])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor in excluded_set:
                continue
            if dist[neighbor] == INFINITY:
                dist[neighbor] = dist[node] + 1.0
                queue.append(neighbor)

    for node in nodes:
        if node == target or dist[node] == INFINITY:
            continue
        candidates = [
            neighbor
            for neighbor in graph.neighbors(node)
            if neighbor not in excluded_set and dist[neighbor] == dist[node] - 1.0
        ]
        next_hop[node] = min(candidates, key=repr) if candidates else None
    return dist, next_hop
