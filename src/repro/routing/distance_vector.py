"""Self-stabilizing distance-vector routing on arbitrary graphs.

The synchronous rule of the paper's Route function, for any undirected
graph: each round, every live non-target node simultaneously sets

    ``dist := 1 + min(neighbors' dist)``     (infinity propagates)
    ``next := argmin (dist, node-id)``

against the previous round's values. Crashed nodes advertise infinity.
Lemma 6's guarantee carries over verbatim: after failures cease, a node
at true hop distance ``h`` from the target stabilizes within ``h``
rounds, and the whole graph within its (failure-adjusted) eccentricity.

Works with ``networkx`` graphs or any object exposing ``nodes`` and
``neighbors(node)``.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Set

INFINITY = math.inf
Node = Hashable


class DistanceVectorRouter:
    """Round-based self-stabilizing BFS routing over a graph."""

    def __init__(self, graph, target: Node):
        if target not in set(graph.nodes):
            raise ValueError(f"target {target!r} not in graph")
        self.graph = graph
        self.target = target
        self.dist: Dict[Node, float] = {node: INFINITY for node in graph.nodes}
        self.next_hop: Dict[Node, Optional[Node]] = {
            node: None for node in graph.nodes
        }
        self.crashed: Set[Node] = set()
        self.dist[target] = 0.0

    # ------------------------------------------------------------------

    def crash(self, node: Node) -> None:
        """Crash a node: it advertises infinity and computes nothing."""
        if node not in self.dist:
            raise ValueError(f"unknown node {node!r}")
        self.crashed.add(node)
        self.dist[node] = INFINITY
        self.next_hop[node] = None

    def recover(self, node: Node) -> None:
        """Recover a node with cleared routing state."""
        self.crashed.discard(node)
        self.dist[node] = 0.0 if node == self.target else INFINITY
        self.next_hop[node] = None

    # ------------------------------------------------------------------

    def step(self) -> bool:
        """One synchronous round; returns True when anything changed."""
        snapshot = dict(self.dist)
        changed = False
        for node in self.graph.nodes:
            if node in self.crashed or node == self.target:
                continue
            best_dist = INFINITY
            best_next: Optional[Node] = None
            for neighbor in self.graph.neighbors(node):
                d = snapshot[neighbor]
                if d < best_dist or (
                    d == best_dist
                    and best_next is not None
                    and repr(neighbor) < repr(best_next)
                ):
                    best_dist = d
                    best_next = neighbor
            new_dist = INFINITY if best_dist == INFINITY else best_dist + 1.0
            new_next = None if new_dist == INFINITY else best_next
            if new_dist != self.dist[node] or new_next != self.next_hop[node]:
                changed = True
                self.dist[node] = new_dist
                self.next_hop[node] = new_next
        return changed

    def run_to_fixpoint(self, max_rounds: Optional[int] = None) -> int:
        """Step until quiescent; returns the number of rounds taken.

        ``max_rounds`` defaults to the node count (Corollary 7's bound for
        the grid is ``O(N^2)`` = the number of nodes; for general graphs
        the eccentricity is at most ``|V| - 1``, plus one quiescent
        confirmation round).
        """
        budget = (len(self.dist) + 1) if max_rounds is None else max_rounds
        for rounds in range(budget):
            if not self.step():
                return rounds
        raise RuntimeError(f"routing did not stabilize within {budget} rounds")

    # ------------------------------------------------------------------

    def true_distances(self) -> Dict[Node, float]:
        """Ground-truth BFS distances through live nodes (for verification)."""
        rho = {node: INFINITY for node in self.dist}
        if self.target in self.crashed:
            return rho
        rho[self.target] = 0.0
        frontier: List[Node] = [self.target]
        depth = 0.0
        while frontier:
            depth += 1.0
            next_frontier: List[Node] = []
            for node in frontier:
                for neighbor in self.graph.neighbors(node):
                    if neighbor in self.crashed or rho[neighbor] != INFINITY:
                        continue
                    rho[neighbor] = depth
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return rho

    def is_correct(self) -> bool:
        """Do dist/next match the ground truth everywhere (live nodes)?"""
        rho = self.true_distances()
        for node in self.dist:
            if node in self.crashed:
                continue
            if self.dist[node] != rho[node]:
                return False
            if node == self.target or rho[node] == INFINITY:
                continue
            nxt = self.next_hop[node]
            if nxt is None or rho[nxt] != rho[node] - 1.0:
                return False
        return True

    def route_from(self, node: Node, max_hops: Optional[int] = None) -> List[Node]:
        """Follow next-hops from ``node`` to the target (for tests/demos)."""
        path = [node]
        budget = len(self.dist) if max_hops is None else max_hops
        cursor = node
        for _ in range(budget):
            if cursor == self.target:
                return path
            cursor = self.next_hop[cursor]
            if cursor is None:
                raise ValueError(f"no route from {node!r}")
            path.append(cursor)
        raise ValueError(f"route from {node!r} did not reach target (loop?)")
