"""Routing substrate: the paper's Route rule, generalized.

The grid protocol's Route function is an instance of self-stabilizing
distance-vector (BFS) routing. This package lifts it to arbitrary graphs
(anything networkx-like) so it can be studied, tested, and compared in
isolation from the traffic machinery:

* :mod:`repro.routing.distance_vector` — the synchronous self-stabilizing
  algorithm with crash/recovery of nodes.
* :mod:`repro.routing.static` — one-shot global shortest-path tables (the
  non-stabilizing baseline a centralized coordinator would compute).
"""

from repro.routing.distance_vector import DistanceVectorRouter
from repro.routing.static import static_routes

__all__ = ["DistanceVectorRouter", "static_routes"]
