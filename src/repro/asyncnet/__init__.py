"""Asynchronous realization of the synchronous protocol.

The paper assumes "messages are delivered within bounded time" and
builds a synchronous round abstraction on top. This package closes that
gap concretely:

* :mod:`repro.asyncnet.eventsim` — a deterministic discrete-event
  scheduler (the substrate any asynchronous network simulation needs).
* :mod:`repro.asyncnet.delay` — per-message latency models (fixed,
  uniform jitter), seeded and reproducible.
* :mod:`repro.asyncnet.timed_rounds` — the classic *timed-rounds
  synchronizer*: with synchronized clocks and a known delay bound
  ``Delta``, every node turns at multiples of a period ``P >= Delta``;
  messages sent at one turn are guaranteed to arrive before the next.
  Under that guarantee the asynchronous execution is *identical* to the
  synchronous one (bisimulation tests prove it); when the bound is
  violated, late adverts are discarded as stale and the system degrades
  exactly like the lossy network — throughput falls, safety holds.
"""

from repro.asyncnet.delay import DelayModel, FixedDelay, HeavyTailDelay, UniformDelay
from repro.asyncnet.eventsim import EventScheduler
from repro.asyncnet.timed_rounds import TimedRoundSystem

__all__ = [
    "DelayModel",
    "EventScheduler",
    "FixedDelay",
    "HeavyTailDelay",
    "TimedRoundSystem",
    "UniformDelay",
]
