"""A deterministic discrete-event scheduler.

The minimal substrate for asynchronous network simulation: a priority
queue of timestamped actions with a stable tiebreak (insertion order),
so equal-time events fire in the order they were scheduled and runs are
bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

Action = Callable[[], None]


class EventScheduler:
    """Timestamped action queue with deterministic same-time ordering."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Action]] = []
        self._sequence = 0
        self.now: float = 0.0
        self.executed = 0

    def schedule_at(self, time: float, action: Action) -> None:
        """Schedule ``action`` at absolute ``time`` (>= now)."""
        if time < self.now - 1e-12:
            raise ValueError(
                f"cannot schedule into the past: t={time} < now={self.now}"
            )
        heapq.heappush(self._queue, (time, self._sequence, action))
        self._sequence += 1

    def schedule_in(self, delay: float, action: Action) -> None:
        """Schedule ``action`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be nonnegative, got {delay}")
        self.schedule_at(self.now + delay, action)

    @property
    def pending(self) -> int:
        return len(self._queue)

    def next_time(self) -> Optional[float]:
        """Timestamp of the earliest pending event (None when empty)."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Execute the earliest event; returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _, action = heapq.heappop(self._queue)
        self.now = time
        action()
        self.executed += 1
        return True

    def run_until(self, deadline: float) -> int:
        """Execute every event with ``time <= deadline``; returns the count.

        Advances ``now`` to ``deadline`` even if the queue empties first.
        """
        executed = 0
        while self._queue and self._queue[0][0] <= deadline + 1e-12:
            self.step()
            executed += 1
        self.now = max(self.now, deadline)
        return executed

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the queue completely (with a runaway guard)."""
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise RuntimeError(f"exceeded {max_events} events — runaway?")
        return executed
