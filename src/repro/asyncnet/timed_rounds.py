"""The timed-rounds synchronizer: synchronous rounds over an
asynchronous, jittery network.

Realization of the paper's "messages are delivered within bounded time"
assumption. All nodes share synchronized clocks and *turn* every
``period`` time units; one paper round is four turns:

====  ==========================================================
turn  action (consume what arrived, compute, send)
====  ==========================================================
A     consume last round's transfers; produce; send RouteAdverts
B     consume RouteAdverts -> Route; send OccupancyAdverts
C     consume OccupancyAdverts -> Signal; send GrantAdverts
D     consume GrantAdverts -> Move; send EntityTransferMessages
====  ==========================================================

Messages travel with latencies drawn from a :class:`DelayModel`. When
every latency is at most ``period`` (the engineered case,
``period >= Delta``), each message arrives before the turn that consumes
it and the execution is **identical** to the synchronous model — the
bisimulation tests prove this. A message arriving *after* its turn is
stale: adverts are discarded (their absence is read conservatively, so
safety is unaffected — same argument as the lossy network), while
entity transfers are physical hand-offs and have their delay clamped to
the period (matter cannot be dropped or time-shifted by the control
network).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.asyncnet.delay import DelayModel, FixedDelay
from repro.asyncnet.eventsim import EventScheduler
from repro.core.cell import CellState
from repro.core.entity import Entity
from repro.core.move import Transfer
from repro.core.params import Parameters
from repro.core.policies import RoundRobinTokenPolicy, TokenPolicy
from repro.core.sources import SourcePolicy
from repro.grid.topology import CellId, Grid
from repro.netsim.message import EntityTransferMessage, Message
from repro.netsim.process import CellProcess

Tag = Tuple[int, str]  # (round index, phase name)

_PHASES = ("route", "occupancy", "grant", "transfer")


@dataclass
class AsyncRoundReport:
    """Observable outcome of one timed round."""

    round_index: int
    consumed: List[Entity] = field(default_factory=list)
    produced: List[Entity] = field(default_factory=list)
    moved_cells: List[CellId] = field(default_factory=list)
    transfers: List[Transfer] = field(default_factory=list)
    """Boundary crossings that landed this round (same record type the
    synchronous Move phase emits, so drivers can treat reports uniformly)."""
    late_adverts: int = 0

    @property
    def consumed_count(self) -> int:
        return len(self.consumed)


class _AsyncLink:
    """Network adapter handed to ``CellProcess``: schedules deliveries."""

    def __init__(self, owner: "TimedRoundSystem"):
        self._owner = owner
        self.tag: Tag = (0, "route")
        self.deadline: float = 0.0

    def send(self, message: Message) -> None:
        self._owner._transmit(message, self.tag, self.deadline)

    def broadcast(self, src: CellId, make_message) -> None:
        for dst in self._owner.grid.neighbors(src):
            self.send(make_message(dst))


class TimedRoundSystem:
    """The protocol over an event-driven network with latency jitter."""

    def __init__(
        self,
        grid: Grid,
        params: Parameters,
        tid: CellId,
        sources: Optional[Mapping[CellId, SourcePolicy]] = None,
        delay_model: Optional[DelayModel] = None,
        period: float = 1.0,
        token_policy: Optional[TokenPolicy] = None,
        rng: Optional[random.Random] = None,
        delay_rng: Optional[random.Random] = None,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        grid.require(tid)
        self.grid = grid
        self.params = params
        self.tid = tid
        self.period = period
        self.delay_model = delay_model or FixedDelay(period / 2)
        self.sources: Dict[CellId, SourcePolicy] = dict(sources or {})
        for source in self.sources:
            grid.require(source)
            if source == tid:
                raise ValueError("the target cell cannot be a source")
        self.token_policy = token_policy or RoundRobinTokenPolicy()
        self.rng = rng or random.Random(0)
        self.delay_rng = delay_rng or random.Random(1)
        self.scheduler = EventScheduler()
        self.processes: Dict[CellId, CellProcess] = {
            cid: CellProcess(
                cell_id=cid,
                grid=grid,
                params=params,
                is_target=(cid == tid),
                token_policy=self.token_policy,
            )
            for cid in grid.cells()
        }
        self._link = _AsyncLink(self)
        self._inboxes: Dict[CellId, Dict[Tag, List[Message]]] = {
            cid: {} for cid in grid.cells()
        }
        self.round_index = 0
        self._next_uid = 0
        self.total_produced = 0
        self.total_consumed = 0
        self.late_adverts = 0
        self.messages_sent = 0

    # ------------------------------------------------------------------

    @property
    def cells(self) -> Dict[CellId, CellState]:
        """Per-cell states (monitor/renderer-compatible view)."""
        return {cid: process.state for cid, process in self.processes.items()}

    def fail(self, cid: CellId) -> None:
        """Crash a cell between rounds (it falls silent immediately)."""
        self.processes[self.grid.require(cid)].crash()

    def recover(self, cid: CellId) -> None:
        """Un-crash a cell with cleared protocol state."""
        process = self.processes[self.grid.require(cid)]
        if process.failed:
            process.recover()

    def entity_count(self) -> int:
        """Entities currently present across all cells."""
        return sum(len(p.state.members) for p in self.processes.values())

    def failed_cells(self) -> Set[CellId]:
        """Identifiers of currently crashed cells."""
        return {cid for cid, p in self.processes.items() if p.failed}

    # ------------------------------------------------------------------
    # Transmission and delivery
    # ------------------------------------------------------------------

    def _transmit(self, message: Message, tag: Tag, deadline: float) -> None:
        sender = self.processes[message.src]
        if sender.failed:
            return  # a crashed cell never communicates
        self.messages_sent += 1
        delay = self.delay_model.sample(message, self.delay_rng)
        if isinstance(message, EntityTransferMessage):
            # Physical hand-off: completes within the window by clamping.
            delay = min(delay, self.period * 0.99)
        arrival = self.scheduler.now + delay

        def deliver() -> None:
            if arrival > deadline + 1e-12:
                # Stale advert: the consuming turn has passed. Discard;
                # absence reads conservatively (see module docstring).
                self.late_adverts += 1
                return
            self._inboxes[message.dst].setdefault(tag, []).append(message)

        self.scheduler.schedule_at(arrival, deliver)

    def _consume(self, cid: CellId, tag: Tag) -> List[Message]:
        inbox = self._inboxes[cid]
        messages = inbox.pop(tag, [])
        # Deterministic processing order, matching the synchronous network.
        messages.sort(key=lambda m: (m.src, type(m).__name__))
        return messages

    # ------------------------------------------------------------------
    # The four turns of one round
    # ------------------------------------------------------------------

    def run_round(self) -> AsyncRoundReport:
        """One paper round: four timed turns plus transfer landing."""
        r = self.round_index
        base = 4 * r * self.period
        report = AsyncRoundReport(round_index=r)
        late_before = self.late_adverts

        # Turn A: send route adverts.
        self.scheduler.run_until(base)
        self._arm(tag=(r, "route"), deadline=base + self.period)
        for process in self._live():
            process.advert_route(self._link)

        # Turn B: Route; send occupancy adverts.
        self.scheduler.run_until(base + self.period)
        for cid, process in self.processes.items():
            process.on_route(self._consume(cid, (r, "route")))
        self._arm(tag=(r, "occupancy"), deadline=base + 2 * self.period)
        for process in self._live():
            process.advert_occupancy(self._link)

        # Turn C: Signal; send grant adverts.
        self.scheduler.run_until(base + 2 * self.period)
        for cid, process in self.processes.items():
            process.on_occupancy(self._consume(cid, (r, "occupancy")))
        self._arm(tag=(r, "grant"), deadline=base + 3 * self.period)
        for process in self._live():
            process.advert_grant(self._link)

        # Turn D: Move; send transfers.
        self.scheduler.run_until(base + 3 * self.period)
        self._arm(tag=(r, "transfer"), deadline=base + 4 * self.period)
        for cid, process in self.processes.items():
            granted_inbox = self._consume(cid, (r, "grant"))
            if process.on_grant(granted_inbox, self._link):
                report.moved_cells.append(cid)

        # Turn E (== the next round's turn A instant): transfers land,
        # then sources produce — the paper round is now complete.
        self.scheduler.run_until(base + 4 * self.period)
        for cid, process in self.processes.items():
            inbox = self._consume(cid, (r, "transfer"))
            for message in inbox:
                if isinstance(message, EntityTransferMessage):
                    report.transfers.append(
                        Transfer(
                            uid=message.uid,
                            src=message.src,
                            dst=cid,
                            consumed=process.is_target,
                        )
                    )
            consumed = process.on_transfers(inbox)
            report.consumed.extend(consumed)
        self.total_consumed += len(report.consumed)
        report.produced = self._produce()

        report.late_adverts = self.late_adverts - late_before
        self.round_index += 1
        return report

    # ``update`` alias so monitors/drivers treat all three system flavors
    # uniformly.
    update = run_round

    def run(self, rounds: int) -> List[AsyncRoundReport]:
        """Run ``rounds`` consecutive timed rounds."""
        return [self.run_round() for _ in range(rounds)]

    def _arm(self, tag: Tag, deadline: float) -> None:
        self._link.tag = tag
        self._link.deadline = deadline

    def _live(self) -> List[CellProcess]:
        return [p for p in self.processes.values() if not p.failed]

    def _produce(self) -> List[Entity]:
        produced: List[Entity] = []
        for cid in sorted(self.sources):
            process = self.processes[cid]
            if process.failed:
                continue
            candidate = self.sources[cid].place(
                process.state, self.params, self.round_index, self.rng
            )
            if candidate is None:
                continue
            entity = Entity(
                uid=self._next_uid,
                x=candidate.x,
                y=candidate.y,
                birth_round=self.round_index,
                side=self.params.l,
            )
            self._next_uid += 1
            self.total_produced += 1
            process.state.add_entity(entity)
            produced.append(entity)
        return produced
