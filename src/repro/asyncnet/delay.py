"""Per-message network latency models."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.netsim.message import Message


class DelayModel:
    """Interface: sample the latency of one message."""

    def sample(self, message: Message, rng: random.Random) -> float:
        """Draw this message's latency."""
        raise NotImplementedError

    @property
    def bound(self) -> float:
        """An upper bound on any sampled delay (the protocol's Delta)."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedDelay(DelayModel):
    """Every message takes exactly ``delay`` time units."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"delay must be nonnegative, got {self.delay}")

    def sample(self, message: Message, rng: random.Random) -> float:
        return self.delay

    @property
    def bound(self) -> float:
        return self.delay


@dataclass(frozen=True)
class UniformDelay(DelayModel):
    """Latency uniform in ``[lo, hi]`` — jitter without reordering bias.

    Distinct messages get independent samples, so two messages on the
    same link may be reordered, which the timed-round synchronizer must
    (and does) tolerate.
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi:
            raise ValueError(f"need 0 <= lo <= hi, got [{self.lo}, {self.hi}]")

    def sample(self, message: Message, rng: random.Random) -> float:
        return rng.uniform(self.lo, self.hi)

    @property
    def bound(self) -> float:
        return self.hi


@dataclass(frozen=True)
class HeavyTailDelay(DelayModel):
    """Mostly fast, occasionally (probability ``tail_p``) very slow.

    ``bound`` reports the *nominal* bound ``hi`` — tail samples exceed
    it deliberately, modeling a network whose engineered delay bound is
    occasionally violated. Used by the late-delivery degradation tests.
    """

    lo: float
    hi: float
    tail_p: float
    tail_factor: float = 5.0

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi:
            raise ValueError(f"need 0 <= lo <= hi, got [{self.lo}, {self.hi}]")
        if not 0 <= self.tail_p <= 1:
            raise ValueError(f"tail_p must be a probability, got {self.tail_p}")

    def sample(self, message: Message, rng: random.Random) -> float:
        base = rng.uniform(self.lo, self.hi)
        if rng.random() < self.tail_p:
            return base * self.tail_factor
        return base

    @property
    def bound(self) -> float:
        return self.hi
