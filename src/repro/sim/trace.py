"""Trace recording and offline replay verification.

A :class:`TraceRecorder` captures, per round, the protocol-relevant
state of every cell plus the round's observable events, as JSON-lines —
an audit artifact a paper-reproduction run can ship. The companion
:func:`verify_trace` re-checks the paper's state properties (Safe,
Invariants 1-2) *offline* on a recorded trace, and
:func:`replay_throughput` recomputes the throughput series from the
events, so claims in result files can be re-derived from raw traces
without re-running the simulation.

This module records *state snapshots* (what the world looks like after
each round). Its sibling :mod:`repro.obs.tracer` records *protocol
events* (what the phases decided: grants, blocks, rotations,
transfers); ``cellularflows trace --events`` writes both side by side,
and ``cellularflows report`` summarizes the event form. The two file
kinds are distinguished by their header line, and each reader rejects
the other's files with a pointed message.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.core.system import RoundReport, System
from repro.geometry.separation import axis_separated
from repro.geometry.point import Point
from repro.geometry.tolerance import tol_ge, tol_le


def snapshot_state(system: System) -> Dict:
    """JSON-ready snapshot of the protocol state."""
    cells = {}
    for cid, state in system.cells.items():
        cells[f"{cid[0]},{cid[1]}"] = {
            "failed": state.failed,
            "dist": None if math.isinf(state.dist) else state.dist,
            "next": list(state.next_id) if state.next_id else None,
            "signal": list(state.signal) if state.signal else None,
            "members": [
                {"uid": uid, "x": entity.x, "y": entity.y}
                for uid, entity in sorted(state.members.items())
            ],
        }
    return cells


@dataclass
class TraceRecorder:
    """Accumulates one JSON record per round; writes JSON-lines."""

    params: Dict = field(default_factory=dict)
    records: List[Dict] = field(default_factory=list)

    @classmethod
    def for_system(cls, system: System) -> "TraceRecorder":
        return cls(
            params={
                "l": system.params.l,
                "rs": system.params.rs,
                "v": system.params.v,
                "grid": [system.grid.width, system.grid.height],
                "tid": list(system.tid),
            }
        )

    def observe(self, system: System, report: RoundReport) -> None:
        """Append one round's snapshot and events."""
        self.records.append(
            {
                "round": report.round_index,
                "consumed": [entity.uid for entity in report.move.consumed],
                "produced": [entity.uid for entity in report.produced],
                "transfers": [
                    {"uid": t.uid, "src": list(t.src), "dst": list(t.dst)}
                    for t in report.move.transfers
                ],
                "state": snapshot_state(system),
            }
        )

    def save(self, path) -> Path:
        """Write header + records as JSON-lines; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w") as handle:
            handle.write(json.dumps({"header": self.params}) + "\n")
            for record in self.records:
                handle.write(json.dumps(record) + "\n")
        return target


def load_trace(path) -> tuple:
    """Read a trace file; returns ``(header, records)``."""
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ValueError(f"empty trace file: {path}")
    header = json.loads(lines[0])["header"]
    records = [json.loads(line) for line in lines[1:]]
    return header, records


@dataclass
class TraceViolation:
    round_index: int
    property_name: str
    detail: str


def verify_trace(path) -> List[TraceViolation]:
    """Offline re-check of Safe and Invariants 1-2 on a recorded trace."""
    header, records = load_trace(path)
    d = header["l"] + header["rs"]
    half_l = header["l"] / 2.0
    violations: List[TraceViolation] = []
    for record in records:
        seen_uids: Dict[int, str] = {}
        for cell_key, cell in record["state"].items():
            i, j = (int(part) for part in cell_key.split(","))
            members = cell["members"]
            for index, member in enumerate(members):
                uid = member["uid"]
                if uid in seen_uids:
                    violations.append(
                        TraceViolation(
                            record["round"],
                            "Invariant 2",
                            f"uid {uid} in both {seen_uids[uid]} and {cell_key}",
                        )
                    )
                seen_uids[uid] = cell_key
                inside = (
                    tol_ge(member["x"], i + half_l)
                    and tol_le(member["x"], i + 1 - half_l)
                    and tol_ge(member["y"], j + half_l)
                    and tol_le(member["y"], j + 1 - half_l)
                )
                if not inside:
                    violations.append(
                        TraceViolation(
                            record["round"],
                            "Invariant 1",
                            f"uid {uid} outside cell {cell_key}",
                        )
                    )
                for other in members[index + 1 :]:
                    if not axis_separated(
                        Point(member["x"], member["y"]),
                        Point(other["x"], other["y"]),
                        d,
                    ):
                        violations.append(
                            TraceViolation(
                                record["round"],
                                "Safe",
                                f"uids {uid},{other['uid']} too close in {cell_key}",
                            )
                        )
    return violations


def replay_throughput(path, warmup: int = 0) -> float:
    """Recompute average throughput from a trace's consumption events."""
    _, records = load_trace(path)
    effective = records[warmup:]
    if not effective:
        return 0.0
    return sum(len(record["consumed"]) for record in effective) / len(effective)


def iter_entity_positions(path, uid: int) -> Iterator[tuple]:
    """Yield ``(round, x, y)`` for one entity across a trace (debugging)."""
    _, records = load_trace(path)
    for record in records:
        for cell in record["state"].values():
            for member in cell["members"]:
                if member["uid"] == uid:
                    yield record["round"], member["x"], member["y"]
