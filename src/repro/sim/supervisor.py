"""Supervised execution of sweep points: retries, timeouts, crash recovery.

The parallel engine of :mod:`repro.sim.parallel` originally assumed a
friendly world: every point returns, no worker process dies, nothing
hangs. This module drops that assumption, in the spirit of the paper's
own observation model — a silent neighbor is indistinguishable from a
crashed one, so the only robust harness treats a missing answer as a
failure — and layers three guarantees on top of the runner's
determinism/order/resume contract:

* **Bounded retries** — a point that raises (or whose worker dies, or
  that exceeds the per-point wall-clock timeout) is re-run up to
  :attr:`RetryPolicy.max_retries` times with exponential backoff. A
  retry re-executes the *identical* seeded config, so a successful retry
  is bit-identical to a first-try success.
* **Worker-crash recovery** — each worker process is watched over its
  own duplex pipe; a vanished worker (OOM kill, SIGKILL, segfault) is
  detected as EOF on that pipe, reaped, replaced, and its in-flight
  point rescheduled.
* **Graceful degradation** — a sweep always terminates. A point that
  exhausts its budget yields a structured
  :class:`~repro.sim.results.PointFailure` (kind, exception type,
  message, traceback, attempts, elapsed) instead of tearing down the
  whole run.

The supervisor is transport-generic: ``work`` is any module-level
callable mapping one payload ``(index, label, config, extras)`` to
``(index, result)``. Production passes
``repro.sim.parallel._execute_point``; the chaos tests inject functions
that raise, hang, or SIGKILL their own process to prove each guarantee.

Scheduling notes: with ``workers == 1`` and no timeout the supervisor
runs points in-process (preserving the checkpointed-serial fast path);
any timeout forces process isolation, because a hung in-process point
cannot be interrupted. Backoff in pool mode is non-blocking — a waiting
retry never idles a worker that has other points to run.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback as traceback_module
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.sim.results import PointFailure

#: One unit of work: (index, label, config, extras-to-annotate).
PointPayload = Tuple[int, str, object, Dict]

#: ``work``: payload -> (index, result). Must be picklable (module-level).
WorkFunction = Callable[[PointPayload], Tuple[int, object]]

#: What :meth:`SweepSupervisor.run` yields per point.
PointOutcome = Tuple[int, object]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff.

    ``max_retries`` counts *re*-runs: a point is attempted at most
    ``max_retries + 1`` times. The delay before retry ``k`` (1-based)
    is ``min(backoff_cap, backoff_base * backoff_factor ** (k - 1))``;
    a ``backoff_base`` of 0 disables the delay entirely (tests).
    The schedule is deterministic — no jitter — so supervised runs stay
    reproducible.
    """

    max_retries: int = 2
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_cap: float = 5.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_cap < 0:
            raise ValueError(f"backoff_cap must be >= 0, got {self.backoff_cap}")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def backoff(self, failed_attempts: int) -> float:
        """Seconds to wait before the try after ``failed_attempts`` failures."""
        if self.backoff_base == 0.0:
            return 0.0
        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** (failed_attempts - 1),
        )


class PointFailureError(RuntimeError):
    """Strict mode: a point exhausted its retry budget (fail-fast)."""

    def __init__(self, failure: PointFailure):
        super().__init__(
            f"sweep point {failure.label!r} failed after {failure.attempts} "
            f"attempt(s) [{failure.kind}]: {failure.error_type}: {failure.message}"
        )
        self.failure = failure


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _supervised_worker(conn, work: WorkFunction) -> None:
    """Child main loop: recv a payload, run it, send the outcome; repeat.

    Every exception — including a result that fails to pickle on the way
    back — is turned into an ``("error", ...)`` message; the worker
    itself only exits on the ``None`` sentinel or a closed pipe.
    """
    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            return
        if payload is None:
            return
        try:
            index, result = work(payload)
            conn.send(("ok", index, result))
        except Exception as error:  # noqa: BLE001 — failures become data
            conn.send(
                (
                    "error",
                    payload[0],
                    type(error).__name__,
                    str(error),
                    traceback_module.format_exc(),
                )
            )


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------


class _PointState:
    """Mutable per-point supervision record (attempts, backoff, last error)."""

    __slots__ = (
        "payload",
        "attempts",
        "eligible_at",
        "first_started",
        "attempt_started",
        "last_kind",
        "last_error",
    )

    def __init__(self, payload: PointPayload):
        self.payload = payload
        self.attempts = 0
        self.eligible_at = 0.0
        self.first_started: Optional[float] = None
        self.attempt_started = 0.0
        self.last_kind = "error"
        self.last_error = ("", "", "")  # (type name, message, traceback)

    @property
    def index(self) -> int:
        return self.payload[0]

    @property
    def label(self) -> str:
        return self.payload[1]


class _WorkerHandle:
    """One supervised worker process and its command/result pipe."""

    __slots__ = ("process", "conn", "state", "deadline")

    def __init__(self, context, work: WorkFunction):
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_supervised_worker, args=(child_conn, work), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.state: Optional[_PointState] = None
        self.deadline: Optional[float] = None

    def reap(self) -> None:
        """Close the pipe and make sure the process is gone (kill if needed)."""
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(1.0)
        else:
            self.process.join(0.1)
        self.state = None
        self.deadline = None

    def shutdown(self) -> None:
        """Graceful exit for an idle worker; hard reap for a busy one."""
        if self.state is not None:
            self.reap()
            return
        try:
            self.conn.send(None)
        except (OSError, ValueError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(1.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(1.0)


class SweepSupervisor:
    """Run payloads under supervision; yield an outcome for every point.

    Parameters
    ----------
    work:
        Module-level callable ``payload -> (index, result)``.
    workers:
        Process count. ``1`` runs in-process unless ``point_timeout`` is
        set (a hung in-process point cannot be interrupted, so any
        timeout forces process isolation). ``0``/negative means one per
        CPU.
    retry:
        The :class:`RetryPolicy`; defaults to 2 retries with 0.25 s
        exponential backoff.
    point_timeout:
        Optional wall-clock seconds per attempt. An attempt that exceeds
        it has its worker killed and counts as a failed try.
    mp_context:
        Optional ``multiprocessing`` context name (``"fork"``/``"spawn"``).
    progress:
        Callback receiving one human-readable line per point event.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry`; when set,
        supervision activity is counted into the ``sweep.*`` metrics
        (completions, errors, retries, timeouts, worker deaths,
        exhausted points — see ``docs/observability.md``).
    sleep:
        Clock used for backoff waits (default ``time.sleep``). Tests
        inject a no-op so retry paths run instantly.
    """

    def __init__(
        self,
        work: WorkFunction,
        workers: int = 1,
        retry: Optional[RetryPolicy] = None,
        point_timeout: Optional[float] = None,
        mp_context: Optional[str] = None,
        progress: Callable[[str], None] = lambda message: None,
        metrics=None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if workers is None:
            workers = 1
        if workers <= 0:
            workers = os.cpu_count() or 1
        if point_timeout is not None and point_timeout <= 0:
            raise ValueError(f"point_timeout must be positive, got {point_timeout}")
        self.work = work
        self.workers = workers
        self.retry = retry or RetryPolicy()
        self.point_timeout = point_timeout
        self.mp_context = mp_context
        self.progress = progress
        self.metrics = metrics
        #: Injectable clock for backoff waits (tests pass a fake so
        #: retry/backoff paths run at full speed instead of sleeping
        #: real wall-clock). Production leaves the default.
        self.sleep = sleep

    def _count(self, name: str) -> None:
        """Increment a supervision counter when a registry is bound."""
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    # ------------------------------------------------------------------

    def run(
        self, name: str, payloads: Sequence[PointPayload]
    ) -> Iterator[PointOutcome]:
        """Yield ``(index, result-or-PointFailure)`` as points complete.

        Completion order is scheduling-dependent; callers reassemble by
        index. Exactly one outcome is yielded per payload — the sweep
        always terminates.
        """
        if not payloads:
            return
        if self.workers == 1 and self.point_timeout is None:
            yield from self._run_inprocess(name, payloads)
        else:
            yield from self._run_pool(name, payloads)

    # ------------------------------------------------------------------
    # In-process path (serial, no timeout enforcement needed)
    # ------------------------------------------------------------------

    def _run_inprocess(
        self, name: str, payloads: Sequence[PointPayload]
    ) -> Iterator[PointOutcome]:
        for payload in payloads:
            index, label = payload[0], payload[1]
            first_started = time.monotonic()
            last_error = ("", "", "")
            outcome: Optional[PointOutcome] = None
            for attempt in range(1, self.retry.max_attempts + 1):
                self._announce(name, label, attempt)
                try:
                    outcome = self.work(payload)
                    break
                except Exception as error:  # noqa: BLE001
                    self._count("sweep.errors")
                    last_error = (
                        type(error).__name__,
                        str(error),
                        traceback_module.format_exc(),
                    )
                    self.progress(
                        f"[{name}] {label} raised {last_error[0]}: {last_error[1]} "
                        f"(attempt {attempt}/{self.retry.max_attempts})"
                    )
                    if attempt < self.retry.max_attempts:
                        self._count("sweep.retries")
                        self.sleep(self.retry.backoff(attempt))
            if outcome is not None:
                self._count("sweep.points_completed")
                yield outcome
                continue
            self.progress(
                f"[{name}] giving up on {label} after "
                f"{self.retry.max_attempts} attempt(s)"
            )
            self._count("sweep.point_failures")
            yield index, PointFailure(
                index=index,
                label=label,
                kind="error",
                error_type=last_error[0],
                message=last_error[1],
                traceback=last_error[2],
                attempts=self.retry.max_attempts,
                elapsed=time.monotonic() - first_started,
            )

    # ------------------------------------------------------------------
    # Pool path (worker processes, death detection, timeouts)
    # ------------------------------------------------------------------

    def _run_pool(
        self, name: str, payloads: Sequence[PointPayload]
    ) -> Iterator[PointOutcome]:
        context = (
            multiprocessing.get_context(self.mp_context)
            if self.mp_context
            else multiprocessing.get_context()
        )
        count = max(1, min(self.workers, len(payloads)))
        workers = [_WorkerHandle(context, self.work) for _ in range(count)]
        pending = [_PointState(payload) for payload in payloads]
        try:
            while pending or any(w.state is not None for w in workers):
                now = time.monotonic()
                self._assign(name, workers, pending, now, context)
                busy = [w for w in workers if w.state is not None]
                if not busy:
                    # Everything in flight is actually waiting on backoff.
                    wake = min(state.eligible_at for state in pending)
                    self.sleep(min(max(0.0, wake - now), 1.0))
                    continue
                timeout = self._wait_timeout(workers, busy, pending, now)
                ready = _connection_wait(
                    [w.conn for w in busy], timeout=timeout
                )
                now = time.monotonic()
                for conn in ready:
                    worker = next(w for w in busy if w.conn is conn)
                    outcome = self._collect(
                        name, workers, worker, pending, context, now
                    )
                    if outcome is not None:
                        yield outcome
                for worker in list(workers):
                    if (
                        worker.state is not None
                        and worker.deadline is not None
                        and now >= worker.deadline
                    ):
                        outcome = self._expire(
                            name, workers, worker, pending, context, now
                        )
                        if outcome is not None:
                            yield outcome
        finally:
            for worker in workers:
                worker.shutdown()

    def _assign(
        self,
        name: str,
        workers: List[_WorkerHandle],
        pending: List[_PointState],
        now: float,
        context,
    ) -> None:
        """Hand eligible pending points to idle workers."""
        for slot in range(len(workers)):
            worker = workers[slot]
            if worker.state is not None:
                continue
            state = self._next_eligible(pending, now)
            if state is None:
                return
            state.attempts += 1
            if state.first_started is None:
                state.first_started = now
            state.attempt_started = now
            try:
                worker.conn.send(state.payload)
            except (OSError, ValueError):
                # The idle worker died between tasks: replace and re-send.
                worker.reap()
                workers[slot] = _WorkerHandle(context, self.work)
                worker = workers[slot]
                worker.conn.send(state.payload)
            worker.state = state
            worker.deadline = (
                now + self.point_timeout if self.point_timeout else None
            )
            self._announce(name, state.label, state.attempts)

    @staticmethod
    def _next_eligible(
        pending: List[_PointState], now: float
    ) -> Optional[_PointState]:
        for position, state in enumerate(pending):
            if state.eligible_at <= now:
                return pending.pop(position)
        return None

    def _wait_timeout(
        self,
        workers: List[_WorkerHandle],
        busy: List[_WorkerHandle],
        pending: List[_PointState],
        now: float,
    ) -> Optional[float]:
        """How long ``wait`` may block before a deadline or backoff expires."""
        candidates = [w.deadline for w in busy if w.deadline is not None]
        if pending and any(w.state is None for w in workers):
            candidates.append(min(state.eligible_at for state in pending))
        if not candidates:
            return None
        return max(0.0, min(candidates) - now)

    def _collect(
        self,
        name: str,
        workers: List[_WorkerHandle],
        worker: _WorkerHandle,
        pending: List[_PointState],
        context,
        now: float,
    ) -> Optional[PointOutcome]:
        """Handle a readable worker pipe: a result, an error, or EOF (death)."""
        state = worker.state
        assert state is not None
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            self._count("sweep.worker_deaths")
            exitcode = worker.process.exitcode
            worker.reap()
            workers[workers.index(worker)] = _WorkerHandle(context, self.work)
            state.last_kind = "worker-death"
            state.last_error = (
                "WorkerDeath",
                f"worker process died (exit code {exitcode}) while running "
                f"{state.label!r}",
                "",
            )
            return self._retry_or_fail(
                name, state, pending, now,
                note=f"worker died (exit code {exitcode})",
            )
        worker.state = None
        worker.deadline = None
        if message[0] == "ok":
            _, index, result = message
            self._count("sweep.points_completed")
            return index, result
        self._count("sweep.errors")
        _, _index, error_type, error_message, error_traceback = message
        state.last_kind = "error"
        state.last_error = (error_type, error_message, error_traceback)
        return self._retry_or_fail(
            name, state, pending, now,
            note=f"raised {error_type}: {error_message}",
        )

    def _expire(
        self,
        name: str,
        workers: List[_WorkerHandle],
        worker: _WorkerHandle,
        pending: List[_PointState],
        context,
        now: float,
    ) -> Optional[PointOutcome]:
        """Kill a worker whose point exceeded the wall-clock timeout."""
        state = worker.state
        assert state is not None
        elapsed = now - state.attempt_started
        self._count("sweep.timeouts")
        worker.reap()
        workers[workers.index(worker)] = _WorkerHandle(context, self.work)
        state.last_kind = "timeout"
        state.last_error = (
            "PointTimeout",
            f"exceeded the per-point timeout of {self.point_timeout}s "
            f"(ran {elapsed:.1f}s)",
            "",
        )
        return self._retry_or_fail(
            name, state, pending, now, note=f"timed out after {elapsed:.1f}s"
        )

    def _retry_or_fail(
        self,
        name: str,
        state: _PointState,
        pending: List[_PointState],
        now: float,
        note: str,
    ) -> Optional[PointOutcome]:
        """Requeue with backoff, or exhaust into a structured failure."""
        if state.attempts < self.retry.max_attempts:
            self._count("sweep.retries")
            delay = self.retry.backoff(state.attempts)
            state.eligible_at = now + delay
            pending.append(state)
            suffix = f" in {delay:.2f}s" if delay else ""
            self.progress(
                f"[{name}] {state.label} {note}; retry "
                f"{state.attempts + 1}/{self.retry.max_attempts}{suffix}"
            )
            return None
        error_type, message, error_traceback = state.last_error
        self._count("sweep.point_failures")
        self.progress(
            f"[{name}] {state.label} {note}; giving up after "
            f"{state.attempts} attempt(s)"
        )
        assert state.first_started is not None
        return state.index, PointFailure(
            index=state.index,
            label=state.label,
            kind=state.last_kind,
            error_type=error_type,
            message=message,
            traceback=error_traceback,
            attempts=state.attempts,
            elapsed=now - state.first_started,
        )

    # ------------------------------------------------------------------

    def _announce(self, name: str, label: str, attempt: int) -> None:
        if attempt == 1:
            self.progress(f"[{name}] running {label}")
        else:
            self.progress(
                f"[{name}] retrying {label} "
                f"(attempt {attempt}/{self.retry.max_attempts})"
            )
