"""Per-phase wall-time instrumentation.

Every ``System.update()`` fires the ``phase_observer`` hook after each of
its four sub-phases (Route, Signal, Move, produce). :class:`PhaseProfiler`
installs itself on that hook and accumulates the wall time spent inside
each sub-phase, plus everything the round loop does *around* the update
(fault injection, monitors, metrics — the ``overhead`` bucket). The
resulting :class:`PhaseTimings` ride along in
``SimulationResult.phase_timings`` so performance work has a measured
baseline for every run ever recorded.

Timing uses ``time.perf_counter``; the cost is four clock reads per round,
negligible next to a single Route sweep. The chained observer (monitors
also use ``phase_observer``) is timed *outside* the phase buckets, so
verification cost never pollutes the protocol-phase numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

#: The sub-phases of one ``update`` transition, in execution order.
PHASES = ("route", "signal", "move", "produce")


@dataclass
class PhaseTimings:
    """Accumulated wall time per ``update`` sub-phase.

    ``overhead`` is everything in the round loop that is not a protocol
    phase: fault injection, monitor checks, metric observation, and the
    chained phase observers. ``wall_time`` is the total across rounds, so
    ``wall_time >= route + signal + move + produce``.
    """

    route: float = 0.0
    signal: float = 0.0
    move: float = 0.0
    produce: float = 0.0
    overhead: float = 0.0
    rounds: int = 0
    wall_time: float = 0.0

    def add(self, phase: str, elapsed: float) -> None:
        """Accumulate ``elapsed`` seconds into one phase bucket."""
        setattr(self, phase, getattr(self, phase) + elapsed)

    @property
    def rounds_per_second(self) -> Optional[float]:
        """Observed simulation rate, or None before any round completed."""
        if self.rounds == 0 or self.wall_time <= 0.0:
            return None
        return self.rounds / self.wall_time

    def to_dict(self) -> Dict:
        """Plain-dict form (JSON-serializable)."""
        return {
            "route": self.route,
            "signal": self.signal,
            "move": self.move,
            "produce": self.produce,
            "overhead": self.overhead,
            "rounds": self.rounds,
            "wall_time": self.wall_time,
            "rounds_per_second": self.rounds_per_second,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PhaseTimings":
        payload = dict(data)
        payload.pop("rounds_per_second", None)  # derived, not stored state
        return cls(**payload)


@dataclass
class PhaseProfiler:
    """Measures phase wall times through ``System.phase_observer``.

    Usage (what :class:`~repro.sim.simulator.Simulator` does)::

        profiler = PhaseProfiler()
        profiler.install(system)          # chains any existing observer
        for _ in range(rounds):
            profiler.begin_round()
            ...                           # inject faults
            profiler.mark_overhead()      # injector time -> overhead
            system.update()               # phases timed via the hook
            ...                           # monitors, metrics
            profiler.end_round()          # trailing time -> overhead
    """

    timings: PhaseTimings = field(default_factory=PhaseTimings)
    _chained: Optional[Callable] = None
    _mark: float = 0.0
    _round_start: Optional[float] = None

    def install(self, system) -> "PhaseProfiler":
        """Install on ``system.phase_observer``, chaining any prior hook."""
        self._chained = system.phase_observer
        system.phase_observer = self._on_phase
        return self

    def begin_round(self) -> None:
        """Mark the start of one round-loop iteration."""
        self._round_start = time.perf_counter()
        self._mark = self._round_start

    def mark_overhead(self) -> None:
        """Attribute the time since the last mark to the overhead bucket."""
        now = time.perf_counter()
        self.timings.overhead += now - self._mark
        self._mark = now

    def _on_phase(self, name: str, system) -> None:
        now = time.perf_counter()
        if name in PHASES:
            self.timings.add(name, now - self._mark)
        if self._chained is not None:
            self._chained(name, system)
        # Re-mark *after* the chained observer so monitor time lands in
        # the overhead bucket, not the next phase's.
        self._mark = time.perf_counter()
        self.timings.overhead += self._mark - now

    def end_round(self) -> None:
        """Close out one iteration: attribute total and overhead time."""
        if self._round_start is None:
            return
        now = time.perf_counter()
        self.timings.wall_time += now - self._round_start
        self.timings.overhead += now - self._mark  # work after last phase
        self.timings.rounds += 1
        self._round_start = None
