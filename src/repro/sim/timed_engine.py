"""The ``timed`` round engine: asynchronous timed rounds behind the
synchronous engine interface.

Promotes :mod:`repro.asyncnet.timed_rounds` from a side module to a
first-class ``ENGINES`` dimension: a run with ``engine="timed"`` executes
every round as four timed turns over an event-driven network with
per-message latency jitter (``SimulationConfig.jitter`` round periods,
``Uniform(0, jitter)``; 0 = fixed half-period latency).

The adapter *shares state* with the driving :class:`~repro.core.system
.System`: every :class:`~repro.netsim.process.CellProcess` is re-pointed
at the System's own :class:`~repro.core.cell.CellState`, so the fault
injector's ``fail``/``recover`` transitions are immediately visible to
the processes and the monitors/oracles read one truth. Production shares
the System's source policies and rng stream, so (by the timed-rounds
bisimulation theorem) a run with jitter <= 1 period is *state-identical*
to the synchronous reference — the ``async-equivalence`` fuzz oracle
checks exactly that, per round, via ``state_digest``.

The synthesized :class:`~repro.core.system.RoundReport` carries the full
Move-phase observables (moved cells, boundary transfers, consumptions,
productions); the Route/Signal sub-reports stay empty — those phases
happen inside the processes, message by message, and have no global
sweep to report on.
"""

from __future__ import annotations

from repro.asyncnet.delay import FixedDelay, UniformDelay
from repro.asyncnet.timed_rounds import TimedRoundSystem
from repro.core.route import RoutePhaseReport
from repro.core.signal import SignalPhaseReport
from repro.core.move import MovePhaseReport
from repro.core.system import RoundReport, System
from repro.sim.engine import RoundEngine
from repro.sim.seeding import derive_rng


class TimedEngine(RoundEngine):
    """Run each round on the timed-rounds asynchronous synchronizer."""

    name = "timed"

    def __init__(self, system: System, config=None):
        super().__init__(system, config)
        jitter = float(getattr(config, "jitter", 0.0) or 0.0)
        seed = int(getattr(config, "seed", 0) or 0)
        period = 1.0
        delay_model = (
            UniformDelay(0.0, jitter * period)
            if jitter > 0.0
            else FixedDelay(period / 2)
        )
        self.timed = TimedRoundSystem(
            grid=system.grid,
            params=system.params,
            tid=system.tid,
            sources=system.sources,
            delay_model=delay_model,
            period=period,
            token_policy=system.token_policy,
            rng=system.rng,
            delay_rng=derive_rng(seed, "delay"),
        )
        # Re-point every process at the System's own CellState: the fault
        # injector mutates System cells, and the processes must see it.
        for cid, process in self.timed.processes.items():
            process.state = system.cells[cid]
        self.timed.round_index = system.round_index
        self.timed._next_uid = system._next_uid
        self.timed.total_produced = system.total_produced
        self.timed.total_consumed = system.total_consumed

    @property
    def late_adverts(self) -> int:
        """Adverts discarded as stale (0 whenever jitter <= 1 period)."""
        return self.timed.late_adverts

    def step(self) -> RoundReport:
        report = self.timed.run_round()
        system = self.system
        system.round_index = self.timed.round_index
        system._next_uid = self.timed._next_uid
        system.total_produced = self.timed.total_produced
        system.total_consumed = self.timed.total_consumed
        return RoundReport(
            round_index=report.round_index,
            route=RoutePhaseReport(),
            signal=SignalPhaseReport(),
            move=MovePhaseReport(
                moved_cells=list(report.moved_cells),
                transfers=list(report.transfers),
                consumed=list(report.consumed),
            ),
            produced=list(report.produced),
        )

    def close(self) -> None:
        """Nothing to release (the scheduler is in-process)."""
