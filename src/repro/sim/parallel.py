"""Parallel sweep execution with supervision and crash-safe checkpoints.

The figure sweeps are embarrassingly parallel: every point is an
independent ``(label, config, extras)`` triple whose randomness is fully
determined by ``config.seed`` (all streams derive from it via
:mod:`repro.sim.seeding`), so fanning points out over worker processes
cannot change any result — only the wall clock. :class:`ParallelSweepRunner`
provides that fan-out with four guarantees:

* **Determinism** — each worker runs the exact same
  :func:`repro.sim.runner.run_config` call the serial loop would, with
  the config's own seed; per-point RNG streams come from
  :func:`repro.sim.seeding.derive_rng` inside ``build_simulation`` and
  never depend on scheduling. Retries re-run the identical seeded
  config, so a point that succeeds on attempt 3 is bit-identical to one
  that succeeded on attempt 1.
* **Order** — results are reassembled by point index, so the returned
  :class:`~repro.sim.results.SweepResult` is identical (modulo the
  measured ``phase_timings``) to serial execution, whatever order
  workers finish in.
* **Resumability** — every completed point is appended to a JSON-lines
  checkpoint (one fsynced ``write`` per record) as soon as it finishes;
  a rerun with ``resume=True`` skips those points and only executes the
  remainder. Records carry a schema version and a config fingerprint:
  resuming after a parameter change is *rejected* instead of silently
  replaying stale results, and a torn final line (process killed
  mid-append) is dropped with a warning and that point re-run.
* **Graceful degradation** — execution is supervised
  (:class:`~repro.sim.supervisor.SweepSupervisor`): points that raise
  are retried with exponential backoff, hung points are killed after
  ``point_timeout`` seconds, and a worker that vanishes (OOM kill,
  segfault) is reaped, replaced, and its in-flight point rescheduled.
  A sweep always terminates; exhausted points surface as structured
  :class:`~repro.sim.results.PointFailure` records on the
  ``SweepResult`` — unless ``strict=True``, which restores fail-fast by
  raising :class:`~repro.sim.supervisor.PointFailureError`.

Entry points: :meth:`ParallelSweepRunner.run_points` (generic) and
:meth:`Sweep.run(workers=N) <repro.sim.sweep.Sweep.run>` /
``run_replications(workers=N)`` which delegate here. The failure
taxonomy and retry semantics are documented in ``docs/resilience.md``.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.sim.config import SimulationConfig
from repro.sim.results import PointFailure, SimulationResult, SweepResult
from repro.sim.runner import run_config
from repro.sim.supervisor import (
    PointFailureError,
    RetryPolicy,
    SweepSupervisor,
    WorkFunction,
)

#: One unit of work: (index, label, config, extras-to-annotate).
PointPayload = Tuple[int, str, SimulationConfig, Dict]

#: What :meth:`ParallelSweepRunner.run_points` returns per point.
PointResult = Union[SimulationResult, PointFailure]

#: Version stamp written into every checkpoint record. Bump when the
#: record shape changes; loading rejects records from a *newer* schema
#: and accepts older ones (schema 1 predates config fingerprints).
CHECKPOINT_SCHEMA = 2


def _execute_point(payload: PointPayload) -> Tuple[int, SimulationResult]:
    """Worker entry point: run one sweep point (module-level: picklable)."""
    index, _label, config, extras = payload
    return index, run_config(config, **extras)


class CheckpointMismatch(RuntimeError):
    """A checkpoint file does not correspond to the sweep being run."""


class ParallelSweepRunner:
    """Executes labeled simulation points under a supervised worker pool.

    Parameters
    ----------
    workers:
        Process count. ``1`` (or ``None``) runs in-process — still useful
        for checkpointed serial runs — unless ``point_timeout`` is set,
        which forces process isolation. ``0``/negative means
        ``os.cpu_count()``.
    checkpoint:
        Optional JSON-lines path recording each completed point. Written
        incrementally (one fsynced append per point) so an interrupted
        run loses at most the in-flight points.
    resume:
        When True and the checkpoint exists, completed points are loaded
        from it and skipped; a torn final line is dropped (warning) and
        its point re-run, and records whose config fingerprint no longer
        matches the sweep raise :class:`CheckpointMismatch`. When False
        an existing checkpoint is truncated — a fresh run never silently
        mixes stale results.
    progress:
        Callback receiving one human-readable line per point event.
    mp_context:
        Optional ``multiprocessing`` context name (``"fork"``/``"spawn"``).
        The default context of the platform is used when omitted; CI runs
        the smoke test under ``spawn`` to catch pickling regressions.
    point_timeout:
        Optional wall-clock seconds per attempt; a point that exceeds it
        has its worker killed and the attempt counts as failed.
    max_retries / backoff_base / retry:
        Retry budget per point (see
        :class:`~repro.sim.supervisor.RetryPolicy`); ``retry`` overrides
        the two scalars when given.
    strict:
        Restore fail-fast: raise
        :class:`~repro.sim.supervisor.PointFailureError` as soon as any
        point exhausts its budget, instead of recording a
        :class:`~repro.sim.results.PointFailure` and carrying on.
    work:
        The work function (module-level, picklable). Overridable for the
        chaos tests; production uses :func:`_execute_point`.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry` receiving
        the ``sweep.*`` supervision counters; a fresh registry is
        created when omitted and exposed as ``runner.metrics``.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        checkpoint: Optional[Path] = None,
        resume: bool = False,
        progress: Callable[[str], None] = lambda message: None,
        mp_context: Optional[str] = None,
        point_timeout: Optional[float] = None,
        max_retries: int = 2,
        backoff_base: float = 0.25,
        retry: Optional[RetryPolicy] = None,
        strict: bool = False,
        work: WorkFunction = _execute_point,
        metrics=None,
    ):
        if workers is None:
            workers = 1
        if workers <= 0:
            workers = os.cpu_count() or 1
        self.workers = workers
        self.checkpoint = Path(checkpoint) if checkpoint is not None else None
        self.resume = resume
        self.progress = progress
        self.mp_context = mp_context
        self.retry = retry or RetryPolicy(
            max_retries=max_retries, backoff_base=backoff_base
        )
        self.point_timeout = point_timeout
        self.strict = strict
        self.work = work
        if metrics is None:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def _load_checkpoint(
        self, name: str, points: Sequence[Tuple[str, SimulationConfig, Dict]]
    ) -> Dict[int, SimulationResult]:
        """Completed results keyed by point index, fully validated.

        Tolerates exactly one torn *final* line (the signature of a
        process killed mid-append): it is dropped with a warning, the
        file repaired, and that point re-run. Corruption anywhere else,
        a schema from the future, a foreign sweep, or a config
        fingerprint mismatch raise :class:`CheckpointMismatch`.
        """
        if self.checkpoint is None or not self.checkpoint.exists():
            return {}
        if not self.resume:
            self.checkpoint.unlink()
            return {}
        text = self.checkpoint.read_text()
        content = [
            (number, line)
            for number, line in enumerate(text.split("\n"), start=1)
            if line.strip()
        ]
        completed: Dict[int, SimulationResult] = {}
        good_lines: List[str] = []
        torn = False
        for position, (line_number, line) in enumerate(content):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                if position == len(content) - 1:
                    torn = True
                    message = (
                        f"{self.checkpoint}:{line_number} is a torn final "
                        f"line (interrupted mid-append); dropping it — that "
                        f"point will be re-run"
                    )
                    warnings.warn(message, RuntimeWarning, stacklevel=2)
                    self.progress(f"[{name}] {message}")
                    break
                raise CheckpointMismatch(
                    f"{self.checkpoint}:{line_number} is corrupt mid-file "
                    f"({error}); refusing to resume from a damaged checkpoint"
                ) from error
            completed.update(self._validate_record(name, points, line_number, record))
            good_lines.append(line)
        # Repair the file so future appends start on a fresh line: drop a
        # torn tail and restore a missing trailing newline, atomically.
        if torn or (good_lines and not text.endswith("\n")):
            self._rewrite_checkpoint(good_lines)
        return completed

    def _validate_record(
        self,
        name: str,
        points: Sequence[Tuple[str, SimulationConfig, Dict]],
        line_number: int,
        record: Dict,
    ) -> Dict[int, SimulationResult]:
        schema = record.get("schema", 1)
        if not isinstance(schema, int) or schema > CHECKPOINT_SCHEMA:
            raise CheckpointMismatch(
                f"{self.checkpoint}:{line_number} uses checkpoint schema "
                f"{schema!r}; this build reads schemas up to {CHECKPOINT_SCHEMA}"
            )
        if record.get("sweep") != name:
            raise CheckpointMismatch(
                f"{self.checkpoint}:{line_number} belongs to sweep "
                f"{record.get('sweep')!r}, not {name!r}"
            )
        index = record.get("index")
        if (
            not isinstance(index, int)
            or index >= len(points)
            or record.get("label") != points[index][0]
        ):
            raise CheckpointMismatch(
                f"{self.checkpoint}:{line_number} records point "
                f"{index} = {record.get('label')!r}, which does not match "
                f"the sweep being resumed"
            )
        if "result" not in record:
            raise CheckpointMismatch(
                f"{self.checkpoint}:{line_number} has no result payload"
            )
        if schema >= 2:
            expected = points[index][1].fingerprint()
            recorded = record.get("config_fingerprint")
            if recorded != expected:
                raise CheckpointMismatch(
                    f"{self.checkpoint}:{line_number} records point "
                    f"{record['label']!r} under config fingerprint "
                    f"{recorded}, but the sweep now builds {expected} — "
                    f"parameters changed since the checkpoint was written; "
                    f"refusing stale results (delete the checkpoint or run "
                    f"without resume)"
                )
        else:
            self.progress(
                f"[{name}] {self.checkpoint}:{line_number} predates config "
                f"fingerprints (schema 1); accepted on label match only"
            )
        return {index: SimulationResult.from_dict(record["result"])}

    def _rewrite_checkpoint(self, lines: List[str]) -> None:
        """Atomically replace the checkpoint with the validated lines."""
        assert self.checkpoint is not None
        repair = self.checkpoint.with_suffix(self.checkpoint.suffix + ".repair")
        repair.write_text("".join(line + "\n" for line in lines))
        os.replace(repair, self.checkpoint)

    def _append_checkpoint(
        self,
        name: str,
        index: int,
        label: str,
        config: SimulationConfig,
        result: SimulationResult,
    ) -> None:
        if self.checkpoint is None:
            return
        self.checkpoint.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "schema": CHECKPOINT_SCHEMA,
            "sweep": name,
            "index": index,
            "label": label,
            "config_fingerprint": config.fingerprint(),
            "result": result.to_dict(),
        }
        # One write + fsync per record: a crash can tear at most the final
        # line, which _load_checkpoint detects and drops on resume.
        data = (json.dumps(record) + "\n").encode("utf-8")
        with self.checkpoint.open("ab") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_points(
        self, name: str, points: Sequence[Tuple[str, SimulationConfig, Dict]]
    ) -> List[PointResult]:
        """Execute ``(label, config, extras)`` points; return them in order.

        Each entry is a :class:`SimulationResult`, or a
        :class:`~repro.sim.results.PointFailure` for a point that
        exhausted its retry budget (never raised unless ``strict``).
        """
        outcomes: Dict[int, PointResult] = dict(
            self._load_checkpoint(name, points)
        )
        for index in outcomes:
            self.progress(f"[{name}] resumed {points[index][0]} from checkpoint")
        payloads: List[PointPayload] = [
            (index, label, config, extras)
            for index, (label, config, extras) in enumerate(points)
            if index not in outcomes
        ]
        supervisor = SweepSupervisor(
            work=self.work,
            workers=self.workers,
            retry=self.retry,
            point_timeout=self.point_timeout,
            mp_context=self.mp_context,
            progress=self.progress,
            metrics=self.metrics,
        )
        for index, outcome in supervisor.run(name, payloads):
            label = points[index][0]
            if isinstance(outcome, PointFailure):
                if self.strict:
                    raise PointFailureError(outcome)
                outcomes[index] = outcome
            else:
                self._append_checkpoint(
                    name, index, label, points[index][1], outcome
                )
                self.progress(f"[{name}] finished {label}")
                outcomes[index] = outcome
        return [outcomes[index] for index in range(len(points))]

    def run_sweep(
        self, name: str, points: Sequence[Tuple[str, SimulationConfig, Dict]]
    ) -> SweepResult:
        """Like :meth:`run_points`, bundled into a :class:`SweepResult`.

        Successful points land in ``result.runs`` (in point order);
        exhausted points in ``result.failures``.
        """
        result = SweepResult(name=name)
        for outcome in self.run_points(name, points):
            if isinstance(outcome, PointFailure):
                result.add_failure(outcome)
            else:
                result.add(outcome)
        return result
