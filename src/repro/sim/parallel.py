"""Parallel sweep execution with checkpoint/resume.

The figure sweeps are embarrassingly parallel: every point is an
independent ``(label, config, extras)`` triple whose randomness is fully
determined by ``config.seed`` (all streams derive from it via
:mod:`repro.sim.seeding`), so fanning points out over a process pool
cannot change any result — only the wall clock. :class:`ParallelSweepRunner`
provides that fan-out with three guarantees:

* **Determinism** — each worker runs the exact same
  :func:`repro.sim.runner.run_config` call the serial loop would, with
  the config's own seed; per-point RNG streams come from
  :func:`repro.sim.seeding.derive_rng` inside ``build_simulation`` and
  never depend on scheduling.
* **Order** — results are reassembled by point index, so the returned
  :class:`~repro.sim.results.SweepResult` is identical (modulo the
  measured ``phase_timings``) to serial execution, whatever order
  workers finish in.
* **Resumability** — every completed point is appended to a JSON-lines
  checkpoint as soon as it finishes; a rerun with ``resume=True`` skips
  those points and only executes the remainder.

Entry points: :meth:`ParallelSweepRunner.run_points` (generic) and
:meth:`Sweep.run(workers=N) <repro.sim.sweep.Sweep.run>` /
``run_replications(workers=N)`` which delegate here.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult, SweepResult
from repro.sim.runner import run_config

#: One unit of work: (index, label, config, extras-to-annotate).
PointPayload = Tuple[int, str, SimulationConfig, Dict]


def _execute_point(payload: PointPayload) -> Tuple[int, SimulationResult]:
    """Worker entry point: run one sweep point (module-level: picklable)."""
    index, _label, config, extras = payload
    return index, run_config(config, **extras)


class CheckpointMismatch(RuntimeError):
    """A checkpoint file does not correspond to the sweep being run."""


class ParallelSweepRunner:
    """Executes labeled simulation points over a ``multiprocessing`` pool.

    Parameters
    ----------
    workers:
        Process count. ``1`` (or ``None``) runs in-process — still useful
        for checkpointed serial runs. ``0``/negative means ``os.cpu_count()``.
    checkpoint:
        Optional JSON-lines path recording each completed point. Written
        incrementally (one flushed line per point) so an interrupted run
        loses at most the in-flight points.
    resume:
        When True and the checkpoint exists, completed points are loaded
        from it and skipped. When False an existing checkpoint is
        truncated — a fresh run never silently mixes stale results.
    progress:
        Callback receiving one human-readable line per point event.
    mp_context:
        Optional ``multiprocessing`` context name (``"fork"``/``"spawn"``).
        The default context of the platform is used when omitted; CI runs
        the smoke test under ``spawn`` to catch pickling regressions.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        checkpoint: Optional[Path] = None,
        resume: bool = False,
        progress: Callable[[str], None] = lambda message: None,
        mp_context: Optional[str] = None,
    ):
        if workers is None:
            workers = 1
        if workers <= 0:
            workers = os.cpu_count() or 1
        self.workers = workers
        self.checkpoint = Path(checkpoint) if checkpoint is not None else None
        self.resume = resume
        self.progress = progress
        self.mp_context = mp_context

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def _load_checkpoint(
        self, name: str, points: Sequence[Tuple[str, SimulationConfig, Dict]]
    ) -> Dict[int, SimulationResult]:
        """Completed results keyed by point index, validated against labels."""
        if self.checkpoint is None or not self.checkpoint.exists():
            return {}
        if not self.resume:
            self.checkpoint.unlink()
            return {}
        completed: Dict[int, SimulationResult] = {}
        for line_number, line in enumerate(
            self.checkpoint.read_text().splitlines(), start=1
        ):
            if not line.strip():
                continue
            record = json.loads(line)
            index = record["index"]
            if record.get("sweep") != name:
                raise CheckpointMismatch(
                    f"{self.checkpoint}:{line_number} belongs to sweep "
                    f"{record.get('sweep')!r}, not {name!r}"
                )
            if index >= len(points) or record["label"] != points[index][0]:
                raise CheckpointMismatch(
                    f"{self.checkpoint}:{line_number} records point "
                    f"{index} = {record['label']!r}, which does not match "
                    f"the sweep being resumed"
                )
            completed[index] = SimulationResult.from_dict(record["result"])
        return completed

    def _append_checkpoint(
        self, name: str, index: int, label: str, result: SimulationResult
    ) -> None:
        if self.checkpoint is None:
            return
        self.checkpoint.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "sweep": name,
            "index": index,
            "label": label,
            "result": result.to_dict(),
        }
        with self.checkpoint.open("a") as handle:
            handle.write(json.dumps(record) + "\n")
            handle.flush()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_points(
        self, name: str, points: Sequence[Tuple[str, SimulationConfig, Dict]]
    ) -> List[SimulationResult]:
        """Execute ``(label, config, extras)`` points; return them in order."""
        results = self._load_checkpoint(name, points)
        for index in results:
            self.progress(f"[{name}] resumed {points[index][0]} from checkpoint")
        payloads: List[PointPayload] = [
            (index, label, config, extras)
            for index, (label, config, extras) in enumerate(points)
            if index not in results
        ]
        for index, result in self._execute(payloads):
            label = points[index][0]
            self._append_checkpoint(name, index, label, result)
            self.progress(f"[{name}] finished {label}")
            results[index] = result
        return [results[index] for index in range(len(points))]

    def _execute(self, payloads: List[PointPayload]):
        """Yield (index, result) pairs as points complete."""
        if not payloads:
            return
        if self.workers == 1:
            for payload in payloads:
                yield _execute_point(payload)
            return
        context = (
            multiprocessing.get_context(self.mp_context)
            if self.mp_context
            else multiprocessing.get_context()
        )
        # Never spin up more processes than there is work.
        processes = min(self.workers, len(payloads))
        with context.Pool(processes=processes) as pool:
            # Unordered: checkpoint lines land as soon as any point is
            # done; run_points reassembles by index afterwards.
            for index, result in pool.imap_unordered(_execute_point, payloads):
                yield index, result

    def run_sweep(
        self, name: str, points: Sequence[Tuple[str, SimulationConfig, Dict]]
    ) -> SweepResult:
        """Like :meth:`run_points`, bundled into a :class:`SweepResult`."""
        result = SweepResult(name=name)
        for run in self.run_points(name, points):
            result.add(run)
        return result
