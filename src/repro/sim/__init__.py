"""Simulation harness: configs, the round loop, multi-seed runs, sweeps.

Composes the core protocol (:mod:`repro.core`) with fault injection
(:mod:`repro.faults`), runtime verification (:mod:`repro.monitors`) and
measurement (:mod:`repro.metrics`) into reproducible experiments.
"""

from repro.sim.config import FaultSpec, SimulationConfig
from repro.sim.parallel import ParallelSweepRunner
from repro.sim.profiling import PhaseProfiler, PhaseTimings
from repro.sim.results import SimulationResult, SweepResult
from repro.sim.runner import run_config, run_replications
from repro.sim.seeding import derive_seed
from repro.sim.simulator import Simulator, build_simulation
from repro.sim.sweep import Sweep, sweep_grid

__all__ = [
    "FaultSpec",
    "ParallelSweepRunner",
    "PhaseProfiler",
    "PhaseTimings",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "Sweep",
    "SweepResult",
    "build_simulation",
    "derive_seed",
    "run_config",
    "run_replications",
    "sweep_grid",
]
