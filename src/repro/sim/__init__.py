"""Simulation harness: configs, the round loop, multi-seed runs, sweeps.

Composes the core protocol (:mod:`repro.core`) with fault injection
(:mod:`repro.faults`), runtime verification (:mod:`repro.monitors`) and
measurement (:mod:`repro.metrics`) into reproducible experiments.
"""

from repro.sim.config import FaultSpec, SimulationConfig
from repro.sim.parallel import CheckpointMismatch, ParallelSweepRunner
from repro.sim.profiling import PhaseProfiler, PhaseTimings
from repro.sim.results import PointFailure, SimulationResult, SweepResult
from repro.sim.runner import run_config, run_replications
from repro.sim.seeding import derive_seed
from repro.sim.simulator import Simulator, build_simulation
from repro.sim.supervisor import PointFailureError, RetryPolicy, SweepSupervisor
from repro.sim.sweep import Sweep, sweep_grid

__all__ = [
    "CheckpointMismatch",
    "FaultSpec",
    "ParallelSweepRunner",
    "PhaseProfiler",
    "PhaseTimings",
    "PointFailure",
    "PointFailureError",
    "RetryPolicy",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "Sweep",
    "SweepResult",
    "SweepSupervisor",
    "build_simulation",
    "derive_seed",
    "run_config",
    "run_replications",
    "sweep_grid",
]
