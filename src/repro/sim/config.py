"""Declarative simulation configuration.

A :class:`SimulationConfig` captures everything needed to reproduce a run:
grid, protocol parameters, workload (corridor path or explicit
target/sources), source policy, fault model, horizon, and seed. Configs
serialize to/from plain dicts so experiment registries and result files
can embed them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.params import Parameters
from repro.grid.topology import CellId
from repro.multiflow.commodities import Commodity


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault model: Bernoulli fail/recover coins.

    ``pf = 0`` means fault-free. ``protect_target`` grants the target cell
    immunity (the analysis assumption); the Figure 9 experiment leaves it
    False so even the target churns.
    """

    pf: float = 0.0
    pr: float = 0.0
    protect_target: bool = False

    @property
    def enabled(self) -> bool:
        return self.pf > 0.0


@dataclass(frozen=True)
class SimulationConfig:
    """A complete, reproducible run description."""

    grid_width: int
    params: Parameters
    rounds: int
    grid_height: Optional[int] = None
    path: Optional[Tuple[CellId, ...]] = None
    """Corridor mode: source at path[0], target at path[-1], complement
    failed. Mutually exclusive with explicit ``tid``/``sources``."""

    tid: Optional[CellId] = None
    sources: Tuple[CellId, ...] = ()
    source_policy: str = "eager"
    """One of ``eager``, ``silent``, ``bernoulli:<rate>``, ``capped:<n>``."""

    token_policy: str = "roundrobin"
    """Signal token policy: ``roundrobin`` (the default, the paper's
    Lemma 9 behavior), ``random`` (seeded uniform choice), or ``sticky``
    (never rotates — breaks fairness; ablations/fuzzing only)."""

    fault: FaultSpec = field(default_factory=FaultSpec)
    seed: int = 0
    warmup: int = 0
    """Rounds discarded before throughput accounting."""

    monitors: bool = True
    """Run the full monitor suite every round (strict)."""

    fail_complement: bool = True
    """In corridor mode, pre-fail all off-path cells."""

    engine: Optional[str] = None
    """Round engine executing each ``update``: ``"reference"`` (full
    sweep), ``"incremental"`` (dirty-set), or ``"vectorized"``
    (array-native, requires numpy) — all byte-identical; see
    :mod:`repro.sim.engine`. ``None`` defers to the ``REPRO_ENGINE``
    environment variable, then the default."""

    shards: Optional[int] = None
    """District count for the ``sharded`` engine (one worker process per
    contiguous district; see :mod:`repro.shard` and docs/sharding.md).
    ``None`` defers to ``REPRO_SHARDS``, then the engine default.
    Ignored by the in-process engines — results are shard-count
    invariant anyway (the lockstep harness proves 1 == 2 == 4)."""

    commodities: Tuple[Commodity, ...] = ()
    """Multi-commodity mode: concurrent (source, target) demand pairs
    run by :mod:`repro.multiflow` instead of the single-flow system.
    Mutually exclusive with ``path``/``tid``/``sources``; restricted to
    the ``reference``/``incremental`` engines. See docs/multiflow.md."""

    workload: Optional[str] = None
    """Demand schedule for multi-commodity mode: a name from
    ``repro.multiflow.workload.WORKLOAD_PROFILES`` (``steady``,
    ``diurnal``, ``bursty``, ``flash-crowd``). ``None`` means steady.
    Requires ``commodities``."""

    adversary: Optional[str] = None
    """A named adversary campaign from
    ``repro.adversary.scripts.ADVERSARIES``, optionally parameterized
    (``"regional_failure:waves=2,size=3"``). Compiles deterministically
    (from ``seed``) to scripted fault events and/or target relocations
    layered on top of ``fault``. Single-flow mode only; see
    docs/fuzzing.md."""

    jitter: float = 0.0
    """Per-message delay bound for the asynchronous ``timed`` engine, in
    round periods: each advert/occupancy/transfer message is delayed by
    ``Uniform(0, jitter)`` periods. ``0`` means a fixed half-period
    latency. Requires ``engine="timed"``; the paper's timed-rounds
    theorem says executions with jitter <= 1 period are identical to the
    synchronous model."""

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError(f"rounds must be positive, got {self.rounds}")
        if self.warmup < 0 or self.warmup >= self.rounds:
            raise ValueError(
                f"warmup must be in [0, rounds), got {self.warmup} of {self.rounds}"
            )
        if self.commodities:
            self._validate_multiflow()
            return
        if self.workload is not None:
            raise ValueError("workload requires commodities")
        if self.path is None and self.tid is None:
            raise ValueError("either a corridor path or an explicit tid is required")
        if self.path is not None and self.tid is not None:
            raise ValueError("corridor path and explicit tid are mutually exclusive")
        if self.path is not None and len(self.path) < 2:
            raise ValueError("a corridor path needs at least 2 cells")
        if self.fault.enabled and self.path is not None and self.fail_complement:
            raise ValueError(
                "corridor mode with a failed complement cannot be combined with "
                "a recovery fault model (the complement would resurrect); use "
                "fail_complement=False, as the paper's Figure 9 does"
            )
        _parse_source_policy(self.source_policy)  # validate eagerly
        if self.token_policy not in TOKEN_POLICIES:
            raise ValueError(
                f"unknown token policy {self.token_policy!r}; available: "
                f"{sorted(TOKEN_POLICIES)}"
            )
        if self.engine is not None:
            # Validate lazily against the registry (imported here to keep
            # config.py free of a hard dependency on the engine module at
            # import time — workers unpickle configs before anything else).
            from repro.sim.engine import ENGINES

            if self.engine not in ENGINES:
                raise ValueError(
                    f"unknown engine {self.engine!r}; available: "
                    f"{sorted(ENGINES)} (or None to defer to REPRO_ENGINE)"
                )
        if self.shards is not None and self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.engine == "sharded" and self.token_policy == "random":
            raise ValueError(
                "engine='sharded' cannot run token_policy='random': the "
                "random policy consumes one shared RNG stream in global "
                "sweep order, which cannot be split across district "
                "processes; use 'roundrobin' or 'sticky'"
            )
        if self.jitter < 0.0:
            raise ValueError(f"jitter must be nonnegative, got {self.jitter}")
        if self.jitter > 0.0 and self.engine != "timed":
            raise ValueError(
                "jitter models asynchronous message delay and requires "
                f"engine='timed', got engine={self.engine!r}"
            )
        if self.adversary is not None:
            # Like engines: validate lazily against the registry so
            # config.py stays import-light for worker unpickling.
            from repro.adversary.scripts import validate_adversary_spec

            validate_adversary_spec(self.adversary, self)

    def _validate_multiflow(self) -> None:
        """Validation for multi-commodity mode (``commodities`` set)."""
        if self.path is not None or self.tid is not None or self.sources:
            raise ValueError(
                "commodities are mutually exclusive with path/tid/sources"
            )
        # Constructing the table validates name uniqueness, distinct
        # targets, and per-commodity shape; grid membership is checked
        # again at build time against the actual Grid.
        from repro.multiflow.commodities import CommodityTable

        CommodityTable(self.commodities)
        if self.workload is not None:
            from repro.multiflow.workload import WORKLOAD_PROFILES

            if self.workload not in WORKLOAD_PROFILES:
                raise ValueError(
                    f"unknown workload profile {self.workload!r}; "
                    f"available: {sorted(WORKLOAD_PROFILES)}"
                )
        if self.token_policy not in TOKEN_POLICIES:
            raise ValueError(
                f"unknown token policy {self.token_policy!r}; available: "
                f"{sorted(TOKEN_POLICIES)}"
            )
        if self.engine not in (None, "reference", "incremental"):
            raise ValueError(
                f"engine {self.engine!r} does not support multi-commodity "
                "systems; use 'reference', 'incremental', or None"
            )
        if self.shards is not None:
            raise ValueError("multi-commodity mode does not support shards")
        if self.adversary is not None:
            raise ValueError(
                "adversary campaigns are single-flow only (the relocation "
                "and schedule compiler targets the single-target System)"
            )
        if self.jitter:
            raise ValueError(
                "multi-commodity mode does not support the timed engine "
                "(jitter must be 0)"
            )

    def to_dict(self) -> Dict:
        """Plain-dict form (JSON-serializable) for result files."""
        data = asdict(self)
        data["params"] = {"l": self.params.l, "rs": self.params.rs, "v": self.params.v}
        return data

    def fingerprint(self) -> str:
        """Stable 16-hex-digit digest of the full config.

        Checkpoint records carry this so that resuming a sweep after
        *any* parameter change (seed, horizon, fault model, ...) rejects
        the stale results instead of silently replaying them. Computed
        over the canonical JSON of :meth:`to_dict` (sorted keys, tuples
        normalized to lists), so a config survives a dict round-trip
        with its fingerprint intact.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @classmethod
    def from_dict(cls, data: Dict) -> "SimulationConfig":
        payload = dict(data)
        payload["params"] = Parameters(**payload["params"])
        if payload.get("path") is not None:
            payload["path"] = tuple(tuple(cell) for cell in payload["path"])
        if payload.get("tid") is not None:
            payload["tid"] = tuple(payload["tid"])
        payload["sources"] = tuple(tuple(cell) for cell in payload.get("sources", ()))
        fault = payload.get("fault")
        if isinstance(fault, dict):
            payload["fault"] = FaultSpec(**fault)
        payload["commodities"] = tuple(
            Commodity(
                name=c["name"],
                target=tuple(c["target"]),
                sources=tuple(tuple(s) for s in c["sources"]),
            )
            if isinstance(c, dict)
            else c
            for c in payload.get("commodities", ())
        )
        return cls(**payload)


#: Selectable Signal token policies (spec string -> description). The
#: concrete classes live in :mod:`repro.core.policies`; materialization
#: happens in :func:`repro.sim.simulator.build_simulation` so this module
#: stays import-light for worker unpickling.
TOKEN_POLICIES = {
    "roundrobin": "cycle through NEPrev in identifier order (fair, default)",
    "random": "seeded uniform choice, avoiding the previous holder",
    "sticky": "never rotates (unfair; ablation/fuzzing adversary)",
}


def _parse_source_policy(spec: str) -> Tuple[str, Optional[float]]:
    """Parse a source-policy spec string; returns ``(kind, argument)``."""
    if spec in ("eager", "silent"):
        return spec, None
    if spec.startswith("bernoulli:"):
        rate = float(spec.split(":", 1)[1])
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"bernoulli rate must be in [0, 1], got {rate}")
        return "bernoulli", rate
    if spec.startswith("capped:"):
        limit = int(spec.split(":", 1)[1])
        if limit < 0:
            raise ValueError(f"capped limit must be nonnegative, got {limit}")
        return "capped", float(limit)
    raise ValueError(f"unknown source policy spec: {spec!r}")
