"""A resumable stepper: the round loop inverted.

:class:`ResumableStepper` wraps a :class:`~repro.sim.simulator.Simulator`
but does **not** own the loop. :meth:`Simulator.run` executes a fixed
horizon and summarizes; callers that need to interleave work *between*
rounds — the ``repro serve`` service loop applying queued commands,
pumping event batches to a sink, and sampling soak probes — drive the
stepper one round at a time instead, for as long as they like. The
config's ``rounds`` field becomes a nominal horizon (it still seeds
warmup validation and adversary compilation); the stepper itself is
unbounded.

The stepper is also where *mid-run environment transitions* enter a
running simulation in a way every engine observes: :meth:`arrive`,
:meth:`fail`, :meth:`recover`, and :meth:`relocate_target` go through
the ``System`` transition methods, whose ``cell_observer`` notifications
feed the incremental engine's dirty sets and the sharded coordinator's
worker syncs. Mutating ``system`` state behind those methods' backs
would silently desynchronize the non-reference engines.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.sources import EagerSource
from repro.grid.topology import CellId
from repro.obs.instrument import ObservabilityConfig
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator, build_simulation


class ResumableStepper:
    """Drive a simulation round-by-round, yielding control between rounds.

    Built from a declarative config exactly like :func:`build_simulation`
    (which it calls); the wrapped simulator is exposed as ``simulator``
    for instrumentation access (``obs``, ``monitors``, ``engine``).
    """

    def __init__(
        self,
        config: SimulationConfig,
        observability: Optional[ObservabilityConfig] = None,
        engine: Optional[str] = None,
        simulator: Optional[Simulator] = None,
    ):
        self.config = config
        self.simulator = (
            simulator
            if simulator is not None
            else build_simulation(config, observability=observability, engine=engine)
        )
        self.rounds_stepped = 0

    # ------------------------------------------------------------------
    # The loop, inverted
    # ------------------------------------------------------------------

    @property
    def system(self):
        return self.simulator.system

    @property
    def round_index(self) -> int:
        """The index of the *next* round to execute."""
        return self.simulator.system.round_index

    def step(self):
        """Execute one round (faults, update, monitors, metrics).

        Returns the round's :class:`~repro.core.system.RoundReport`.
        Unbounded: the config horizon does not stop it.
        """
        report = self.simulator.step()
        self.rounds_stepped += 1
        return report

    def run_for(self, rounds: int) -> int:
        """Execute ``rounds`` consecutive rounds; returns the new index."""
        for _ in range(rounds):
            self.step()
        return self.round_index

    def reports(self, limit: Optional[int] = None) -> Iterator:
        """Generator of round reports — ``limit=None`` streams forever."""
        produced = 0
        while limit is None or produced < limit:
            yield self.step()
            produced += 1

    def summarize(self) -> SimulationResult:
        """Summarize everything stepped so far (closes engine resources).

        Stepping afterward remains valid — engines re-acquire lazily —
        but :meth:`summarize` finalizes observability, so summarize once,
        at the end.
        """
        return self.simulator.summarize()

    # ------------------------------------------------------------------
    # Mid-run environment transitions (the command surface)
    # ------------------------------------------------------------------

    def arrive(self, cid: CellId) -> Optional[int]:
        """Attempt one safe entity arrival in ``cid``; returns the uid.

        Placement reuses the eager source rule — the entity lands on the
        cell's entry edge only if the spot is safely clear — so a
        commanded arrival can never violate the separation invariants.
        Returns ``None`` (arrival rejected) when the cell is failed or
        has no safe slot; rejecting is the correct service behavior, the
        paper's sources do the same by construction.
        """
        system = self.system
        system.grid.require(cid)
        state = system.cells[cid]
        if state.failed:
            return None
        candidate = EagerSource().place(
            state, system.params, system.round_index, system.rng
        )
        if candidate is None:
            return None
        entity = system.seed_entity(cid, candidate.x, candidate.y)
        return entity.uid

    def fail(self, cid: CellId) -> None:
        """Crash a cell now (idempotent, observer-notifying)."""
        self.system.fail(cid)

    def recover(self, cid: CellId) -> None:
        """Recover a cell now (no-op on live cells, observer-notifying)."""
        self.system.recover(cid)

    def relocate_target(self, cid: CellId) -> None:
        """Move the routing destination mid-run (see ``System.relocate_target``)."""
        self.system.relocate_target(cid)
