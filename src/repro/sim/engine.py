"""Pluggable round engines: how one ``update`` transition is executed.

The paper's ``update`` is a *synchronous* transition over all ``N x N``
cells, and :meth:`repro.core.system.System.update` implements it as three
full sweeps (Route, Signal, Move) plus source production. That full-sweep
execution is the **reference engine** here — it stays exactly the object
the paper's proofs talk about.

The protocol, however, is locally triggered: a cell's Route output can
only change when a neighbor's ``dist`` changed or a fault event touched
the neighborhood, and Signal/Move are provable no-ops for cells with no
token, no signal, and an empty ``NEPrev``. The **incremental engine**
exploits this with per-phase dirty sets, so quiescent regions of the grid
cost zero per round — the performance lever for large grids — while
producing *byte-identical* state, reports, metrics, and event traces.
``tests/differential.py`` is the lockstep harness that proves the
equivalence on randomized fault-injected configs; the dirty-set rules are
documented in ``docs/performance.md``.

The **vectorized engine** (:mod:`repro.sim.vectorized`) attacks the same
ceiling from the other side: instead of skipping quiescent cells it
executes every sweep as a handful of whole-grid numpy operations over a
structure-of-arrays mirror (:mod:`repro.core.arrays`), so per-round cost
scales with memory bandwidth rather than Python bytecode — the engine
for large grids. It requires numpy (a soft dependency) and passes the
same 3-way lockstep matrix.

Engine selection precedence: an explicit argument (``Simulator(...,
engine=...)`` / ``build_simulation(..., engine=...)``), then the config
field (``SimulationConfig.engine``), then the ``REPRO_ENGINE``
environment variable, then :data:`DEFAULT_ENGINE`. The environment hook
is what the sweep/parallel/supervisor stack and the benchmark harness
use: worker processes inherit it, so a whole figure sweep switches
engines without touching any config.

Dirty-set rules (see docs/performance.md for the full derivation):

========  ==========================================================
Route     re-evaluate a cell next round iff a neighbor's effective
          ``dist`` changed this round, or a fail/recover event touched
          the cell or a neighbor. (Route reads only neighbor dists.)
Signal    re-evaluate a cell this round iff it is *hot* (its last
          evaluation left a nonempty ``NEPrev`` — it granted or
          blocked, so it must run again), or a neighbor's ``next``
          changed in this round's Route phase, or a neighbor's
          membership changed last round (transfer/production/seeding),
          or a fail/recover event touched the cell or a neighbor.
          A skipped cell provably holds ``(NEPrev, token, signal) =
          (empty, bot, bot)`` — exactly what re-evaluation would write.
Move      movers are derived from this round's grant report: cell
          ``m`` moves iff its ``next`` granted it the signal this
          round, which under the Signal invariant above is equivalent
          to the reference's full ``effective_signal`` scan.
produce   never skipped: source policies may consume RNG every round
          (e.g. Bernoulli arrivals), so all non-faulty sources run to
          keep the random streams identical.
========  ==========================================================

Token-policy contract: a policy's ``initial(empty_set)`` must return
``None`` without consuming randomness (all built-in policies do) —
otherwise skipping quiescent cells would desynchronize the RNG stream
from the reference engine.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Set, Tuple, Type

from repro.core.cell import effective_dist
from repro.core.move import MovePhaseReport, apply_moves
from repro.core.route import RoutePhaseReport, _route_step
from repro.core.signal import SignalPhaseReport, _signal_step, compute_ne_prev
from repro.core.system import RoundReport, System
from repro.grid.topology import CellId

#: Environment variable naming the engine sweeps/benchmarks should use.
ENV_ENGINE = "REPRO_ENGINE"

DEFAULT_ENGINE = "reference"


def _row_major(cid: CellId) -> Tuple[int, int]:
    """Sort key reproducing ``Grid.cells()`` iteration order (j, then i).

    The reference sweeps iterate ``cells.items()`` — insertion order,
    which is ``Grid.cells()`` row-major order. Dirty sets are unordered,
    so the incremental engine sorts with this key to keep every report
    list byte-identical to the reference.
    """
    return (cid[1], cid[0])


class RoundEngine:
    """Interface: execute one ``update`` transition on a ``System``.

    Engines must be *observationally identical*: same post-round state,
    same :class:`~repro.core.system.RoundReport` (including list
    ordering), same ``phase_observer`` notifications, and same RNG
    consumption. Only the work done to get there may differ.
    """

    name: str = "abstract"

    #: Optional :class:`repro.obs.metrics.MetricsRegistry`; the simulator
    #: wires its registry here so engines with internal machinery (the
    #: sharded fleet's supervision/channel counters) can report into the
    #: same catalog. Plain engines never touch it.
    metrics = None

    def __init__(self, system: System, config=None):
        self.system = system
        #: The run's :class:`~repro.sim.config.SimulationConfig`, when the
        #: simulator has one — engines with deployment knobs (the sharded
        #: engine's ``shards`` field) read it; plain engines ignore it.
        self.config = config

    def step(self) -> RoundReport:
        """Run one round; returns the round's report."""
        raise NotImplementedError

    def close(self) -> None:
        """Release engine-held resources (worker processes, channels).

        Called by ``Simulator.summarize``; stepping again after a close
        must be valid (engines re-acquire lazily). No-op by default.
        """


class ReferenceEngine(RoundEngine):
    """The full-sweep execution: delegate to ``System.update()`` verbatim."""

    name = "reference"

    def step(self) -> RoundReport:
        return self.system.update()


class _LiveDistView:
    """Mapping view of the cells' *current* effective dists.

    ``_route_step`` expects a ``cid -> dist`` mapping. The reference
    engine materializes a full snapshot dict; the incremental engine
    defers all writes until after every dirty cell has been evaluated,
    so reading the live state through this view *is* the pre-phase
    snapshot — without the O(cells) copy.
    """

    __slots__ = ("_cells",)

    def __init__(self, cells):
        self._cells = cells

    def __getitem__(self, cid: CellId) -> float:
        return effective_dist(self._cells[cid])


class IncrementalEngine(RoundEngine):
    """Dirty-set execution: evaluate only cells whose inputs could have
    changed; quiescent regions cost zero per round.

    Equivalence to the reference engine is enforced by the differential
    harness (``tests/test_engine_differential.py``) over randomized
    fault-injected configurations; the invariants each dirty set
    maintains are spelled out in the module docstring.
    """

    name = "incremental"

    def __init__(self, system: System, config=None):
        super().__init__(system, config)
        all_cells = set(system.cells)
        #: Cells whose Route function must be re-evaluated this round.
        self._route_dirty: Set[CellId] = set(all_cells)
        #: Cells whose Signal function must be re-evaluated this round.
        self._signal_pending: Set[CellId] = set(all_cells)
        self._chained_cell_observer = system.cell_observer
        system.cell_observer = self._on_cell_event

    # ------------------------------------------------------------------
    # Dirty-set maintenance
    # ------------------------------------------------------------------

    def _on_cell_event(self, event: str, cid: CellId) -> None:
        """Environment transition (fail/recover/relocate/seeding) touched
        ``cid``. Only ``"members"`` (direct entity seeding) is the narrow
        membership-only case; every other event — including ones added
        later, like ``"relocate"`` — conservatively invalidates the full
        neighborhood, so new environment transitions are correct by
        default instead of silently under-invalidated."""
        if event == "members":
            self._mark_membership_change(cid)
        else:
            self._mark_fault_event(cid)
        if self._chained_cell_observer is not None:
            self._chained_cell_observer(event, cid)

    def _mark_fault_event(self, cid: CellId) -> None:
        """A fail/recover transition changes every shared variable the
        neighbors observe (masking), and resets the cell's own state."""
        self._route_dirty.add(cid)
        self._signal_pending.add(cid)
        for nbr in self.system.grid.neighbors(cid):
            self._route_dirty.add(nbr)
            self._signal_pending.add(nbr)

    def _mark_dist_change(self, cid: CellId) -> None:
        """``cid``'s dist changed: neighbors re-run Route next round."""
        self._route_dirty.update(self.system.grid.neighbors(cid))

    def _mark_membership_change(self, cid: CellId) -> None:
        """``cid``'s membership changed: neighbors' ``NEPrev`` may differ."""
        self._signal_pending.update(self.system.grid.neighbors(cid))

    def invalidate(self, cid: CellId) -> None:
        """Mark ``cid``'s whole neighborhood dirty for every phase.

        External code that mutates cell state directly (outside the
        ``fail``/``recover``/``seed_entity`` transitions, which notify
        automatically) must call this, or the engine may keep treating
        the region as quiescent.
        """
        self._mark_fault_event(cid)

    def invalidate_all(self) -> None:
        """Forget all quiescence: the next round re-evaluates every cell."""
        all_cells = set(self.system.cells)
        self._route_dirty = set(all_cells)
        self._signal_pending = set(all_cells)

    # ------------------------------------------------------------------
    # The round
    # ------------------------------------------------------------------

    def step(self) -> RoundReport:
        """One synchronous round, mirroring ``System.update`` exactly."""
        system = self.system
        route_report = self._route_phase()
        system._notify_phase("route")
        signal_report = self._signal_phase(route_report)
        system._notify_phase("signal")
        move_report = self._move_phase(signal_report)
        system._notify_phase("move")
        system.total_consumed += len(move_report.consumed)
        produced = system._produce()
        self._mark_production(produced)
        system._notify_phase("produce")
        report = RoundReport(
            round_index=system.round_index,
            route=route_report,
            signal=signal_report,
            move=move_report,
            produced=produced,
        )
        system.round_index += 1
        return report

    def _route_phase(self) -> RoutePhaseReport:
        """Route over the dirty set only (Jacobi semantics preserved).

        All new values are computed against the live pre-write state and
        applied afterwards, so dirty cells still observe each other's
        *previous-round* dists exactly as the simultaneous reference
        sweep does.
        """
        system = self.system
        cells = system.cells
        dirty = self._route_dirty
        self._route_dirty = set()
        report = RoutePhaseReport()
        if not dirty:
            return report
        view = _LiveDistView(cells)
        updates: List[Tuple[CellId, float, Optional[CellId]]] = []
        for cid in sorted(dirty, key=_row_major):
            state = cells[cid]
            if state.failed or cid == system.tid:
                continue
            new_dist, new_next = _route_step(system.grid, cid, view)
            if new_dist != state.dist or new_next != state.next_id:
                updates.append((cid, new_dist, new_next))
        for cid, new_dist, new_next in updates:
            state = cells[cid]
            if new_dist != state.dist:
                report.changed_dist.append(cid)
                state.dist = new_dist
                self._mark_dist_change(cid)
            if new_next != state.next_id:
                report.changed_next.append(cid)
                state.next_id = new_next
        return report

    def _signal_phase(self, route_report: RoutePhaseReport) -> SignalPhaseReport:
        """Signal over pending cells only.

        Invariant: every non-pending, non-faulty cell holds
        ``(NEPrev, token, signal) = (empty, bot, bot)`` and its freshly
        computed ``NEPrev`` would still be empty — so skipping it is a
        byte-exact no-op (and consumes no policy randomness; see the
        token-policy contract in the module docstring).
        """
        system = self.system
        cells = system.cells
        grid = system.grid
        pending = self._signal_pending
        # A changed next-pointer changes which neighbor the cell points
        # at: both the old and the new pointee (all lattice neighbors of
        # the changed cell) recompute NEPrev *this* round — Signal reads
        # post-Route state within the same update.
        for changed in route_report.changed_next:
            pending.update(grid.neighbors(changed))
        self._signal_pending = set()
        report = SignalPhaseReport()
        for cid in sorted(pending, key=_row_major):
            state = cells[cid]
            if state.failed:
                continue
            ne_prev = compute_ne_prev(grid, cells, cid)
            _signal_step(state, ne_prev, system.params, system.token_policy, report)
            if ne_prev:
                # Hot: the cell granted or blocked, so its token/signal
                # must be recomputed next round regardless of events.
                self._signal_pending.add(cid)
        return report

    def _move_phase(self, signal_report: SignalPhaseReport) -> MovePhaseReport:
        """Move derived from this round's grants.

        A cell moves iff its ``next`` granted it the signal this round;
        because skipped cells always hold ``signal = bot`` (the Signal
        invariant) and grants are recomputed for every hot cell each
        round, the grant report is exactly the reference engine's
        ``effective_signal`` scan.
        """
        system = self.system
        movers = sorted(
            ((grantee, granter) for granter, grantee in signal_report.granted.items()),
            key=lambda pair: _row_major(pair[0]),
        )
        report = apply_moves(
            system.grid, system.cells, system.params, system.tid, movers
        )
        for transfer in report.transfers:
            self._mark_membership_change(transfer.src)
            if not transfer.consumed:
                self._mark_membership_change(transfer.dst)
        return report

    def _mark_production(self, produced) -> None:
        """Fresh entities change their source cells' observed emptiness.

        Sources insert strictly inside their own unit cell (centers sit
        ``l/2 > 0`` off every wall), so the producing cell is exactly the
        floor of the entity's center.
        """
        for entity in produced:
            self._mark_membership_change((int(entity.x), int(entity.y)))


# Imported here (not at the top) because the vectorized and sharded
# engines subclass RoundEngine: by this point every name they need is
# defined, so the circular module pairs resolve in either import order.
from repro.sim.vectorized import VectorizedEngine  # noqa: E402
from repro.sim.timed_engine import TimedEngine  # noqa: E402
from repro.shard.engine import ShardedEngine  # noqa: E402

#: Registry of selectable engines (name -> class). ``docs/performance.md``
#: documents each entry; ``tests/test_docs.py`` diffs the table against
#: this registry so the page cannot drift.
ENGINES: Dict[str, Type[RoundEngine]] = {
    ReferenceEngine.name: ReferenceEngine,
    IncrementalEngine.name: IncrementalEngine,
    VectorizedEngine.name: VectorizedEngine,
    TimedEngine.name: TimedEngine,
    ShardedEngine.name: ShardedEngine,
}


def resolve_engine_name(
    explicit: Optional[str] = None,
    environ: Optional[Dict[str, str]] = None,
) -> str:
    """Pick the engine name: explicit > ``REPRO_ENGINE`` > default."""
    env = os.environ if environ is None else environ
    name = explicit or env.get(ENV_ENGINE) or DEFAULT_ENGINE
    if name not in ENGINES:
        raise ValueError(
            f"unknown round engine {name!r}; available: {sorted(ENGINES)}"
        )
    return name


def make_engine(name: str, system: System, config=None) -> RoundEngine:
    """Instantiate the named engine attached to ``system``.

    ``config`` (the run's :class:`~repro.sim.config.SimulationConfig`)
    is passed through to the engine; engines with deployment knobs —
    the sharded engine's ``shards`` — read it, the rest ignore it.
    """
    if name not in ENGINES:
        raise ValueError(
            f"unknown round engine {name!r}; available: {sorted(ENGINES)}"
        )
    if getattr(system, "is_multiflow", False):
        # Multi-commodity systems have their own engine pair under the
        # same public names; vectorized/sharded raise there.
        from repro.multiflow.engine import make_multiflow_engine

        return make_multiflow_engine(name, system, config)
    return ENGINES[name](system, config)
