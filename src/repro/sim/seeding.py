"""Deterministic seed derivation.

Experiments need several independent random streams (fault coins, source
arrivals, token-choice randomization when enabled) across many
replications. Deriving every stream from ``(master_seed, label)`` with a
stable hash keeps runs reproducible regardless of execution order and
avoids accidental stream coupling.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, label: str) -> int:
    """A stable 64-bit seed from a master seed and a stream label."""
    digest = hashlib.sha256(f"{master_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(master_seed: int, label: str) -> random.Random:
    """A ``random.Random`` seeded via :func:`derive_seed`."""
    return random.Random(derive_seed(master_seed, label))
