"""The round loop: building and driving one simulation.

:func:`build_simulation` turns a declarative config into a live
:class:`Simulator`; :meth:`Simulator.run` executes the loop

    fault events  ->  update (Route; Signal; Move; produce)  ->  monitors
                                                              ->  metrics

and returns a :class:`~repro.sim.results.SimulationResult`.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.params import Parameters
from repro.core.policies import (
    RandomTokenPolicy,
    StickyTokenPolicy,
    TokenPolicy,
)
from repro.core.sources import (
    BernoulliSource,
    CappedSource,
    EagerSource,
    SilentSource,
    SourcePolicy,
)
from repro.core.system import System, build_corridor_system
from repro.faults.injector import FaultInjector
from repro.faults.model import BernoulliFaultModel, FaultModel, NoFaults
from repro.grid.topology import Grid
from repro.metrics.occupancy import OccupancyProbe
from repro.metrics.throughput import ThroughputMeter
from repro.monitors.progress import EntityTracker
from repro.monitors.recorder import MonitorSuite
from repro.metrics.latency import percentile
from repro.obs.instrument import ObservabilityConfig, SimulationInstrumentation
from repro.sim.config import SimulationConfig, _parse_source_policy
from repro.sim.engine import make_engine, resolve_engine_name
from repro.sim.profiling import PhaseProfiler
from repro.sim.results import SimulationResult
from repro.sim.seeding import derive_rng


class Simulator:
    """Drives one ``System`` for a fixed horizon with all instrumentation."""

    def __init__(
        self,
        system: System,
        rounds: int,
        injector: Optional[FaultInjector] = None,
        monitors: Optional[MonitorSuite] = None,
        warmup: int = 0,
        config: Optional[SimulationConfig] = None,
        observability: Optional[ObservabilityConfig] = None,
        engine: Optional[str] = None,
    ):
        if rounds <= 0:
            raise ValueError(f"rounds must be positive, got {rounds}")
        if not 0 <= warmup < rounds:
            raise ValueError(f"warmup must be in [0, rounds), got {warmup}")
        self.system = system
        self.rounds = rounds
        self.warmup = warmup
        self.injector = injector or FaultInjector(NoFaults())
        self.monitors = monitors
        if self.monitors is not None:
            self.monitors.attach(system)
        self.config = config
        self.meter = ThroughputMeter()
        self.occupancy = OccupancyProbe()
        self.tracker = EntityTracker()
        # Install after monitors.attach so their observer is chained (its
        # cost lands in the overhead bucket, not the phase buckets).
        self.profiler = PhaseProfiler().install(system)
        # Round engine: explicit argument > config.engine > REPRO_ENGINE >
        # reference. Both engines produce byte-identical state, reports,
        # metrics and traces (tests/test_engine_differential.py); the
        # incremental one skips quiescent cells via dirty sets.
        engine_name = resolve_engine_name(
            engine if engine is not None
            else (config.engine if config is not None else None)
        )
        self.engine = make_engine(engine_name, system, config)
        self._ran = False
        # Observability (repro.obs) is opt-in: REPRO_METRICS/REPRO_TRACE
        # env toggles by default, or an explicit ObservabilityConfig. When
        # disabled (the default) the round loop pays one branch per round.
        obs_config = (
            observability
            if observability is not None
            else ObservabilityConfig.from_env()
        )
        self.obs: Optional[SimulationInstrumentation] = None
        if obs_config.enabled:
            fingerprint = config.fingerprint() if config is not None else None
            self.obs = SimulationInstrumentation(obs_config, fingerprint)
            if self.obs.registry is not None:
                self.injector.metrics = self.obs.registry
                if self.monitors is not None:
                    self.monitors.metrics = self.obs.registry
                # Engines with internal machinery (the sharded fleet's
                # shard.* / channel.* supervision counters) report into
                # the same registry; plain engines ignore the attribute.
                self.engine.metrics = self.obs.registry

    def step(self):
        """One loop iteration: faults, update, monitors, metrics.

        Returns the round's :class:`~repro.core.system.RoundReport`.
        """
        self.profiler.begin_round()
        decision = self.injector.apply(self.system)
        self.profiler.mark_overhead()
        report = self.engine.step()
        if self.monitors is not None:
            self.monitors.after_round(self.system, report)
        self.meter.observe(report.consumed_count)
        self.occupancy.observe(self.system, report)
        self.tracker.observe(report, self.system)
        if self.obs is not None:
            self.obs.observe_round(self.system, report, decision)
        self.profiler.end_round()
        return report

    def run(self) -> SimulationResult:
        """Execute the full horizon and summarize.

        Single-use: a second call raises. (It used to silently append
        ``rounds`` more rounds onto the same meters and profiler,
        producing a result that looked like — but was not — a fresh
        run.) To extend a finished run, call :meth:`step` explicitly
        and :meth:`summarize` when done; for a fresh run, build a new
        simulator from the config.
        """
        if self._ran:
            raise RuntimeError(
                "Simulator.run() already executed; a second call would "
                "silently accumulate onto the same meters/profiler. Build "
                "a new Simulator (build_simulation(config)) for a fresh "
                "run, or use step()/summarize() to continue explicitly."
            )
        self._ran = True
        for _ in range(self.rounds):
            self.step()
        return self.summarize()

    def summarize(self) -> SimulationResult:
        """Summarize the instrumentation into a result record.

        Also releases engine-held resources (the sharded engine's worker
        fleet); continuing with :meth:`step` afterward remains valid —
        engines re-acquire lazily.
        """
        self.engine.close()
        latencies = self.tracker.latencies()  # already sorted ascending
        mean_latency = sum(latencies) / len(latencies) if latencies else None
        # The same interpolated percentile as repro.metrics.latency, so a
        # run reports one p95 no matter which code path computes it.
        p95_latency = percentile(latencies, 0.95) if latencies else None
        return SimulationResult(
            config=self.config.to_dict() if self.config else {},
            rounds=self.meter.rounds,
            produced=self.system.total_produced,
            consumed=self.meter.total_consumed,
            throughput=self.meter.average_throughput(warmup=self.warmup),
            in_flight=self.system.entity_count(),
            mean_latency=mean_latency,
            p95_latency=p95_latency,
            mean_blocked_cells=self.occupancy.mean_blocked(),
            mean_entities=self.occupancy.mean_entities(),
            total_failures=self.injector.total_failures,
            total_recoveries=self.injector.total_recoveries,
            monitor_violations=(
                len(self.monitors.violations) if self.monitors else 0
            ),
            phase_timings=self.profiler.timings.to_dict(),
            metrics=self.obs.finalize() if self.obs is not None else None,
        )


def _make_source_policy(spec: str) -> SourcePolicy:
    kind, argument = _parse_source_policy(spec)
    if kind == "eager":
        return EagerSource()
    if kind == "silent":
        return SilentSource()
    if kind == "bernoulli":
        assert argument is not None
        return BernoulliSource(rate=argument)
    assert kind == "capped" and argument is not None
    return CappedSource(EagerSource(), limit=int(argument))


def _make_token_policy(spec: str, seed: int) -> Optional[TokenPolicy]:
    """Materialize a token policy from its config spec string.

    Returns ``None`` for the default so ``System`` installs its own
    ``RoundRobinTokenPolicy`` (keeping the constructed system identical
    to pre-``token_policy`` builds). The ``random`` policy draws from its
    own derived stream so token choices never perturb the source RNG.
    """
    if spec == "roundrobin":
        return None
    if spec == "random":
        return RandomTokenPolicy(derive_rng(seed, "token"))
    assert spec == "sticky"
    return StickyTokenPolicy()


def build_simulation(
    config: SimulationConfig,
    observability: Optional[ObservabilityConfig] = None,
    engine: Optional[str] = None,
) -> Simulator:
    """Materialize a :class:`Simulator` from a declarative config.

    ``observability`` opts the run into metrics collection and/or
    protocol-event tracing (:mod:`repro.obs`); when omitted, the
    ``REPRO_METRICS`` / ``REPRO_TRACE`` environment toggles decide.

    ``engine`` overrides the round engine without touching the config
    (so e.g. the differential harness can run the *same* config object
    under both engines and compare results field-for-field); when
    omitted, ``config.engine`` then ``REPRO_ENGINE`` decide.
    """
    grid = Grid(config.grid_width, config.grid_height)
    params: Parameters = config.params
    source_rng = derive_rng(config.seed, "sources")
    token_policy = _make_token_policy(config.token_policy, config.seed)

    if config.commodities:
        from repro.multiflow.monitors import MultiflowMonitorSuite
        from repro.multiflow.system import MultiCommoditySystem

        system = MultiCommoditySystem(
            grid=grid,
            params=params,
            commodities=config.commodities,
            workload=config.workload,
            token_policy=token_policy,
            rng=source_rng,
        )
        fault_model: FaultModel
        if config.fault.enabled:
            # Multi-commodity target protection shields every
            # commodity's target, not a single tid.
            immune = (
                frozenset(system.table.targets())
                if config.fault.protect_target
                else frozenset()
            )
            fault_model = BernoulliFaultModel(
                pf=config.fault.pf, pr=config.fault.pr, immune=immune
            )
        else:
            fault_model = NoFaults()
        injector = FaultInjector(
            fault_model, rng=derive_rng(config.seed, "faults")
        )
        monitors = MultiflowMonitorSuite() if config.monitors else None
        return Simulator(
            system=system,
            rounds=config.rounds,
            injector=injector,
            monitors=monitors,
            warmup=config.warmup,
            observability=observability,
            engine=engine,
            config=config,
        )

    if config.path is not None:
        system = build_corridor_system(
            grid,
            params,
            list(config.path),
            source_policy=_make_source_policy(config.source_policy),
            rng=source_rng,
            fail_complement=config.fail_complement,
            token_policy=token_policy,
        )
    else:
        assert config.tid is not None
        sources = {
            cid: _make_source_policy(config.source_policy)
            for cid in config.sources
        }
        system = System(
            grid=grid,
            params=params,
            tid=config.tid,
            sources=sources,
            rng=source_rng,
            token_policy=token_policy,
        )

    fault_model: FaultModel
    if config.fault.enabled:
        immune = frozenset({system.tid}) if config.fault.protect_target else frozenset()
        fault_model = BernoulliFaultModel(
            pf=config.fault.pf, pr=config.fault.pr, immune=immune
        )
    else:
        fault_model = NoFaults()

    relocations = ()
    if config.adversary is not None:
        # Compile the named campaign into scripted events + relocations.
        # Scripted events layer on top of any Bernoulli churn (the
        # scripted model is consulted first so the Bernoulli rng stream
        # is unperturbed by the composition).
        from repro.adversary.scripts import compile_adversary
        from repro.faults.model import ComposedFaultModel
        from repro.faults.schedule import ScriptedFaultModel

        compiled = compile_adversary(config)
        relocations = compiled.relocations
        if compiled.events:
            scripted = ScriptedFaultModel(compiled.events)
            if isinstance(fault_model, NoFaults):
                fault_model = scripted
            else:
                fault_model = ComposedFaultModel((scripted, fault_model))

    injector = FaultInjector(
        fault_model,
        rng=derive_rng(config.seed, "faults"),
        relocations=relocations,
    )

    monitors = MonitorSuite() if config.monitors else None
    return Simulator(
        system=system,
        rounds=config.rounds,
        injector=injector,
        monitors=monitors,
        warmup=config.warmup,
        config=config,
        observability=observability,
        engine=engine,
    )
