"""The vectorized round engine: array-native sweeps, object-state truth.

:class:`VectorizedEngine` executes the paper's ``update`` transition with
whole-grid numpy operations (:mod:`repro.core.arrays`) instead of
per-cell Python sweeps:

* **Route** is one :func:`~repro.core.arrays.route_relax` call — the
  Jacobi simultaneous ``1 + min`` with the exact ``(dist, id)`` argmin —
  followed by a write-back of only the changed cells.
* **Signal** reads the per-direction ``NEPrev`` masks
  (:func:`~repro.core.arrays.ne_prev_masks`) and evaluates only *active*
  cells: those with an inbound pointer or a live token/signal. Skipping
  the rest is byte-exact by the same invariant the incremental engine
  proves — a skipped cell holds ``(NEPrev, token, signal) = (empty, bot,
  bot)`` and its fresh evaluation would be a no-op consuming no policy
  randomness. The gap predicate runs in the windowed extents form
  (:func:`~repro.core.signal.gap_clear_extents`).
* **Move** derives movers from the round's grant report, exactly like
  the incremental engine.

The :class:`~repro.core.cell.CellState` objects remain the source of
truth — every phase writes its changes back *before* the phase
notification fires, so monitors, metrics and traces observe identical
state at identical instants, and the lockstep harness
(:mod:`repro.testing.differential`) can compare canonical states
verbatim. The arrays are a mirror, resynchronized on ``fail`` /
``recover`` / seeding events through the chained cell observer.

Requires numpy (a soft dependency of the package): constructing the
engine raises a pointed ``RuntimeError`` when it is missing.
"""

from __future__ import annotations

from typing import List

from repro.core.arrays import (
    NO_CELL,
    GridArrays,
    ne_prev_masks,
    require_numpy,
    route_relax,
)
from repro.core.cell import dist_from_int
from repro.core.move import MovePhaseReport, apply_moves
from repro.core.route import RoutePhaseReport
from repro.core.signal import SignalPhaseReport, _signal_step, gap_clear_extents
from repro.core.system import RoundReport, System
from repro.grid.topology import CellId
from repro.sim.engine import RoundEngine, _row_major

try:  # soft dependency; construction is gated by require_numpy()
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None


class VectorizedEngine(RoundEngine):
    """Array-native execution: whole-grid numpy phases, byte-identical
    observable behavior.

    Equivalence to the reference engine is enforced by the 3-way
    differential matrix (``tests/test_engine_vectorized.py``) and the
    fuzz corpus, exactly as for the incremental engine.
    """

    name = "vectorized"

    def __init__(self, system: System, config=None):
        require_numpy()
        super().__init__(system, config)
        self.arrays = GridArrays.from_system(system)
        #: Flat-index-aligned views of the object state (the cells dict
        #: is insertion-ordered in ``Grid.cells()`` row-major order,
        #: which is ascending flat order).
        self._cell_ids: List[CellId] = list(system.cells)
        self._states = list(system.cells.values())
        self._tid_flat = self.arrays.flat(system.tid)
        self._target_mask = np.zeros(self.arrays.size, dtype=bool)
        self._target_mask[self._tid_flat] = True
        self._chained_cell_observer = system.cell_observer
        system.cell_observer = self._on_cell_event

    # ------------------------------------------------------------------
    # Mirror maintenance
    # ------------------------------------------------------------------

    def _on_cell_event(self, event: str, cid: CellId) -> None:
        """Environment transition (fail/recover/seeding) touched ``cid``:
        resynchronize its array slot from the object state."""
        k = self.arrays.flat(cid)
        self.arrays.sync_cell(k, self._states[k])
        if self._chained_cell_observer is not None:
            self._chained_cell_observer(event, cid)

    def resync(self) -> None:
        """Re-pack every array slot from the object state.

        External code that mutates cell state directly (outside the
        ``fail``/``recover``/``seed_entity`` transitions, which notify
        automatically) must call this, or the mirror goes stale — the
        analogue of the incremental engine's ``invalidate_all``.
        """
        for k, state in enumerate(self._states):
            self.arrays.sync_cell(k, state)

    # ------------------------------------------------------------------
    # The round
    # ------------------------------------------------------------------

    def step(self) -> RoundReport:
        """One synchronous round, mirroring ``System.update`` exactly."""
        system = self.system
        route_report = self._route_phase()
        system._notify_phase("route")
        signal_report = self._signal_phase()
        system._notify_phase("signal")
        move_report = self._move_phase(signal_report)
        system._notify_phase("move")
        system.total_consumed += len(move_report.consumed)
        produced = system._produce()
        self._note_production(produced)
        system._notify_phase("produce")
        report = RoundReport(
            round_index=system.round_index,
            route=route_report,
            signal=signal_report,
            move=move_report,
            produced=produced,
        )
        system.round_index += 1
        return report

    def _route_phase(self) -> RoutePhaseReport:
        """Whole-grid relaxation; write back only the changed cells."""
        arrays = self.arrays
        new_dist, new_next = route_relax(arrays)
        # Route never touches failed cells or the target.
        hold = arrays.failed | self._target_mask
        new_dist = np.where(hold, arrays.dist, new_dist)
        new_next = np.where(hold, arrays.next, new_next)

        report = RoutePhaseReport()
        changed_dist = np.nonzero(new_dist != arrays.dist)[0]
        changed_next = np.nonzero(new_next != arrays.next)[0]
        cell_ids = self._cell_ids
        states = self._states
        for k in changed_dist:
            k = int(k)
            states[k].dist = dist_from_int(int(new_dist[k]))
            report.changed_dist.append(cell_ids[k])
        for k in changed_next:
            k = int(k)
            encoded = int(new_next[k])
            states[k].next_id = None if encoded == NO_CELL else cell_ids[encoded]
            report.changed_next.append(cell_ids[k])
        arrays.dist = new_dist
        arrays.next = new_next
        return report

    def _signal_phase(self) -> SignalPhaseReport:
        """Signal over active cells only (ascending flat = row-major).

        A cell is *active* when some neighbor routes through it while
        visibly nonempty (an ``NEPrev`` mask bit), or it still holds a
        token or signal from an earlier round. Every other non-failed
        cell provably satisfies ``(NEPrev, token, signal) = (empty, bot,
        bot)``, for which the Signal function is a no-op that consumes
        no policy randomness (the token-policy contract) — skipping it
        is byte-exact.
        """
        arrays = self.arrays
        system = self.system
        west, south, north, east = ne_prev_masks(arrays)
        active = (west | south | north | east) | (
            (arrays.token != NO_CELL) | (arrays.signal != NO_CELL)
        )
        active &= ~arrays.failed

        report = SignalPhaseReport()
        cell_ids = self._cell_ids
        states = self._states
        width = arrays.width
        params = system.params
        policy = system.token_policy
        for k in np.nonzero(active)[0]:
            k = int(k)
            ne_prev = set()
            if west[k]:
                ne_prev.add(cell_ids[k - 1])
            if south[k]:
                ne_prev.add(cell_ids[k - width])
            if north[k]:
                ne_prev.add(cell_ids[k + width])
            if east[k]:
                ne_prev.add(cell_ids[k + 1])
            state = states[k]
            _signal_step(
                state, ne_prev, params, policy, report, gap=gap_clear_extents
            )
            arrays.token[k] = arrays.ref(state.token)
            arrays.signal[k] = arrays.ref(state.signal)
        return report

    def _move_phase(self, signal_report: SignalPhaseReport) -> MovePhaseReport:
        """Move derived from this round's grants (see the incremental
        engine: under the Signal invariant the grant report equals the
        reference's full ``effective_signal`` scan)."""
        system = self.system
        movers = sorted(
            ((grantee, granter) for granter, grantee in signal_report.granted.items()),
            key=lambda pair: _row_major(pair[0]),
        )
        report = apply_moves(
            system.grid, system.cells, system.params, system.tid, movers
        )
        member_count = self.arrays.member_count
        flat = self.arrays.flat
        for transfer in report.transfers:
            member_count[flat(transfer.src)] -= 1
            if not transfer.consumed:
                member_count[flat(transfer.dst)] += 1
        return report

    def _note_production(self, produced) -> None:
        """Fresh entities land strictly inside their source cell (centers
        sit ``l/2 > 0`` off every wall): count them at the floor cell."""
        member_count = self.arrays.member_count
        width = self.arrays.width
        for entity in produced:
            member_count[int(entity.y) * width + int(entity.x)] += 1
