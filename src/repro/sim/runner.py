"""Multi-seed execution of configs."""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.sim.seeding import derive_seed
from repro.sim.simulator import build_simulation


def run_config(config: SimulationConfig, **extras) -> SimulationResult:
    """Build and run one simulation; attach ``extras`` annotations."""
    result = build_simulation(config).run()
    result.extras.update(extras)
    return result


def run_replications(
    config: SimulationConfig,
    replications: int,
    master_seed: Optional[int] = None,
    workers: int = 1,
    point_timeout: Optional[float] = None,
    max_retries: int = 2,
    strict: bool = True,
    **extras,
) -> List[SimulationResult]:
    """Run ``replications`` independent copies with derived seeds.

    Seeds are derived from ``master_seed`` (default: the config's seed) and
    the replication index, so adding replications never perturbs existing
    ones. ``workers > 1`` fans the replications out over a supervised
    process pool; results come back in replication order either way.

    Execution is supervised (retries, ``point_timeout``, worker-death
    recovery — see :mod:`repro.sim.supervisor`). Because callers consume
    the returned list positionally, ``strict`` defaults to **True** here:
    a replication that exhausts its retry budget raises
    :class:`~repro.sim.supervisor.PointFailureError` rather than leaving
    a :class:`~repro.sim.results.PointFailure` hole in the list. Pass
    ``strict=False`` to receive the mixed outcome list instead.
    """
    if replications <= 0:
        raise ValueError(f"replications must be positive, got {replications}")
    base = config.seed if master_seed is None else master_seed
    seeded_points = [
        (
            f"rep{index}",
            replace(config, seed=derive_seed(base, f"rep{index}")),
            {"replication": index, **extras},
        )
        for index in range(replications)
    ]
    from repro.sim.parallel import ParallelSweepRunner

    runner = ParallelSweepRunner(
        workers=workers,
        point_timeout=point_timeout,
        max_retries=max_retries,
        strict=strict,
    )
    return runner.run_points("replications", seeded_points)
