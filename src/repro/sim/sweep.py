"""Parameter sweeps.

A sweep is a named list of (label, config, annotations) points, executed
into a :class:`~repro.sim.results.SweepResult`. The figure experiments in
:mod:`repro.experiments` are thin builders of sweeps.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.sim.config import SimulationConfig
from repro.sim.results import SweepResult
from repro.sim.runner import run_config


@dataclass
class Sweep:
    """An ordered collection of labeled simulation points."""

    name: str
    points: List[Tuple[str, SimulationConfig, Dict]] = field(default_factory=list)

    def add(self, label: str, config: SimulationConfig, **extras) -> None:
        """Append a labeled point with annotation extras."""
        self.points.append((label, config, dict(extras)))

    def __len__(self) -> int:
        return len(self.points)

    def run(
        self, progress: Callable[[str], None] = lambda message: None
    ) -> SweepResult:
        """Execute every point in order; ``progress`` gets one call per point."""
        result = SweepResult(name=self.name)
        for label, config, extras in self.points:
            progress(f"[{self.name}] running {label}")
            result.add(run_config(config, point=label, **extras))
        return result


def sweep_grid(
    name: str,
    base: SimulationConfig,
    axes: Dict[str, Sequence],
    configure: Callable[[SimulationConfig, Dict], SimulationConfig] = None,
) -> Sweep:
    """Cartesian-product sweep over config fields.

    ``axes`` maps field names (or virtual names handled by ``configure``)
    to value lists. For plain config fields the value is applied with
    ``dataclasses.replace``; anything else must be consumed by the
    ``configure`` callback, which receives the base config and the full
    assignment dict and returns the final config.
    """
    sweep = Sweep(name=name)
    keys = list(axes)
    for values in itertools.product(*(axes[key] for key in keys)):
        assignment = dict(zip(keys, values))
        if configure is not None:
            config = configure(base, assignment)
        else:
            config = replace(base, **assignment)
        label = ",".join(f"{key}={value}" for key, value in assignment.items())
        sweep.add(label, config, **assignment)
    return sweep
