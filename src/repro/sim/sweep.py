"""Parameter sweeps.

A sweep is a named list of (label, config, annotations) points, executed
into a :class:`~repro.sim.results.SweepResult`. The figure experiments in
:mod:`repro.experiments` are thin builders of sweeps.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.config import SimulationConfig
from repro.sim.results import SweepResult
from repro.sim.runner import run_config


@dataclass
class Sweep:
    """An ordered collection of labeled simulation points."""

    name: str
    points: List[Tuple[str, SimulationConfig, Dict]] = field(default_factory=list)

    def add(self, label: str, config: SimulationConfig, **extras) -> None:
        """Append a labeled point with annotation extras."""
        self.points.append((label, config, dict(extras)))

    def __len__(self) -> int:
        return len(self.points)

    def run(
        self,
        progress: Callable[[str], None] = lambda message: None,
        workers: int = 1,
        checkpoint: Optional[Path] = None,
        resume: bool = False,
    ) -> SweepResult:
        """Execute every point; ``progress`` gets one call per point event.

        ``workers > 1`` fans the points out over a process pool
        (:class:`repro.sim.parallel.ParallelSweepRunner`); ``workers <= 0``
        means one worker per CPU. Results are collected in point order, so
        the returned :class:`SweepResult` is independent of the worker
        count (``phase_timings`` excepted — it measures wall time).

        ``checkpoint`` names a JSON-lines file recording each completed
        point; with ``resume=True`` an interrupted sweep skips the points
        already recorded there.
        """
        if workers != 1 or checkpoint is not None:
            from repro.sim.parallel import ParallelSweepRunner

            runner = ParallelSweepRunner(
                workers=workers,
                checkpoint=checkpoint,
                resume=resume,
                progress=progress,
            )
            # "point" first, matching the serial run_config(point=..., **extras)
            # kwarg order, so extras dicts (and JSON/CSV output) are
            # byte-identical between the two paths.
            points = [
                (label, config, {"point": label, **extras})
                for label, config, extras in self.points
            ]
            return runner.run_sweep(self.name, points)
        result = SweepResult(name=self.name)
        for label, config, extras in self.points:
            progress(f"[{self.name}] running {label}")
            result.add(run_config(config, point=label, **extras))
        return result


def sweep_grid(
    name: str,
    base: SimulationConfig,
    axes: Dict[str, Sequence],
    configure: Callable[[SimulationConfig, Dict], SimulationConfig] = None,
) -> Sweep:
    """Cartesian-product sweep over config fields.

    ``axes`` maps field names (or virtual names handled by ``configure``)
    to value lists. For plain config fields the value is applied with
    ``dataclasses.replace``; anything else must be consumed by the
    ``configure`` callback, which receives the base config and the full
    assignment dict and returns the final config.
    """
    sweep = Sweep(name=name)
    keys = list(axes)
    for values in itertools.product(*(axes[key] for key in keys)):
        assignment = dict(zip(keys, values))
        if configure is not None:
            config = configure(base, assignment)
        else:
            config = replace(base, **assignment)
        label = ",".join(f"{key}={value}" for key, value in assignment.items())
        sweep.add(label, config, **assignment)
    return sweep
