"""Parameter sweeps.

A sweep is a named list of (label, config, annotations) points, executed
into a :class:`~repro.sim.results.SweepResult`. The figure experiments in
:mod:`repro.experiments` are thin builders of sweeps.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.config import SimulationConfig
from repro.sim.results import SweepResult


@dataclass
class Sweep:
    """An ordered collection of labeled simulation points."""

    name: str
    points: List[Tuple[str, SimulationConfig, Dict]] = field(default_factory=list)

    def add(self, label: str, config: SimulationConfig, **extras) -> None:
        """Append a labeled point with annotation extras."""
        self.points.append((label, config, dict(extras)))

    def __len__(self) -> int:
        return len(self.points)

    def run(
        self,
        progress: Callable[[str], None] = lambda message: None,
        workers: int = 1,
        checkpoint: Optional[Path] = None,
        resume: bool = False,
        point_timeout: Optional[float] = None,
        max_retries: int = 2,
        strict: bool = False,
        mp_context: Optional[str] = None,
    ) -> SweepResult:
        """Execute every point; ``progress`` gets one call per point event.

        ``workers > 1`` fans the points out over a supervised process
        pool (:class:`repro.sim.parallel.ParallelSweepRunner`);
        ``workers <= 0`` means one worker per CPU. Results are collected
        in point order, so the returned :class:`SweepResult` is
        independent of the worker count (``phase_timings`` excepted — it
        measures wall time).

        ``checkpoint`` names a JSON-lines file recording each completed
        point; with ``resume=True`` an interrupted sweep skips the points
        already recorded there.

        Execution is supervised: a point that raises is retried up to
        ``max_retries`` times (identical seeded config — a successful
        retry is bit-identical to a first-try success), a point running
        longer than ``point_timeout`` seconds has its worker killed, and
        a worker that dies is replaced with its point rescheduled. Points
        that exhaust the budget land on ``SweepResult.failures`` as
        structured :class:`~repro.sim.results.PointFailure` records; the
        sweep itself always terminates. ``strict=True`` restores
        fail-fast (:class:`~repro.sim.supervisor.PointFailureError` on
        the first exhausted point).
        """
        from repro.sim.parallel import ParallelSweepRunner

        runner = ParallelSweepRunner(
            workers=workers,
            checkpoint=checkpoint,
            resume=resume,
            progress=progress,
            mp_context=mp_context,
            point_timeout=point_timeout,
            max_retries=max_retries,
            strict=strict,
        )
        # "point" first, matching the historical serial
        # run_config(point=..., **extras) kwarg order, so extras dicts
        # (and JSON/CSV output) are byte-identical across engine versions.
        points = [
            (label, config, {"point": label, **extras})
            for label, config, extras in self.points
        ]
        return runner.run_sweep(self.name, points)


def sweep_grid(
    name: str,
    base: SimulationConfig,
    axes: Dict[str, Sequence],
    configure: Callable[[SimulationConfig, Dict], SimulationConfig] = None,
) -> Sweep:
    """Cartesian-product sweep over config fields.

    ``axes`` maps field names (or virtual names handled by ``configure``)
    to value lists. For plain config fields the value is applied with
    ``dataclasses.replace``; anything else must be consumed by the
    ``configure`` callback, which receives the base config and the full
    assignment dict and returns the final config.
    """
    sweep = Sweep(name=name)
    keys = list(axes)
    for values in itertools.product(*(axes[key] for key in keys)):
        assignment = dict(zip(keys, values))
        if configure is not None:
            config = configure(base, assignment)
        else:
            config = replace(base, **assignment)
        label = ",".join(f"{key}={value}" for key, value in assignment.items())
        sweep.add(label, config, **assignment)
    return sweep
