"""Stabilization-time measurement across the adversary classes.

:func:`stabilization_sweep` drives forced scenarios for each adversary
class and measures how many rounds routing needs to re-converge to the
BFS ground truth after the class's last scripted perturbation, against
the Lemma 6 ``grid.size + 2`` horizon that the ``stabilization-bound``
fuzz oracle enforces. The EXPERIMENTS.md stabilization-time-vs-adversary
sweep is this helper; the numbers double as a tuning aid when adding a
class — a class whose measured tail hugs the bound needs a gentler
schedule, not a looser oracle.

Kept out of ``repro.adversary.__init__`` on purpose: this module imports
the fuzz generator, which imports :mod:`repro.adversary.scripts`, so
re-exporting it from the package would make the package unimportable
mid-generator-import.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence

from repro.adversary.scripts import ADVERSARIES, compile_adversary
from repro.fuzz.generator import Scenario, generate_scenario
from repro.grid.topology import Grid
from repro.monitors.progress import routing_matches_ground_truth
from repro.sim.simulator import build_simulation


def measure_stabilization(scenario: Scenario) -> Dict:
    """One measurement: rounds to re-stabilize after the last blow.

    Steps the scenario's run to one round past the compiled schedule's
    last perturbation, then counts rounds until routing matches the
    ground truth of the surviving topology. ``stabilized_after`` is
    None when convergence did not happen within ``bound`` extra rounds
    (which the stabilization-bound oracle reports as a violation).
    """
    config = replace(scenario.config, monitors=False)
    compiled = compile_adversary(config)
    settle_from = compiled.last_perturbation_round + 1
    bound = Grid(config.grid_width, config.grid_height).size + 2
    sim = build_simulation(config)
    stabilized_after: Optional[int] = None
    try:
        for _ in range(settle_from):
            sim.step()
        for offset in range(bound + 1):
            if routing_matches_ground_truth(sim.system):
                stabilized_after = offset
                break
            sim.step()
    finally:
        sim.engine.close()
    return {
        "seed": scenario.seed,
        "adversary": config.adversary,
        "engine": config.engine,
        "last_perturbation_round": compiled.last_perturbation_round,
        "stabilized_after": stabilized_after,
        "bound": bound,
        "within_bound": stabilized_after is not None,
    }


def stabilization_sweep(
    classes: Optional[Sequence[str]] = None,
    seeds: Iterable[int] = range(5),
) -> List[Dict]:
    """One measurement row per (class, seed); classes in sorted order.

    ``classes`` defaults to the full registry. Rows come back grouped by
    class then seed, so tabulating per-class min/max re-stabilization
    times is a single pass.
    """
    rows: List[Dict] = []
    for name in sorted(classes if classes is not None else ADVERSARIES):
        for seed in seeds:
            rows.append(measure_stabilization(generate_scenario(seed, adversary=name)))
    return rows
