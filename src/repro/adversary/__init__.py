"""Structured adversary scripts: the campaigns the paper's proofs are about.

The fuzzer's i.i.d. Bernoulli fault schedules explore *unstructured*
churn. This package provides the structured counterpart — named,
deterministic, seedable adversary classes (correlated regional
failures, healing partitions, moving targets, oscillation at the
stabilization frequency, token-spacing pressure, asynchronous timing
jitter) that compile into the existing fault-schedule / target-
relocation / timed-round machinery, each paired with an oracle in
:mod:`repro.fuzz.oracles` that checks the claim the class attacks.
"""

from repro.adversary.scripts import (
    ADVERSARIES,
    AdversaryScript,
    CompiledAdversary,
    compile_adversary,
    format_adversary_spec,
    parse_adversary_spec,
    validate_adversary_spec,
)

__all__ = [
    "ADVERSARIES",
    "AdversaryScript",
    "CompiledAdversary",
    "compile_adversary",
    "format_adversary_spec",
    "parse_adversary_spec",
    "validate_adversary_spec",
]
