"""Named adversary classes and their compilation to concrete schedules.

An :class:`AdversaryScript` is a *deterministic, seedable* strategy: given
a :class:`~repro.sim.config.SimulationConfig` whose ``adversary`` field
names it (optionally with parameters, e.g. ``"regional_failure:waves=2,
size=3"``), it compiles to a :class:`CompiledAdversary` — an explicit
:class:`~repro.faults.schedule.FaultEvent` list plus scheduled target
relocations — that :func:`repro.sim.simulator.build_simulation` feeds into
the fault injector. Compilation derives all randomness from
``derive_rng(config.seed, "adversary")``, so the same config always plays
the same campaign, on any engine.

The registry deliberately mirrors ``ENGINES``/``ORACLES``: a flat
name -> class dict, lazily imported by config validation, diffed against
docs/fuzzing.md by tests/test_docs.py.

Classes
-------
``regional_failure``
    Correlated waves: a contiguous rectangular region fails at once and
    recovers at once, several times.
``partition_heal``
    A full row/column wall fails (cutting the grid in two), then heals.
``rotating_target``
    The *target itself* relocates mid-run (self-stabilization with mobile
    destinations, cf. arXiv:0708.0909).
``oscillator``
    One cell near the target fail/recovers cyclically at a period tuned
    to the grid's stabilization frequency (~width+height rounds).
``token_starvation``
    No faults at all: a merge cell is kept under configurable
    token-spacing pressure (2-4 eager neighbors contending for one
    rotating token, cf. arXiv:0908.1797).
``async_jitter``
    Promotes the timed-round asynchronous engine to a campaign
    dimension: the run executes on ``engine="timed"`` with per-message
    jitter <= one period, plus one mid-run fail/recover perturbation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from repro.faults.schedule import FaultEvent
from repro.grid.topology import CellId
from repro.sim.seeding import derive_rng

Params = Dict[str, float]


# --------------------------------------------------------------------------
# Spec strings
# --------------------------------------------------------------------------

def parse_adversary_spec(spec: str) -> Tuple[str, Params]:
    """Split ``"name"`` / ``"name:k=v,k=v"`` into ``(name, params)``.

    Values parse as int when possible, float otherwise. Raises
    ``ValueError`` on malformed specs; unknown names/keys are rejected by
    :func:`validate_adversary_spec` (which knows the registry).
    """
    name, _, tail = spec.partition(":")
    name = name.strip()
    if not name:
        raise ValueError(f"empty adversary name in spec {spec!r}")
    params: Params = {}
    if tail:
        for item in tail.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep or not key:
                raise ValueError(
                    f"malformed adversary parameter {item!r} in spec {spec!r} "
                    "(expected key=value)"
                )
            try:
                params[key] = int(value)
            except ValueError:
                try:
                    params[key] = float(value)
                except ValueError:
                    raise ValueError(
                        f"adversary parameter {key!r} in spec {spec!r} must "
                        f"be numeric, got {value!r}"
                    ) from None
    return name, params


def format_adversary_spec(name: str, params: Params) -> str:
    """The canonical spec string: sorted keys, defaults omitted."""
    defaults = ADVERSARIES[name].defaults
    kept = {
        key: value
        for key, value in sorted(params.items())
        if defaults.get(key) != value
    }
    if not kept:
        return name
    rendered = ",".join(
        f"{key}={int(value) if float(value).is_integer() else value}"
        for key, value in kept.items()
    )
    return f"{name}:{rendered}"


# --------------------------------------------------------------------------
# Compilation target
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class CompiledAdversary:
    """What a script compiles to: timed fault events + target relocations."""

    events: Tuple[FaultEvent, ...] = ()
    relocations: Tuple[Tuple[int, CellId], ...] = ()
    """Sorted ``(round_index, new_target)`` pairs applied by the injector."""

    @property
    def last_perturbation_round(self) -> int:
        """The round of the final scripted disturbance (-1 when none).

        The ``stabilization-bound`` oracle starts its Lemma 6 watch here.
        """
        rounds = [e.round_index for e in self.events]
        rounds.extend(r for r, _ in self.relocations)
        return max(rounds, default=-1)


# --------------------------------------------------------------------------
# Geometry helpers (pure functions of the config, no Grid object needed)
# --------------------------------------------------------------------------

def _grid_dims(config) -> Tuple[int, int]:
    return config.grid_width, config.grid_height or config.grid_width

def _target_cell(config) -> CellId:
    return config.path[-1] if config.path is not None else config.tid


def _workload_cells(config) -> List[CellId]:
    """Cells the adversary may touch: alive workload cells minus target.

    In fail-complement corridor mode only the path is alive, so victims
    are restricted to path cells (failing the pre-failed complement would
    be a no-op and recovering it would resurrect the corridor walls).
    """
    target = _target_cell(config)
    if config.path is not None and config.fail_complement:
        cells: Iterable[CellId] = config.path
    else:
        width, height = _grid_dims(config)
        cells = ((i, j) for i in range(width) for j in range(height))
    return sorted(c for c in cells if tuple(c) != tuple(target))


def _neighbors(cell: CellId, width: int, height: int) -> List[CellId]:
    x, y = cell
    candidates = ((x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1))
    return [
        (i, j) for i, j in candidates if 0 <= i < width and 0 <= j < height
    ]


def _pick_victim(config, rng: random.Random) -> Optional[CellId]:
    """One cell to perturb: prefer a non-source neighbor of the target."""
    candidates = _workload_cells(config)
    sources = {tuple(s) for s in config.sources}
    width, height = _grid_dims(config)
    near = [
        c
        for c in _neighbors(_target_cell(config), width, height)
        if c in candidates and tuple(c) not in sources
    ]
    pool = near or [c for c in candidates if tuple(c) not in sources] or candidates
    return rng.choice(pool) if pool else None


# --------------------------------------------------------------------------
# Script base class
# --------------------------------------------------------------------------

class AdversaryScript:
    """One named adversary class. Subclasses are stateless singletons."""

    name: str = ""
    description: str = ""
    defaults: Params = {}

    # -- campaign compilation -------------------------------------------
    def compile(self, config, params: Params) -> CompiledAdversary:
        """Pure: ``(config, params) -> CompiledAdversary``. Every fail it
        schedules must recover before ``config.rounds`` (incomplete waves
        are dropped, not truncated)."""
        raise NotImplementedError

    def validate(self, config, params: Params) -> None:
        """Reject configs the class cannot play against (raise ValueError)."""
        for key in params:
            if key not in self.defaults:
                raise ValueError(
                    f"adversary {self.name!r} does not take parameter "
                    f"{key!r}; available: {sorted(self.defaults)}"
                )

    # -- generator integration ------------------------------------------
    def sample_spec(self, rng: random.Random) -> str:
        """A random (but canonical) spec string for the fuzz generator."""
        return self.name

    def config_overrides(self, rng: random.Random) -> Dict:
        """Config fields the class pins (e.g. engine/jitter/token policy)."""
        return {}

    def engine_pins(self, rng: random.Random) -> Optional[str]:
        """The engine the generator pins for this class (None = deferred)."""
        return rng.choice([None, "reference", "incremental", "vectorized"])

    def shape_workload(
        self, rng: random.Random, width: int, height: int, params: Params
    ) -> Optional[Dict]:
        """Optionally dictate ``{"tid": ..., "sources": ...}``."""
        return None

    # -- shrinker integration -------------------------------------------
    def shrink_specs(self, params: Params) -> Iterator[Tuple[Params, str]]:
        """Candidate parameter reductions, most aggressive first."""
        return iter(())


# --------------------------------------------------------------------------
# The six classes
# --------------------------------------------------------------------------

class RegionalFailure(AdversaryScript):
    name = "regional_failure"
    description = (
        "correlated failure waves: a contiguous rectangular region fails "
        "at once and recovers at once, 1-3 times per run"
    )
    defaults: Params = {"waves": 2, "size": 2}

    def compile(self, config, params: Params) -> CompiledAdversary:
        rng = derive_rng(config.seed, "adversary")
        waves = int(params.get("waves", self.defaults["waves"]))
        size = int(params.get("size", self.defaults["size"]))
        width, height = _grid_dims(config)
        candidates = set(map(tuple, _workload_cells(config)))
        gap = max(6, config.rounds // (waves + 1))
        duration = max(3, gap // 2)
        events: List[FaultEvent] = []
        for wave in range(waves):
            start = wave * gap + 2
            stop = start + duration
            if stop >= config.rounds:
                break  # drop incomplete waves: every fail must heal
            x0 = rng.randrange(max(1, width - size + 1))
            y0 = rng.randrange(max(1, height - size + 1))
            region = sorted(
                (i, j)
                for i in range(x0, min(x0 + size, width))
                for j in range(y0, min(y0 + size, height))
                if (i, j) in candidates
            )
            for cell in region:
                events.append(FaultEvent(start, cell, "fail"))
                events.append(FaultEvent(stop, cell, "recover"))
        return CompiledAdversary(events=tuple(events))

    def sample_spec(self, rng: random.Random) -> str:
        return format_adversary_spec(
            self.name,
            {"waves": rng.randint(1, 3), "size": rng.randint(1, 3)},
        )

    def shrink_specs(self, params: Params) -> Iterator[Tuple[Params, str]]:
        waves = int(params.get("waves", self.defaults["waves"]))
        size = int(params.get("size", self.defaults["size"]))
        if waves > 1:
            yield {**params, "waves": waves - 1}, "fewer waves"
        if size > 1:
            yield {**params, "size": size - 1}, "smaller region"


class PartitionHeal(AdversaryScript):
    name = "partition_heal"
    description = (
        "a full grid row or column fails as a wall (partitioning the "
        "grid), then heals; safety must hold throughout, routing must "
        "re-stabilize after the heal"
    )
    defaults: Params = {"axis": 0}

    def compile(self, config, params: Params) -> CompiledAdversary:
        rng = derive_rng(config.seed, "adversary")
        axis = int(params.get("axis", self.defaults["axis"]))
        width, height = _grid_dims(config)
        target = tuple(_target_cell(config))
        candidates = set(map(tuple, _workload_cells(config)))
        if axis == 0:
            cuts = [i for i in range(width) if i != target[0]]
        else:
            cuts = [j for j in range(height) if j != target[1]]
        if not cuts:
            return CompiledAdversary()
        cut = rng.choice(cuts)
        if axis == 0:
            wall = [(cut, j) for j in range(height)]
        else:
            wall = [(i, cut) for i in range(width)]
        wall = sorted(c for c in wall if c in candidates)
        down = max(1, config.rounds // 4)
        heal = min(config.rounds - 1, down + max(4, width + height))
        if not wall or heal <= down:
            return CompiledAdversary()
        from repro.faults.schedule import partition_events

        return CompiledAdversary(events=tuple(partition_events(wall, down, heal)))

    def sample_spec(self, rng: random.Random) -> str:
        return format_adversary_spec(self.name, {"axis": rng.choice([0, 1])})


class RotatingTarget(AdversaryScript):
    name = "rotating_target"
    description = (
        "the target cell itself relocates 1-3 times mid-run; routing must "
        "re-stabilize onto each new destination"
    )
    defaults: Params = {"moves": 2}

    def compile(self, config, params: Params) -> CompiledAdversary:
        rng = derive_rng(config.seed, "adversary")
        moves = int(params.get("moves", self.defaults["moves"]))
        sources = {tuple(s) for s in config.sources}
        candidates = [
            c for c in _workload_cells(config) if tuple(c) not in sources
        ]
        gap = config.rounds // (moves + 1)
        if gap < 1:
            return CompiledAdversary()
        current = tuple(_target_cell(config))
        relocations: List[Tuple[int, CellId]] = []
        for move in range(moves):
            when = (move + 1) * gap
            if when >= config.rounds:
                break
            choices = [c for c in candidates if tuple(c) != current]
            if not choices:
                break
            dest = rng.choice(choices)
            relocations.append((when, dest))
            current = tuple(dest)
        return CompiledAdversary(relocations=tuple(relocations))

    def validate(self, config, params: Params) -> None:
        super().validate(config, params)
        if config.tid is None:
            raise ValueError(
                "adversary 'rotating_target' needs an explicit tid workload "
                "(corridor paths encode the target in their geometry)"
            )
        if config.fault.enabled:
            raise ValueError(
                "adversary 'rotating_target' cannot be combined with a "
                "Bernoulli fault model (a relocation destination could be "
                "failed at relocation time)"
            )
        if config.engine not in (None, "reference", "incremental"):
            raise ValueError(
                f"engine {config.engine!r} does not support target "
                "relocation; use 'reference', 'incremental', or None"
            )

    def sample_spec(self, rng: random.Random) -> str:
        return format_adversary_spec(self.name, {"moves": rng.randint(1, 3)})

    def engine_pins(self, rng: random.Random) -> Optional[str]:
        return rng.choice([None, "reference", "incremental"])

    def shrink_specs(self, params: Params) -> Iterator[Tuple[Params, str]]:
        moves = int(params.get("moves", self.defaults["moves"]))
        if moves > 1:
            yield {**params, "moves": moves - 1}, "fewer relocations"


class Oscillator(AdversaryScript):
    name = "oscillator"
    description = (
        "one cell near the target fail/recovers cyclically at a period "
        "tuned to the measured stabilization frequency (~width+height "
        "rounds), probing repeated re-stabilization"
    )
    defaults: Params = {"cycles": 3, "period": 0}

    def compile(self, config, params: Params) -> CompiledAdversary:
        rng = derive_rng(config.seed, "adversary")
        cycles = int(params.get("cycles", self.defaults["cycles"]))
        width, height = _grid_dims(config)
        period = int(params.get("period", 0)) or (width + height)
        victim = _pick_victim(config, rng)
        if victim is None:
            return CompiledAdversary()
        half = max(2, period // 2)
        events: List[FaultEvent] = []
        for cycle in range(cycles):
            down = 2 + cycle * period
            up = down + half
            if up >= config.rounds:
                break
            events.append(FaultEvent(down, victim, "fail"))
            events.append(FaultEvent(up, victim, "recover"))
        return CompiledAdversary(events=tuple(events))

    def sample_spec(self, rng: random.Random) -> str:
        return format_adversary_spec(self.name, {"cycles": rng.randint(2, 4)})

    def shrink_specs(self, params: Params) -> Iterator[Tuple[Params, str]]:
        cycles = int(params.get("cycles", self.defaults["cycles"]))
        period = int(params.get("period", self.defaults["period"]))
        if cycles > 1:
            yield {**params, "cycles": cycles - 1}, "fewer cycles"
        if period:
            yield {**params, "period": period * 2}, "lower frequency"


class TokenStarvation(AdversaryScript):
    name = "token_starvation"
    description = (
        "no faults: 2-4 eager sources ring the merge cell ahead of the "
        "target, contending for one rotating token; the paired oracle "
        "asserts roundrobin rotation never parks or starves"
    )
    defaults: Params = {"pressure": 3}

    def compile(self, config, params: Params) -> CompiledAdversary:
        return CompiledAdversary()

    def validate(self, config, params: Params) -> None:
        super().validate(config, params)
        if config.token_policy != "roundrobin":
            raise ValueError(
                "adversary 'token_starvation' tests the roundrobin fairness "
                f"claim; token_policy must be 'roundrobin', got "
                f"{config.token_policy!r}"
            )

    def sample_spec(self, rng: random.Random) -> str:
        return format_adversary_spec(self.name, {"pressure": rng.randint(2, 4)})

    def config_overrides(self, rng: random.Random) -> Dict:
        return {"token_policy": "roundrobin", "source_policy": "eager"}

    def engine_pins(self, rng: random.Random) -> Optional[str]:
        return rng.choice([None, "reference", "incremental"])

    def shape_workload(
        self, rng: random.Random, width: int, height: int, params: Params
    ) -> Optional[Dict]:
        pressure = int(params.get("pressure", self.defaults["pressure"]))
        tid = (width // 2, height // 2)
        ring = sorted(_neighbors(tid, width, height))
        return {"tid": tid, "sources": tuple(ring[:pressure])}

    def shrink_specs(self, params: Params) -> Iterator[Tuple[Params, str]]:
        pressure = int(params.get("pressure", self.defaults["pressure"]))
        if pressure > 2:
            yield {**params, "pressure": pressure - 1}, "less pressure"


class AsyncJitter(AdversaryScript):
    name = "async_jitter"
    description = (
        "the run executes on the timed-round asynchronous engine with "
        "per-message jitter <= one round period, plus one mid-run "
        "fail/recover perturbation; bounded delay must be execution-"
        "identical to the synchronous model"
    )
    defaults: Params = {}

    def compile(self, config, params: Params) -> CompiledAdversary:
        rng = derive_rng(config.seed, "adversary")
        if config.rounds < 9:
            return CompiledAdversary()
        victim = _pick_victim(config, rng)
        if victim is None:
            return CompiledAdversary()
        down = config.rounds // 3
        up = min(config.rounds - 1, 2 * config.rounds // 3)
        if up <= down:
            return CompiledAdversary()
        return CompiledAdversary(
            events=(
                FaultEvent(down, victim, "fail"),
                FaultEvent(up, victim, "recover"),
            )
        )

    def validate(self, config, params: Params) -> None:
        super().validate(config, params)
        if config.engine != "timed":
            raise ValueError(
                "adversary 'async_jitter' runs on the timed-round engine; "
                f"set engine='timed', got {config.engine!r}"
            )

    def config_overrides(self, rng: random.Random) -> Dict:
        return {
            "engine": "timed",
            "jitter": rng.choice([0.25, 0.5, 0.75, 1.0]),
        }

    def engine_pins(self, rng: random.Random) -> Optional[str]:
        return "timed"


# --------------------------------------------------------------------------
# Registry + config-facing entry points
# --------------------------------------------------------------------------

ADVERSARIES: Dict[str, AdversaryScript] = {
    script.name: script
    for script in (
        RegionalFailure(),
        PartitionHeal(),
        RotatingTarget(),
        Oscillator(),
        TokenStarvation(),
        AsyncJitter(),
    )
}


def validate_adversary_spec(spec: str, config) -> None:
    """Config-validation hook: parse, resolve, and class-validate."""
    name, params = parse_adversary_spec(spec)
    script = ADVERSARIES.get(name)
    if script is None:
        raise ValueError(
            f"unknown adversary {name!r}; available: {sorted(ADVERSARIES)}"
        )
    script.validate(config, params)


def compile_adversary(config) -> CompiledAdversary:
    """Compile ``config.adversary`` (assumed validated) to its schedule."""
    name, params = parse_adversary_spec(config.adversary)
    return ADVERSARIES[name].compile(config, params)
