"""Dependency-free SVG snapshots of system states.

Renders the partitioned plane the way the paper's Figure 1 draws it:
unit cells with identifiers, the target green, sources blue, failed
cells red, entities as filled squares with their safety region (the
``rs``-margin) outlined, and the routing field as arrows. Output is a
plain SVG string / file — viewable in any browser, embeddable in docs.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

from repro.core.system import System
from repro.grid.topology import CellId

CELL_PX = 80
MARGIN_PX = 30

_STYLE = {
    "cell": "fill:white;stroke:#555;stroke-width:1",
    "cell_failed": "fill:#f6c8c8;stroke:#555;stroke-width:1",
    "cell_target": "fill:#c9e8c9;stroke:#555;stroke-width:1",
    "cell_source": "fill:#cfe0f5;stroke:#555;stroke-width:1",
    "entity": "fill:#3465a4;stroke:#204a87;stroke-width:1",
    "safety": "fill:none;stroke:#cc0000;stroke-width:1;stroke-dasharray:3,2",
    "arrow": "stroke:#2e8b57;stroke-width:2;fill:#2e8b57",
    "label": "font-family:monospace;font-size:11px;fill:#333",
}


def _cell_style(system: System, cid: CellId) -> str:
    state = system.cells[cid]
    if state.failed:
        return _STYLE["cell_failed"]
    if cid == system.tid:
        return _STYLE["cell_target"]
    if cid in system.sources:
        return _STYLE["cell_source"]
    return _STYLE["cell"]


def _to_px_x(system: System, x: float) -> float:
    return MARGIN_PX + x * CELL_PX


def _to_px_y(system: System, y: float) -> float:
    assert system.grid.height is not None
    return MARGIN_PX + (system.grid.height - y) * CELL_PX


def render_svg(
    system: System,
    show_routes: bool = True,
    show_safety_margin: bool = True,
    title: Optional[str] = None,
) -> str:
    """Render the current state as an SVG document string."""
    grid = system.grid
    assert grid.height is not None
    width_px = 2 * MARGIN_PX + grid.width * CELL_PX
    height_px = 2 * MARGIN_PX + grid.height * CELL_PX
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" '
        f'height="{height_px}" viewBox="0 0 {width_px} {height_px}">',
        f'<rect width="{width_px}" height="{height_px}" fill="#fafafa"/>',
    ]
    if title:
        parts.append(
            f'<text x="{MARGIN_PX}" y="18" style="{_STYLE["label"]}">'
            f"{title}</text>"
        )

    for cid in grid.cells():
        x_px = _to_px_x(system, cid[0])
        y_px = _to_px_y(system, cid[1] + 1)
        parts.append(
            f'<rect x="{x_px:.1f}" y="{y_px:.1f}" width="{CELL_PX}" '
            f'height="{CELL_PX}" style="{_cell_style(system, cid)}"/>'
        )
        parts.append(
            f'<text x="{x_px + 3:.1f}" y="{y_px + 12:.1f}" '
            f'style="{_STYLE["label"]}">{cid[0]},{cid[1]}</text>'
        )

    if show_routes:
        for cid, state in system.cells.items():
            if state.failed or state.next_id is None:
                continue
            x0 = _to_px_x(system, cid[0] + 0.5)
            y0 = _to_px_y(system, cid[1] + 0.5)
            dx = (state.next_id[0] - cid[0]) * 0.3 * CELL_PX
            dy = -(state.next_id[1] - cid[1]) * 0.3 * CELL_PX
            parts.append(
                f'<line x1="{x0:.1f}" y1="{y0:.1f}" x2="{x0 + dx:.1f}" '
                f'y2="{y0 + dy:.1f}" style="{_STYLE["arrow"]}"/>'
            )
            # Arrowhead: a small square at the tip keeps the markup simple.
            parts.append(
                f'<rect x="{x0 + dx - 2:.1f}" y="{y0 + dy - 2:.1f}" width="4" '
                f'height="4" style="{_STYLE["arrow"]}"/>'
            )

    half_l = system.params.half_l
    half_d = system.params.d / 2.0
    for state in system.cells.values():
        for entity in state.entities():
            ex = _to_px_x(system, entity.x - half_l)
            ey = _to_px_y(system, entity.y + half_l)
            side = system.params.l * CELL_PX
            parts.append(
                f'<rect x="{ex:.1f}" y="{ey:.1f}" width="{side:.1f}" '
                f'height="{side:.1f}" style="{_STYLE["entity"]}"/>'
            )
            if show_safety_margin:
                sx = _to_px_x(system, entity.x - half_d)
                sy = _to_px_y(system, entity.y + half_d)
                sside = system.params.d * CELL_PX
                parts.append(
                    f'<rect x="{sx:.1f}" y="{sy:.1f}" width="{sside:.1f}" '
                    f'height="{sside:.1f}" style="{_STYLE["safety"]}"/>'
                )

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(system: System, path, **kwargs) -> Path:
    """Render and write an SVG file; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_svg(system, **kwargs))
    return target
