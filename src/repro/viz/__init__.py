"""Visualization: ASCII and SVG rendering of system states."""

from repro.viz.render import render_grid, render_routes
from repro.viz.svg import render_svg, save_svg

__all__ = ["render_grid", "render_routes", "render_svg", "save_svg"]
