"""ASCII rendering of ``System`` states.

``render_grid`` draws one character cell per lattice cell: the target,
sources, failures, and entity counts at a glance. ``render_routes`` draws
each cell's ``next`` pointer as an arrow — the quickest way to see the
routing tree (and to watch it re-form after failures).
"""

from __future__ import annotations

from typing import List

from repro.core.system import System
from repro.grid.topology import CellId


def _cell_glyph(system: System, cid: CellId) -> str:
    state = system.cells[cid]
    if state.failed:
        return "XX"
    if cid == system.tid:
        return "TT"
    count = len(state.members)
    if cid in system.sources:
        return f"S{count}" if count < 10 else "S+"
    if count == 0:
        return ".."
    return f"{count:2d}" if count < 100 else "++"


def render_grid(system: System) -> str:
    """Top row = highest j (north up), matching the paper's Figure 1."""
    assert system.grid.height is not None
    lines: List[str] = []
    for j in range(system.grid.height - 1, -1, -1):
        row = [_cell_glyph(system, (i, j)) for i in range(system.grid.width)]
        lines.append(f"{j:2d} |" + " ".join(row))
    lines.append("    " + "-" * (3 * system.grid.width - 1))
    lines.append("    " + " ".join(f"{i:2d}" for i in range(system.grid.width)))
    legend = "TT=target  Sn=source(n entities)  XX=failed  ..=empty  n=entities"
    return "\n".join(lines + [legend])


_ARROWS = {(1, 0): ">", (-1, 0): "<", (0, 1): "^", (0, -1): "v"}


def _route_glyph(system: System, cid: CellId) -> str:
    state = system.cells[cid]
    if state.failed:
        return "X"
    if cid == system.tid:
        return "T"
    if state.next_id is None:
        return "."
    delta = (state.next_id[0] - cid[0], state.next_id[1] - cid[1])
    return _ARROWS.get(delta, "?")


def render_routes(system: System) -> str:
    """Arrow field of the ``next`` pointers (T=target, X=failed, .=no route)."""
    assert system.grid.height is not None
    lines: List[str] = []
    for j in range(system.grid.height - 1, -1, -1):
        lines.append(
            f"{j:2d} |"
            + " ".join(_route_glyph(system, (i, j)) for i in range(system.grid.width))
        )
    lines.append("    " + "-" * (2 * system.grid.width - 1))
    lines.append("    " + " ".join(str(i % 10) for i in range(system.grid.width)))
    return "\n".join(lines)
