"""Process entry point for shard workers (``python -m repro.shard._worker_main``).

A separate module so the runnable entry is never also imported as a
library module (importing :mod:`repro.shard.worker` is triggered by the
``repro`` package graph itself, and running an already-imported module
with ``-m`` would execute it twice and warn).
"""

import sys

if __name__ == "__main__":
    from repro.shard.worker import main

    sys.exit(main(sys.argv))
