"""The ``sharded`` round engine: the district fleet behind ``Simulator``.

Selectable like any engine (``SimulationConfig.engine="sharded"``, CLI
``--engine sharded``, or ``REPRO_ENGINE=sharded``); the shard count
comes from ``SimulationConfig.shards``, then ``REPRO_SHARDS``, then a
default of 2. Construction is cheap — worker processes spawn lazily on
the first :meth:`step` and are shut down by :meth:`close` (wired into
``Simulator.summarize``); stepping again after a close redeploys the
fleet from the current authoritative state.

Tuning attributes (set before the first step; the chaos tests use them):
``retry`` / ``round_timeout`` / ``init_timeout`` / ``heal_delay`` /
``respawn_budget`` / ``horizon`` / ``sleep`` / ``chaos``. Environment
overrides: ``REPRO_SHARDS``, ``REPRO_SHARD_PARTITION`` (``rows`` or
``quadrants``), ``REPRO_SHARD_TIMEOUT``, ``REPRO_SHARD_HEAL_DELAY``,
``REPRO_SHARD_RESPAWNS``.

The engine refuses the ``random`` token policy: that policy draws every
cell's token choice from one shared RNG stream in global sweep order,
which cannot be split across district processes without reordering the
stream. ``roundrobin`` and ``sticky`` are stateless per cell and shard
cleanly.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional

from repro.core.policies import RandomTokenPolicy
from repro.core.system import RoundReport, System
from repro.shard.coordinator import ShardCoordinator
from repro.shard.partition import PARTITION_STRATEGIES, make_plan
from repro.sim.engine import RoundEngine
from repro.sim.supervisor import RetryPolicy

ENV_SHARDS = "REPRO_SHARDS"
ENV_PARTITION = "REPRO_SHARD_PARTITION"
ENV_TIMEOUT = "REPRO_SHARD_TIMEOUT"
ENV_HEAL_DELAY = "REPRO_SHARD_HEAL_DELAY"
ENV_RESPAWNS = "REPRO_SHARD_RESPAWNS"

DEFAULT_SHARDS = 2


class ShardedEngine(RoundEngine):
    """Partitioned execution: one worker process per district (see
    :mod:`repro.shard.coordinator` for the round protocol)."""

    name = "sharded"

    def __init__(self, system: System, config=None):
        super().__init__(system, config)
        if isinstance(system.token_policy, RandomTokenPolicy):
            raise ValueError(
                "the sharded engine cannot run the 'random' token policy: "
                "it consumes one shared RNG stream in global sweep order, "
                "which cannot be split across district processes; use "
                "'roundrobin' or 'sticky'"
            )
        configured = getattr(config, "shards", None)
        if configured is not None:
            self.shards = configured
        else:
            self.shards = int(os.environ.get(ENV_SHARDS, DEFAULT_SHARDS))
        if self.shards < 1:
            raise ValueError(f"shard count must be >= 1, got {self.shards}")
        self.partition = os.environ.get(ENV_PARTITION, "rows")
        if self.partition not in PARTITION_STRATEGIES:
            raise ValueError(
                f"unknown partition strategy {self.partition!r}; available: "
                f"{sorted(PARTITION_STRATEGIES)}"
            )
        # Fleet tuning; all adjustable until the first step().
        self.retry = RetryPolicy(max_retries=2, backoff_base=0.05, backoff_cap=1.0)
        self.round_timeout: Optional[float] = float(
            os.environ.get(ENV_TIMEOUT, 30.0)
        )
        self.init_timeout: Optional[float] = 120.0
        self.heal_delay = int(os.environ.get(ENV_HEAL_DELAY, 2))
        self.respawn_budget = int(os.environ.get(ENV_RESPAWNS, 2))
        self.horizon: Optional[int] = None
        self.sleep = time.sleep
        self.chaos: Dict[int, Dict[str, Any]] = {}
        self._coordinator: Optional[ShardCoordinator] = None

    @property
    def coordinator(self) -> ShardCoordinator:
        if self._coordinator is None:
            plan = make_plan(self.system.grid, self.shards, self.partition)
            self._coordinator = ShardCoordinator(
                self.system,
                plan,
                retry=self.retry,
                timeout=self.round_timeout,
                init_timeout=self.init_timeout,
                heal_delay=self.heal_delay,
                respawn_budget=self.respawn_budget,
                horizon=self.horizon,
                sleep=self.sleep,
                metrics=self.metrics,
                chaos=self.chaos,
            )
        return self._coordinator

    def step(self) -> RoundReport:
        return self.coordinator.step()

    def close(self) -> None:
        if self._coordinator is not None:
            self._coordinator.close()

    @property
    def degraded(self) -> bool:
        """True once any shard exhausted its respawn budget."""
        return self._coordinator.degraded if self._coordinator else False

    @property
    def healing_log(self):
        """The coordinator's structured death/heal/stabilize history."""
        return self._coordinator.healing_log if self._coordinator else []

    def healing_events_since(self, cursor: int):
        """Healing-log entries appended at or after ``cursor``.

        Returns ``(entries, new_cursor)``. The incremental read a
        long-running consumer needs: ``repro serve`` keeps the cursor and
        forwards each new death/heal/stabilize entry as a
        ``service.heal`` event the round it appears, instead of
        re-scanning (or copying) an ever-growing log.
        """
        log = self.healing_log
        return log[cursor:], len(log)

    def __del__(self):  # best-effort: never leak worker processes
        try:
            self.close()
        except Exception:
            pass
