"""The shard coordinator: authoritative state, merge, and healing.

The coordinator owns the **authoritative** :class:`~repro.core.system.System`
— the same object monitors, metrics, traces and the lockstep harness
observe — and drives one round as three exchanges with the shard fleet:

1. **route**: ship each live shard its rim's pre-round effective dists
   (plus any fail/recover events and membership resyncs for its own
   cells); each worker sweeps Route over its district and returns the
   per-cell results. The coordinator sorts the merged results into
   global row-major order and applies them — producing the exact
   ``RoutePhaseReport`` the reference sweep would.
2. **signal**: ship post-Route rim ``(next, nonempty)`` ghosts; workers
   run Signal over their districts (mutating their own token/signal
   state with the identical rules) and return value updates plus their
   slice of the grant report; again merged row-major.
3. Move runs **coordinator-side** (``apply_moves`` on the movers derived
   from the merged grant report, exactly like the incremental engine),
   as does source production — one global RNG stream, unsplittable.
   A **commit** message then replays each district's slice of the
   outcome (translations, transfers, produced entities) on its worker.

Because every phase merge is applied to the authoritative state in the
reference's own order by the reference's own rules, the round is
byte-identical to the reference engine for *any* shard count — the
property ``tests/test_shard_engine.py`` proves over the 26-seed faulting
matrix.

**Healing.** A shard that dies mid-round (worker exit, heartbeat
timeout, unrecoverable channel corruption) does not corrupt the round:
the coordinator finishes the missing phases *locally* with the same pure
district functions (:mod:`repro.shard.worker`) over authoritative state,
so the death round itself is state-identical to a run without the death.
The fault semantics land at the next round boundary — a legal
environment-transition point, the same place the fault injector acts:
every cell of the dead district is ``fail()``-ed, neighbors observe the
crash through the standard masking and re-route around it (Lemma 6),
and after ``heal_delay`` rounds the shard is respawned from an
authoritative snapshot, its cells recovered, and re-stabilization is
watched against the ``O(h)`` horizon. When the respawn budget is
exhausted the shard degrades permanently: its district stays failed and
the coordinator simulates any recovered stragglers inline, the run
completes, and the engine reports ``degraded=True`` plus the full
healing log. See docs/sharding.md for the state machine.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import repro
from repro.core.cell import effective_dist, effective_next, effective_nonempty
from repro.core.move import MovePhaseReport, apply_moves
from repro.core.route import RoutePhaseReport
from repro.core.signal import SignalPhaseReport
from repro.core.system import RoundReport, System
from repro.grid.topology import CellId, direction_between
from repro.shard.channel import ChannelError, ShardChannel
from repro.shard.partition import ShardPlan
from repro.shard.worker import (
    apply_route_updates,
    apply_signal_updates,
    compute_route_updates,
    compute_signal_updates,
    entity_to_wire,
)
from repro.sim.supervisor import RetryPolicy


def _row_major(cid: CellId) -> Tuple[int, int]:
    return (cid[1], cid[0])


class _ShardHandle:
    """One shard's process, channel, and lifecycle bookkeeping."""

    __slots__ = (
        "shard_id",
        "district",
        "district_set",
        "rim",
        "status",
        "process",
        "channel",
        "pending_events",
        "pending_member_sync",
        "cells_failed",
        "failed_by_us",
        "respawn_round",
        "respawns_used",
        "watch_start",
    )

    def __init__(self, district, rim):
        self.shard_id: int = district.shard_id
        self.district: Tuple[CellId, ...] = district.cells
        self.district_set: Set[CellId] = set(district.cells)
        self.rim: Tuple[CellId, ...] = rim
        self.status: str = "live"  # live | dead | degraded
        self.process: Optional[subprocess.Popen] = None
        self.channel: Optional[ShardChannel] = None
        self.pending_events: List[Tuple[str, CellId]] = []
        self.pending_member_sync: Set[CellId] = set()
        self.cells_failed: bool = False
        self.failed_by_us: Set[CellId] = set()
        self.respawn_round: Optional[int] = None
        self.respawns_used: int = 0
        self.watch_start: Optional[int] = None


class ShardCoordinator:
    """Drives one sharded ``update`` per :meth:`step` (see module doc)."""

    def __init__(
        self,
        system: System,
        plan: ShardPlan,
        *,
        retry: Optional[RetryPolicy] = None,
        timeout: Optional[float] = 30.0,
        init_timeout: Optional[float] = 120.0,
        heal_delay: int = 2,
        respawn_budget: int = 2,
        horizon: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
        metrics=None,
        chaos: Optional[Dict[int, Dict[str, Any]]] = None,
    ):
        if heal_delay < 1:
            raise ValueError(f"heal_delay must be >= 1 round, got {heal_delay}")
        if respawn_budget < 0:
            raise ValueError(f"respawn_budget must be >= 0, got {respawn_budget}")
        self.system = system
        self.plan = plan
        self.retry = retry if retry is not None else RetryPolicy()
        self.timeout = timeout
        self.init_timeout = init_timeout
        self.heal_delay = heal_delay
        self.respawn_budget = respawn_budget
        #: Re-stabilization bound for the healing watch: Corollary 7's
        #: ``O(N^2)`` worst case (Lemma 6's ``O(h)`` with ``h <= N``).
        self.horizon = horizon if horizon is not None else system.grid.size + 2
        self.sleep = sleep
        self.metrics = metrics
        self.chaos = chaos or {}
        #: Structured healing history: death / district-failed / heal /
        #: stabilized / degraded entries, in order.
        self.healing_log: List[Dict[str, Any]] = []
        #: True once any shard exhausted its respawn budget.
        self.degraded = False
        self._handles = [
            _ShardHandle(district, plan.rim(district.shard_id))
            for district in plan.districts
        ]
        self._started = False
        self._chained_cell_observer = system.cell_observer
        system.cell_observer = self._on_cell_event

    # ------------------------------------------------------------------
    # Observer chaining: environment transitions feed live shards
    # ------------------------------------------------------------------

    def _on_cell_event(self, event: str, cid: CellId) -> None:
        if event == "relocate":
            # Target relocation changes every worker's routing anchor
            # (tid is part of the init payload, not a per-round message).
            # Redeploy the fleet: reap all workers now and respawn them
            # lazily from the authoritative post-relocation state at the
            # next step — the same snapshot path a heal uses. Fired twice
            # per relocation (old cell, then new cell); close() is
            # idempotent so the fleet restarts exactly once.
            if self._started:
                self.close()
                self._log(
                    {
                        "event": "relocated",
                        "round": self.system.round_index,
                        "cell": list(cid),
                    }
                )
            if self._chained_cell_observer is not None:
                self._chained_cell_observer(event, cid)
            return
        handle = self._handles[self.plan.owner(cid)]
        if handle.status == "live":
            if event == "members":
                handle.pending_member_sync.add(cid)
            else:  # fail / recover
                handle.pending_events.append((event, cid))
        if self._chained_cell_observer is not None:
            self._chained_cell_observer(event, cid)

    # ------------------------------------------------------------------
    # One round
    # ------------------------------------------------------------------

    def step(self) -> RoundReport:
        """Run one full round across the fleet; returns the merged report."""
        system = self.system
        self._ensure_started()
        self._begin_round()
        round_index = system.round_index
        route_report = self._route_phase(round_index)
        system._notify_phase("route")
        signal_report = self._signal_phase(round_index)
        system._notify_phase("signal")
        move_report, movers = self._move_phase(signal_report)
        system._notify_phase("move")
        system.total_consumed += len(move_report.consumed)
        produced = system._produce()
        system._notify_phase("produce")
        self._commit_phase(round_index, movers, move_report, produced)
        report = RoundReport(
            round_index=round_index,
            route=route_report,
            signal=signal_report,
            move=move_report,
            produced=produced,
        )
        system.round_index += 1
        self._watch_stabilization(round_index, route_report)
        return report

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _route_phase(self, round_index: int) -> RoutePhaseReport:
        system = self.system
        cells = system.cells
        # Pre-round snapshot: messages AND local fallbacks read it, so a
        # mid-phase death cannot leak post-round dists into the round.
        dist_view = {cid: effective_dist(state) for cid, state in cells.items()}

        def payload(handle: _ShardHandle) -> Dict[str, Any]:
            events, handle.pending_events = handle.pending_events, []
            sync, handle.pending_member_sync = handle.pending_member_sync, set()
            return {
                "round": round_index,
                "events": events,
                "member_sync": {
                    cid: [
                        entity_to_wire(cells[cid].members[uid])
                        for uid in sorted(cells[cid].members)
                    ]
                    for cid in sync
                },
                "ghosts": {cid: dist_view[cid] for cid in handle.rim},
            }

        results = self._gather("route", payload)
        merged: List[Tuple[CellId, int, Optional[CellId]]] = []
        for handle in self._handles:
            wire = results.get(handle.shard_id)
            if wire is not None:
                merged.extend(wire["updates"])
            else:
                # Dead/degraded shard (or one that died this phase): the
                # coordinator stands in with the same pure district sweep
                # over authoritative state.
                handle.pending_events = []
                handle.pending_member_sync = set()
                merged.extend(
                    compute_route_updates(
                        system.grid, cells, system.tid, handle.district, dist_view
                    )
                )
        merged.sort(key=lambda update: _row_major(update[0]))
        report = RoutePhaseReport()
        apply_route_updates(cells, merged, report)
        return report

    def _signal_phase(self, round_index: int) -> SignalPhaseReport:
        system = self.system
        cells = system.cells

        def payload(handle: _ShardHandle) -> Dict[str, Any]:
            return {
                "round": round_index,
                "ghosts": {
                    cid: (effective_next(cells[cid]), effective_nonempty(cells[cid]))
                    for cid in handle.rim
                },
            }

        results = self._gather("signal", payload)
        wires: List[Dict[str, Any]] = []
        for handle in self._handles:
            wire = results.get(handle.shard_id)
            if wire is None:
                # Fallback mutates the authoritative cells directly with
                # the reference rules; its wire output joins the merge
                # like any worker's (re-assignment is idempotent).
                wire = compute_signal_updates(
                    system.grid,
                    cells,
                    system.params,
                    system.token_policy,
                    handle.district,
                    lambda c: effective_next(cells[c]),
                    lambda c: effective_nonempty(cells[c]),
                )
            wires.append(wire)
        updates = sorted(
            (update for wire in wires for update in wire["updates"]),
            key=lambda update: _row_major(update[0]),
        )
        apply_signal_updates(cells, updates)
        report = SignalPhaseReport()
        for granter, grantee in sorted(
            (pair for wire in wires for pair in wire["granted"]),
            key=lambda pair: _row_major(pair[0]),
        ):
            report.granted[granter] = grantee
        report.blocked = sorted(
            (cid for wire in wires for cid in wire["blocked"]), key=_row_major
        )
        report.rotated = sorted(
            (entry for wire in wires for entry in wire["rotated"]),
            key=lambda entry: _row_major(entry[0]),
        )
        return report

    def _move_phase(
        self, signal_report: SignalPhaseReport
    ) -> Tuple[MovePhaseReport, List[Tuple[CellId, CellId]]]:
        """Move on the authoritative state, derived from the grant report
        exactly like the incremental engine (PR 4 proved the derivation
        equivalent to the reference's ``effective_signal`` scan)."""
        system = self.system
        movers = sorted(
            ((grantee, granter) for granter, grantee in signal_report.granted.items()),
            key=lambda pair: _row_major(pair[0]),
        )
        report = apply_moves(
            system.grid, system.cells, system.params, system.tid, movers
        )
        return report, movers

    def _commit_phase(
        self,
        round_index: int,
        movers: Sequence[Tuple[CellId, CellId]],
        move_report: MovePhaseReport,
        produced,
    ) -> None:
        system = self.system
        removed_by_src: Dict[CellId, List[int]] = {}
        for transfer in move_report.transfers:
            removed_by_src.setdefault(transfer.src, []).append(transfer.uid)
        mover_wire = [
            (cid, direction_between(cid, nxt), removed_by_src.get(cid, []))
            for cid, nxt in movers
        ]
        incoming = [
            (t.dst, entity_to_wire(system.cells[t.dst].members[t.uid]))
            for t in move_report.transfers
            if not t.consumed
        ]
        # A produced entity's cell is the floor of its center (sources
        # insert strictly inside their own unit cell).
        produced_wire = [
            ((int(e.x), int(e.y)), entity_to_wire(e)) for e in produced
        ]

        def payload(handle: _ShardHandle) -> Dict[str, Any]:
            inside = handle.district_set
            return {
                "round": round_index,
                "movers": [m for m in mover_wire if m[0] in inside],
                "incoming": [x for x in incoming if x[0] in inside],
                "produced": [x for x in produced_wire if x[0] in inside],
            }

        self._gather("commit", payload)

    # ------------------------------------------------------------------
    # Fleet exchange
    # ------------------------------------------------------------------

    def _gather(
        self, kind: str, build_payload: Callable[[_ShardHandle], Dict[str, Any]]
    ) -> Dict[int, Dict[str, Any]]:
        """Post ``kind`` to every live shard, then collect the replies.

        A shard whose exchange fails is transitioned to ``dead`` (its
        process reaped, death scheduled for the next round boundary) and
        simply omitted from the result — the caller's fallback covers
        it. Posting everything before collecting anything lets district
        sweeps run concurrently.
        """
        results: Dict[int, Dict[str, Any]] = {}
        posted: List[_ShardHandle] = []
        for handle in self._handles:
            if handle.status != "live":
                continue
            try:
                assert handle.channel is not None
                handle.channel.post(kind, build_payload(handle))
                posted.append(handle)
            except ChannelError as exc:
                self._shard_failed(handle, kind, exc)
        for handle in posted:
            if handle.status != "live":
                continue
            try:
                assert handle.channel is not None
                results[handle.shard_id] = handle.channel.collect()
            except ChannelError as exc:
                self._shard_failed(handle, kind, exc)
        return results

    def _shard_failed(self, handle: _ShardHandle, phase: str, exc: ChannelError) -> None:
        """Mid-round shard death: reap now, apply fault semantics at the
        next round boundary (`_begin_round`)."""
        self._reap(handle)
        handle.status = "dead"
        handle.cells_failed = False
        handle.respawn_round = self.system.round_index + 1 + self.heal_delay
        self._count("shard.deaths")
        self._log(
            {
                "event": "death",
                "round": self.system.round_index,
                "shard": handle.shard_id,
                "phase": phase,
                "reason": type(exc).__name__,
                "detail": str(exc),
            }
        )

    # ------------------------------------------------------------------
    # Lifecycle: deaths, respawns, degradation, stabilization watch
    # ------------------------------------------------------------------

    def _begin_round(self) -> None:
        system = self.system
        round_index = system.round_index
        for handle in self._handles:
            if handle.status != "dead":
                continue
            if not handle.cells_failed:
                # The death's observable effect, at a legal environment-
                # transition point: the whole district crashes.
                handle.failed_by_us = set()
                for cid in handle.district:
                    if not system.cells[cid].failed:
                        system.fail(cid)
                        handle.failed_by_us.add(cid)
                handle.cells_failed = True
                self._log(
                    {
                        "event": "district-failed",
                        "round": round_index,
                        "shard": handle.shard_id,
                        "cells": len(handle.failed_by_us),
                    }
                )
            if handle.respawn_round is not None and round_index >= handle.respawn_round:
                if handle.respawns_used >= self.respawn_budget:
                    handle.status = "degraded"
                    self.degraded = True
                    self._log(
                        {
                            "event": "degraded",
                            "round": round_index,
                            "shard": handle.shard_id,
                            "respawns_used": handle.respawns_used,
                        }
                    )
                    continue
                handle.respawns_used += 1
                for cid in sorted(handle.failed_by_us, key=_row_major):
                    system.recover(cid)
                handle.failed_by_us = set()
                try:
                    self._spawn(handle)
                except ChannelError as exc:
                    self._shard_failed(handle, "init", exc)
                    continue
                handle.status = "live"
                handle.watch_start = round_index
                self._count("shard.heals")
                self._log(
                    {
                        "event": "heal",
                        "round": round_index,
                        "shard": handle.shard_id,
                        "respawns_used": handle.respawns_used,
                    }
                )

    def _watch_stabilization(
        self, round_index: int, route_report: RoutePhaseReport
    ) -> None:
        for handle in self._handles:
            if handle.watch_start is None:
                continue
            rounds = round_index - handle.watch_start
            if route_report.quiescent:
                self._observe("shard.respawn_rounds", rounds)
                self._log(
                    {
                        "event": "stabilized",
                        "round": round_index,
                        "shard": handle.shard_id,
                        "rounds": rounds,
                        "horizon": self.horizon,
                        "within_horizon": rounds <= self.horizon,
                    }
                )
                handle.watch_start = None
            elif rounds > self.horizon:
                self._log(
                    {
                        "event": "stabilization-overdue",
                        "round": round_index,
                        "shard": handle.shard_id,
                        "rounds": rounds,
                        "horizon": self.horizon,
                    }
                )
                handle.watch_start = None

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------

    def _ensure_started(self) -> None:
        if self._started:
            return
        self._started = True
        for handle in self._handles:
            if handle.status == "live" and handle.channel is None:
                self._spawn(handle)

    def _spawn(self, handle: _ShardHandle) -> None:
        system = self.system
        parent_sock, child_sock = socket.socketpair()
        try:
            child_fd = child_sock.fileno()
            handle.process = subprocess.Popen(
                [sys.executable, "-m", "repro.shard._worker_main", str(child_fd)],
                pass_fds=(child_fd,),
                env=self._child_env(),
                close_fds=True,
            )
        finally:
            child_sock.close()
        from multiprocessing.connection import Connection

        conn = Connection(parent_sock.detach())
        handle.channel = ShardChannel(
            conn,
            handle.shard_id,
            retry=self.retry,
            timeout=self.timeout,
            sleep=self.sleep,
            metrics=self.metrics,
        )
        init = {
            "width": system.grid.width,
            "height": system.grid.height,
            "tid": system.tid,
            "params": system.params,
            "policy": system.token_policy.clone(),
            "district": list(handle.district),
            "cells": {
                cid: system.cells[cid].clone() for cid in handle.district
            },
            "chaos": self.chaos.get(handle.shard_id),
        }
        handle.channel.request("init", init, timeout=self.init_timeout)

    def _child_env(self) -> Dict[str, str]:
        """Child environment with the package root on PYTHONPATH, so the
        ``-m repro.shard._worker_main`` entry imports regardless of how
        the coordinator process itself found the package."""
        env = dict(os.environ)
        pkg_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH", "")
        if pkg_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                pkg_root + os.pathsep + existing if existing else pkg_root
            )
        return env

    def _reap(self, handle: _ShardHandle) -> None:
        if handle.channel is not None:
            handle.channel.close()
            handle.channel = None
        process, handle.process = handle.process, None
        if process is not None and process.poll() is None:
            process.kill()
            try:
                process.wait(timeout=5)
            except (subprocess.TimeoutExpired, OSError):
                pass

    def close(self) -> None:
        """Shut the fleet down (idempotent). A later :meth:`step` redeploys
        live shards from the current authoritative state."""
        for handle in self._handles:
            self._reap(handle)
        self._started = False

    # ------------------------------------------------------------------
    # Audit (tests): compare worker mirrors against authoritative state
    # ------------------------------------------------------------------

    def audit(self) -> Dict[int, bool]:
        """Ask each live worker for its district digest and compare it to
        the authoritative state; returns shard_id -> in_sync."""
        from repro.shard.worker import district_digest

        verdicts: Dict[int, bool] = {}
        for handle in self._handles:
            if handle.status != "live" or handle.channel is None:
                continue
            reply = handle.channel.request("audit", {})
            expected = district_digest(self.system.cells, handle.district)
            verdicts[handle.shard_id] = reply["digest"] == expected
        return verdicts

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _log(self, entry: Dict[str, Any]) -> None:
        self.healing_log.append(entry)

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _observe(self, name: str, value) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value)
