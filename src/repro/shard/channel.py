"""The coordinator side of the shard message channel.

One :class:`ShardChannel` wraps the coordinator's end of a worker's
socketpair (framed/pickled by ``multiprocessing.connection.Connection``)
and implements the request/reply discipline every phase exchange uses:

* **Sequence numbers.** Every request carries a monotonically increasing
  ``seq``; the worker echoes it on the reply and caches its last reply,
  so a retransmitted request is answered from the cache without
  recomputing (re-running a phase would double-apply worker-local
  state). Replies with a stale ``seq`` — the late original racing its
  own retransmit — are drained silently.

* **Bounded retry with deterministic backoff.** Timeouts and garbled
  replies trigger a resend, paced by the same
  :class:`~repro.sim.supervisor.RetryPolicy` the sweep supervisor uses.
  The sleep function is injectable so retry tests run instantly.

* **Structured errors instead of hangs.** Every failure mode surfaces
  as a :class:`ChannelError` subclass carrying the shard id: the
  coordinator turns these into shard-death handling (district failed,
  heal, respawn — see :mod:`repro.shard.coordinator`), never a stuck
  round loop.
"""

from __future__ import annotations

import pickle
import time
from typing import Any, Callable, Dict, Optional

from repro.sim.supervisor import RetryPolicy


class ChannelError(RuntimeError):
    """Base class: a shard channel exchange failed permanently."""

    def __init__(self, shard_id: int, detail: str):
        super().__init__(f"shard {shard_id}: {detail}")
        self.shard_id = shard_id
        self.detail = detail


class ChannelClosed(ChannelError):
    """The worker's end of the pipe is gone (process exit / SIGKILL)."""


class ChannelTimeout(ChannelError):
    """No reply within the timeout across every retry attempt."""


class SequenceError(ChannelError):
    """Replies arrived but never matched the request's sequence number
    (torn/garbled frames), across every retry attempt."""


_TIMEOUT = object()
_GARBLED = object()


class ShardChannel:
    """Request/reply endpoint over one worker connection.

    Parameters
    ----------
    conn:
        A ``multiprocessing.connection.Connection`` (the coordinator's
        socketpair end).
    shard_id:
        Carried on every :class:`ChannelError` for diagnosis.
    retry:
        :class:`RetryPolicy` bounding resends; defaults to the policy's
        defaults (2 retries, exponential backoff).
    timeout:
        Seconds to wait for each reply attempt. ``None`` waits forever
        (only sensible in tests).
    sleep:
        Injectable sleep for backoff pacing (default ``time.sleep``).
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry`; counts
        ``channel.retries`` / ``channel.timeouts``. Lazily created, so
        a clean run adds no metric keys.
    """

    def __init__(
        self,
        conn,
        shard_id: int = 0,
        *,
        retry: Optional[RetryPolicy] = None,
        timeout: Optional[float] = 30.0,
        sleep: Callable[[float], None] = time.sleep,
        metrics=None,
    ):
        self.conn = conn
        self.shard_id = shard_id
        self.retry = retry if retry is not None else RetryPolicy()
        self.timeout = timeout
        self.sleep = sleep
        self.metrics = metrics
        self._seq = 0
        self._pending: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # Request/reply
    # ------------------------------------------------------------------

    def request(
        self, kind: str, payload: Dict[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Send one request and await its reply (post + collect)."""
        self.post(kind, payload)
        return self.collect(timeout=timeout)

    def post(self, kind: str, payload: Dict[str, Any]) -> None:
        """Send a request without waiting; :meth:`collect` gets the reply.

        Splitting the round trip lets the coordinator post one phase
        request to every live shard before collecting any reply, so the
        district sweeps run concurrently.
        """
        self._seq += 1
        self._pending = {"seq": self._seq, "kind": kind, "payload": payload}
        self._send(self._pending)

    def collect(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Await the posted request's reply, retrying within the policy."""
        if self._pending is None:
            raise RuntimeError("collect() without a posted request")
        effective_timeout = self.timeout if timeout is None else timeout
        failures = 0
        while True:
            outcome = self._await_reply(effective_timeout)
            if outcome is not _TIMEOUT and outcome is not _GARBLED:
                self._pending = None
                return outcome
            if outcome is _TIMEOUT:
                self._count("channel.timeouts")
            failures += 1
            if failures > self.retry.max_retries:
                self._pending = None
                if outcome is _TIMEOUT:
                    raise ChannelTimeout(
                        self.shard_id,
                        f"no reply to seq {self._seq} within "
                        f"{effective_timeout}s after "
                        f"{self.retry.max_attempts} attempts",
                    )
                raise SequenceError(
                    self.shard_id,
                    f"no well-formed reply to seq {self._seq} after "
                    f"{self.retry.max_attempts} attempts",
                )
            self._count("channel.retries")
            self.sleep(self.retry.backoff(failures))
            self._send(self._pending)

    def close(self) -> None:
        """Close the underlying connection (idempotent, EBADF-tolerant)."""
        try:
            self.conn.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _send(self, message: Dict[str, Any]) -> None:
        try:
            self.conn.send(message)
        except (BrokenPipeError, ConnectionResetError, OSError, ValueError) as exc:
            raise ChannelClosed(self.shard_id, f"send failed: {exc!r}")

    def _await_reply(self, timeout: Optional[float]):
        """One attempt: the matching reply, ``_TIMEOUT``, or ``_GARBLED``.

        Stale replies (seq below the pending request's — a late original
        overtaken by its retransmit) are drained without consuming the
        attempt; anything malformed or from the future is garbled.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            try:
                if not self.conn.poll(remaining):
                    return _TIMEOUT
                reply = self.conn.recv()
            except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
                raise ChannelClosed(self.shard_id, f"worker hung up: {exc!r}")
            except pickle.UnpicklingError:
                return _GARBLED
            if (
                not isinstance(reply, dict)
                or "payload" not in reply
                or not isinstance(reply.get("seq"), int)
            ):
                return _GARBLED
            if reply["seq"] == self._seq:
                return reply["payload"]
            if reply["seq"] < self._seq:
                continue  # stale duplicate: drain and keep waiting
            return _GARBLED  # a future seq means framing corruption
