"""Partitioning the grid into contiguous districts (one per shard).

A *district* is a contiguous set of cells executed by one worker process;
a :class:`ShardPlan` is a validated full partition of the grid into
districts plus the derived adjacency structure the coordinator needs:

``boundary(s)``
    the district's cells that have at least one neighbor owned by a
    different shard — the cells whose shared variables other shards
    must observe.

``rim(s)``
    the cells *outside* the district adjacent to it — the "ghost" cells
    whose effective ``dist`` / ``next`` / membership the coordinator
    sends to shard ``s`` every round so its district sweeps read exactly
    the neighbor values the reference engine would.

Two partitioners are provided: ``row_bands`` (horizontal bands of whole
rows, any shard count up to the grid height) and ``quadrants`` (the
four blocks around the grid center, fixed at 4 shards). Both produce
districts in row-major cell order, matching ``Grid.cells()`` iteration
— the order every merge step sorts back into (see docs/sharding.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.grid.topology import CellId, Grid


@dataclass(frozen=True)
class District:
    """One shard's cells, in row-major order."""

    shard_id: int
    cells: Tuple[CellId, ...]


class ShardPlan:
    """A validated partition of a grid into contiguous districts."""

    def __init__(self, grid: Grid, districts: Sequence[District]):
        self.grid = grid
        self.districts: Tuple[District, ...] = tuple(districts)
        self._validate()
        self._owner: Dict[CellId, int] = {
            cid: district.shard_id
            for district in self.districts
            for cid in district.cells
        }
        self._boundary: Dict[int, Tuple[CellId, ...]] = {}
        self._rim: Dict[int, Tuple[CellId, ...]] = {}
        for district in self.districts:
            member = set(district.cells)
            boundary: List[CellId] = []
            rim_set = set()
            for cid in district.cells:
                outside = [n for n in grid.neighbors(cid) if n not in member]
                if outside:
                    boundary.append(cid)
                    rim_set.update(outside)
            sid = district.shard_id
            self._boundary[sid] = tuple(boundary)
            self._rim[sid] = tuple(sorted(rim_set, key=lambda c: (c[1], c[0])))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.districts)

    def district(self, shard_id: int) -> District:
        """The district owned by ``shard_id``."""
        return self.districts[shard_id]

    def owner(self, cid: CellId) -> int:
        """The shard id owning ``cid``."""
        return self._owner[cid]

    def boundary(self, shard_id: int) -> Tuple[CellId, ...]:
        """District cells with at least one neighbor in another district."""
        return self._boundary[shard_id]

    def rim(self, shard_id: int) -> Tuple[CellId, ...]:
        """Ghost cells: out-of-district neighbors of the district."""
        return self._rim[shard_id]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        if not self.districts:
            raise ValueError("a shard plan needs at least one district")
        for index, district in enumerate(self.districts):
            if district.shard_id != index:
                raise ValueError(
                    f"district shard_ids must be consecutive from 0; "
                    f"position {index} holds shard_id {district.shard_id}"
                )
            if not district.cells:
                raise ValueError(f"district {index} is empty")
        seen: Dict[CellId, int] = {}
        for district in self.districts:
            for cid in district.cells:
                self.grid.require(cid)
                if cid in seen:
                    raise ValueError(
                        f"cell {cid} assigned to both shard {seen[cid]} "
                        f"and shard {district.shard_id}"
                    )
                seen[cid] = district.shard_id
        if len(seen) != self.grid.size:
            missing = [c for c in self.grid.cells() if c not in seen]
            raise ValueError(
                f"partition does not cover the grid; {len(missing)} cells "
                f"unassigned (first: {missing[0]})"
            )
        for district in self.districts:
            if not _connected(self.grid, district.cells):
                raise ValueError(
                    f"district {district.shard_id} is not contiguous"
                )


def _connected(grid: Grid, cells: Sequence[CellId]) -> bool:
    """Is the cell set 4-connected? (BFS within the set.)"""
    member = set(cells)
    frontier = [cells[0]]
    reached = {cells[0]}
    while frontier:
        cid = frontier.pop()
        for nbr in grid.neighbors(cid):
            if nbr in member and nbr not in reached:
                reached.add(nbr)
                frontier.append(nbr)
    return len(reached) == len(member)


def row_bands(grid: Grid, shards: int) -> ShardPlan:
    """Split the grid into ``shards`` horizontal bands of whole rows.

    Band heights differ by at most one row (the first ``height % shards``
    bands take the extra row). Whole-row bands are always contiguous and
    minimize the boundary for wide grids.
    """
    height = grid.height
    assert height is not None
    if not 1 <= shards <= height:
        raise ValueError(
            f"row-band partition needs 1 <= shards <= grid height "
            f"({height}), got {shards}"
        )
    base, extra = divmod(height, shards)
    districts: List[District] = []
    row = 0
    for sid in range(shards):
        rows = base + (1 if sid < extra else 0)
        cells = tuple(
            (i, j)
            for j in range(row, row + rows)
            for i in range(grid.width)
        )
        districts.append(District(shard_id=sid, cells=cells))
        row += rows
    return ShardPlan(grid, districts)


def quadrants(grid: Grid) -> ShardPlan:
    """Split the grid into four blocks around its center (4 shards).

    Quadrant districts are *not* contiguous runs of row-major order —
    the coordinator's global sort is what restores reference report
    ordering — which makes this partitioner the adversarial fixture for
    the shard-count-invariance harness.
    """
    height = grid.height
    assert height is not None
    if grid.width < 2 or height < 2:
        raise ValueError(
            f"quadrant partition needs at least a 2x2 grid, got "
            f"{grid.width}x{height}"
        )
    mid_i = grid.width // 2
    mid_j = height // 2
    spans = [
        (range(0, mid_i), range(0, mid_j)),
        (range(mid_i, grid.width), range(0, mid_j)),
        (range(0, mid_i), range(mid_j, height)),
        (range(mid_i, grid.width), range(mid_j, height)),
    ]
    districts = [
        District(
            shard_id=sid,
            cells=tuple((i, j) for j in js for i in is_),
        )
        for sid, (is_, js) in enumerate(spans)
    ]
    return ShardPlan(grid, districts)


#: Selectable partition strategies (name -> short description); the
#: concrete entry points are :func:`row_bands` / :func:`quadrants`.
PARTITION_STRATEGIES = {
    "rows": "horizontal bands of whole rows (any shard count <= height)",
    "quadrants": "four blocks around the grid center (exactly 4 shards)",
}


def make_plan(grid: Grid, shards: int, strategy: str = "rows") -> ShardPlan:
    """Build a plan for ``shards`` districts using the named strategy."""
    if strategy == "rows":
        return row_bands(grid, shards)
    if strategy == "quadrants":
        if shards != 4:
            raise ValueError(
                f"the quadrant strategy is fixed at 4 shards, got {shards}"
            )
        return quadrants(grid)
    raise ValueError(
        f"unknown partition strategy {strategy!r}; available: "
        f"{sorted(PARTITION_STRATEGIES)}"
    )
