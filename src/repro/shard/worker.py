"""Shard worker: one contiguous district of the grid in its own process.

The worker holds the :class:`~repro.core.cell.CellState` of its district
cells (entities included) and executes the heavy per-cell sweeps — Route
and Signal — over them each round, reading out-of-district neighbors
through per-round *ghost* values the coordinator sends (effective
``dist`` for Route; effective ``next``/nonemptiness for Signal). Move is
computed by the coordinator from the merged grant report; the worker
replays its district's slice of the outcome (translations, boundary
transfers, produced entities) from the commit message, using the same
IEEE float operations, so its mirror stays bitwise identical to the
coordinator's authoritative state.

The district computations live here as **pure module functions**
(:func:`compute_route_updates`, :func:`compute_signal_updates`,
:func:`apply_route_updates`, :func:`apply_commit`) shared by the worker
*and* the coordinator's local-fallback path: when a shard dies mid-round
the coordinator finishes the round by running exactly these functions
over its authoritative state, which is why a death round is
state-identical to a run without the death (docs/sharding.md).

Process protocol (``python -m repro.shard._worker_main <fd>``): a pickle-framed
request loop over an inherited socketpair fd. Every request carries a
``seq``; the worker caches its last reply and answers a retransmitted
``seq`` from the cache without recomputing. An ``init`` request delivers
the district snapshot; ``route``/``signal``/``commit`` drive the round
phases; ``audit`` returns a canonical digest (tests); EOF means the
coordinator is gone and the worker exits. Keep this module's import
graph lean (``repro.core`` + grid only): worker startup cost is paid on
every (re)spawn.
"""

from __future__ import annotations

import os
import signal as _signal
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.cell import (
    CellState,
    dist_from_int,
    dist_to_int,
    effective_dist,
    effective_next,
    effective_nonempty,
)
from repro.core.entity import Entity
from repro.core.params import Parameters
from repro.core.route import RoutePhaseReport, _route_step
from repro.core.signal import SignalPhaseReport, _signal_step
from repro.core.policies import TokenPolicy
from repro.grid.topology import CellId, Direction, Grid

# ---------------------------------------------------------------------------
# Wire helpers
# ---------------------------------------------------------------------------


def entity_to_wire(entity: Entity) -> Tuple[int, float, float, int, float]:
    """Flatten an entity to the picklable boundary-message tuple."""
    return (entity.uid, entity.x, entity.y, entity.birth_round, entity.side)


def entity_from_wire(wire: Sequence) -> Entity:
    """Rebuild an entity from its wire tuple (inverse of entity_to_wire)."""
    uid, x, y, birth_round, side = wire
    return Entity(uid=uid, x=x, y=y, birth_round=birth_round, side=side)


# ---------------------------------------------------------------------------
# District computation (pure; shared with the coordinator fallback)
# ---------------------------------------------------------------------------


def compute_route_updates(
    grid: Grid,
    cells: Dict[CellId, CellState],
    tid: CellId,
    district: Sequence[CellId],
    dist_view,
) -> List[Tuple[CellId, int, Optional[CellId]]]:
    """Route over the district against a pre-round dist snapshot.

    ``dist_view`` must map every district cell *and* its out-of-district
    neighbors to the pre-round effective dist (``__getitem__`` protocol).
    Returns ``(cid, dist_int, next)`` for every evaluated cell, in
    district (row-major) order; application is a separate step so the
    snapshot semantics of the reference's Jacobi sweep are preserved.
    """
    updates: List[Tuple[CellId, int, Optional[CellId]]] = []
    for cid in district:
        state = cells[cid]
        if state.failed or cid == tid:
            continue
        new_dist, new_next = _route_step(grid, cid, dist_view)
        updates.append((cid, dist_to_int(new_dist), new_next))
    return updates


def apply_route_updates(
    cells: Dict[CellId, CellState],
    updates: Sequence[Tuple[CellId, int, Optional[CellId]]],
    report: Optional[RoutePhaseReport] = None,
) -> None:
    """Apply Route results, recording actual changes like the reference.

    ``updates`` must already be in the iteration order the report lists
    should have (the worker applies its district slice; the coordinator
    applies the globally row-major-sorted merge).
    """
    for cid, dist_int, new_next in updates:
        state = cells[cid]
        new_dist = dist_from_int(dist_int)
        if new_dist != state.dist:
            if report is not None:
                report.changed_dist.append(cid)
            state.dist = new_dist
        if new_next != state.next_id:
            if report is not None:
                report.changed_next.append(cid)
            state.next_id = new_next


def compute_signal_updates(
    grid: Grid,
    cells: Dict[CellId, CellState],
    params: Parameters,
    policy: TokenPolicy,
    district: Sequence[CellId],
    next_of: Callable[[CellId], Optional[CellId]],
    nonempty_of: Callable[[CellId], bool],
) -> Dict[str, Any]:
    """Signal over the district, mutating its cells' own variables.

    ``next_of`` / ``nonempty_of`` must answer for every neighbor of a
    district cell (in- or out-of-district) with post-Route effective
    values. Mutates ``token``/``signal``/``ne_prev`` of the district's
    non-failed cells exactly like the reference sweep, and returns the
    wire-format result the coordinator merges: per-cell value updates
    plus the district slice of the grant report, all in district
    (row-major) order.
    """
    ne_prev_map = {}
    for cid in district:
        state = cells[cid]
        if state.failed:
            continue
        ne_prev = {
            nbr
            for nbr in grid.neighbors(cid)
            if next_of(nbr) == cid and nonempty_of(nbr)
        }
        ne_prev_map[cid] = ne_prev
    report = SignalPhaseReport()
    updates: List[Tuple[CellId, Tuple[CellId, ...], Optional[CellId], Optional[CellId]]] = []
    for cid, ne_prev in ne_prev_map.items():
        state = cells[cid]
        _signal_step(state, ne_prev, params, policy, report)
        updates.append((cid, tuple(sorted(ne_prev)), state.token, state.signal))
    return {
        "updates": updates,
        "granted": list(report.granted.items()),
        "blocked": report.blocked,
        "rotated": report.rotated,
    }


def apply_signal_updates(
    cells: Dict[CellId, CellState],
    updates: Sequence[Tuple[CellId, Sequence[CellId], Optional[CellId], Optional[CellId]]],
) -> None:
    """Write merged Signal values onto the cells (idempotent re-assign)."""
    for cid, ne_prev, token, sig in updates:
        state = cells[cid]
        state.ne_prev = set(ne_prev)
        state.token = token
        state.signal = sig


def apply_events(
    cells: Dict[CellId, CellState],
    tid: CellId,
    events: Sequence[Tuple[str, CellId]],
) -> None:
    """Replay fail/recover environment transitions on district cells."""
    for event, cid in events:
        state = cells[cid]
        if event == "fail":
            state.mark_failed()
        elif event == "recover":
            state.mark_recovered(is_target=(cid == tid))


def apply_member_sync(
    cells: Dict[CellId, CellState],
    member_sync: Dict[CellId, Sequence[Sequence]],
) -> None:
    """Replace listed cells' membership with the authoritative snapshot
    (covers out-of-round entity seeding, which ships no per-entity
    deltas)."""
    for cid, wires in member_sync.items():
        cells[cid].members = {
            wire[0]: entity_from_wire(wire) for wire in wires
        }


def apply_commit(
    cells: Dict[CellId, CellState],
    params: Parameters,
    movers: Sequence[Tuple[CellId, Direction, Sequence[int]]],
    incoming: Sequence[Tuple[CellId, Sequence]],
    produced: Sequence[Tuple[CellId, Sequence]],
) -> None:
    """Replay the district slice of one Move + produce outcome.

    ``movers`` lists district cells that moved, with the removed
    (transferred or consumed) uids; translations reuse
    ``Entity.translate`` so every float op matches ``apply_moves``
    bitwise. ``incoming`` entities arrive with their post-snap
    coordinates — the snap is never recomputed here.
    """
    for cid, toward, removed in movers:
        state = cells[cid]
        for entity in state.entities():
            entity.translate(toward, params.v)
        for uid in removed:
            state.members.pop(uid, None)
    for dst, wire in incoming:
        cells[dst].add_entity(entity_from_wire(wire))
    for dst, wire in produced:
        cells[dst].add_entity(entity_from_wire(wire))


def district_digest(
    cells: Dict[CellId, CellState], district: Sequence[CellId]
) -> List[Tuple]:
    """Canonical per-cell tuple list (the audit reply; tests compare it
    against the coordinator's authoritative state)."""
    digest = []
    for cid in district:
        state = cells[cid]
        digest.append(
            (
                cid,
                tuple(entity_to_wire(state.members[uid]) for uid in sorted(state.members)),
                state.next_id,
                dist_to_int(state.dist),
                state.token,
                state.signal,
                tuple(sorted(state.ne_prev)),
                state.failed,
            )
        )
    return digest


# ---------------------------------------------------------------------------
# The worker process
# ---------------------------------------------------------------------------


class DistrictWorker:
    """Request handler around one district's state.

    Usable in-process (tests drive it directly) or behind the pickle
    loop of :func:`serve`.
    """

    def __init__(self, init: Dict[str, Any]):
        self.grid = Grid(init["width"], init["height"])
        self.tid: CellId = init["tid"]
        self.params: Parameters = init["params"]
        self.policy: TokenPolicy = init["policy"]
        self.district: List[CellId] = list(init["district"])
        self.cells: Dict[CellId, CellState] = init["cells"]
        self.chaos: Optional[Dict[str, Any]] = init.get("chaos")
        # Ghost values for the current round (rim cells).
        self._ghost_dist: Dict[CellId, float] = {}
        self._ghost_next: Dict[CellId, Tuple] = {}

    # -- chaos hooks (tests only) --------------------------------------

    def chaos_action(
        self, kind: str, payload: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """The matched chaos spec to apply to this request, if any."""
        spec = self.chaos
        if not spec or spec.get("phase") != kind:
            return None
        round_index = payload.get("round")
        if round_index is None:
            return None
        if spec.get("repeat"):
            if round_index < spec["round"]:
                return None
        elif round_index != spec["round"]:
            return None
        if not spec.get("repeat"):
            self.chaos = None  # one-shot
        return spec

    # -- request handlers ----------------------------------------------

    def handle(self, kind: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one request frame to its phase handler."""
        if kind == "route":
            return self._handle_route(payload)
        if kind == "signal":
            return self._handle_signal(payload)
        if kind == "commit":
            return self._handle_commit(payload)
        if kind == "audit":
            return {"digest": district_digest(self.cells, self.district)}
        raise ValueError(f"unknown request kind {kind!r}")

    def _handle_route(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        apply_events(self.cells, self.tid, payload.get("events", ()))
        apply_member_sync(self.cells, payload.get("member_sync", {}))
        self._ghost_dist = dict(payload["ghosts"])
        dist_view = {
            cid: effective_dist(state) for cid, state in self.cells.items()
        }
        dist_view.update(self._ghost_dist)
        updates = compute_route_updates(
            self.grid, self.cells, self.tid, self.district, dist_view
        )
        apply_route_updates(self.cells, updates)
        return {"updates": updates}

    def _handle_signal(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        ghosts: Dict[CellId, Tuple] = payload["ghosts"]

        def next_of(cid: CellId):
            state = self.cells.get(cid)
            if state is not None:
                return effective_next(state)
            return ghosts[cid][0]

        def nonempty_of(cid: CellId) -> bool:
            state = self.cells.get(cid)
            if state is not None:
                return effective_nonempty(state)
            return ghosts[cid][1]

        return compute_signal_updates(
            self.grid,
            self.cells,
            self.params,
            self.policy,
            self.district,
            next_of,
            nonempty_of,
        )

    def _handle_commit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        apply_commit(
            self.cells,
            self.params,
            payload.get("movers", ()),
            payload.get("incoming", ()),
            payload.get("produced", ()),
        )
        return {"ok": True}


def serve(conn, sleep: Callable[[float], None] = time.sleep) -> None:
    """The worker request loop: recv, dispatch, reply, until EOF.

    Retransmits (same ``seq`` as the last handled request) are answered
    from the cached reply without recomputing. Chaos actions (injected
    through the init payload by the chaos tests) fire here: ``kill`` and
    ``hang`` before the phase runs (mid-round death), ``drop`` and
    ``tear`` suppress/garble the reply after computing it — the cached
    reply then satisfies the coordinator's retransmit.
    """
    worker: Optional[DistrictWorker] = None
    last_seq: Optional[int] = None
    last_reply: Optional[Dict[str, Any]] = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if not isinstance(message, dict) or "seq" not in message:
            continue
        seq = message["seq"]
        kind = message.get("kind")
        payload = message.get("payload") or {}
        if seq == last_seq and last_reply is not None:
            try:
                conn.send(last_reply)
            except (BrokenPipeError, OSError):
                return
            continue
        spec = worker.chaos_action(kind, payload) if worker is not None else None
        action = spec["action"] if spec else None
        if action == "kill":
            os.kill(os.getpid(), _signal.SIGKILL)
        if action == "hang":
            sleep(spec.get("hang_seconds", 60.0))
            action = None  # a hang past the heartbeat: the coordinator
            # will have given up; compute and reply normally so a *short*
            # hang inside the timeout budget is also survivable.
        if kind == "init":
            worker = DistrictWorker(payload)
            result: Dict[str, Any] = {"ok": True, "cells": len(worker.cells)}
        elif kind == "shutdown":
            return
        elif worker is None:
            result = {"error": "not initialized"}
        else:
            result = worker.handle(kind, payload)
        reply = {"seq": seq, "payload": result}
        last_seq, last_reply = seq, reply
        try:
            if action == "drop":
                pass  # computed and cached, never sent: forces a retransmit
            elif action == "tear":
                conn.send({"torn": True})  # garbled frame, no seq
            else:
                conn.send(reply)
        except (BrokenPipeError, OSError):
            return


def main(argv: List[str]) -> int:
    """Process entry: adopt the inherited socket fd and serve until EOF."""
    from multiprocessing.connection import Connection

    if len(argv) != 2:
        print("usage: python -m repro.shard._worker_main <fd>", file=sys.stderr)
        return 2
    conn = Connection(int(argv[1]))
    try:
        serve(conn)
    finally:
        try:
            conn.close()
        except OSError:
            pass
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
