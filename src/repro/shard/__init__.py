"""Sharded district simulation: the grid partitioned across worker
processes, exchanging only boundary-cell shared state per round.

Modules: :mod:`~repro.shard.partition` (districts / ShardPlan),
:mod:`~repro.shard.channel` (retrying request/reply transport),
:mod:`~repro.shard.worker` (the district process + shared pure sweeps),
:mod:`~repro.shard.coordinator` (authoritative merge, healing state
machine), :mod:`~repro.shard.engine` (the ``sharded`` RoundEngine).
See docs/sharding.md.
"""

from repro.shard.partition import (
    District,
    PARTITION_STRATEGIES,
    ShardPlan,
    make_plan,
    quadrants,
    row_bands,
)

__all__ = [
    "District",
    "PARTITION_STRATEGIES",
    "ShardPlan",
    "make_plan",
    "quadrants",
    "row_bands",
]
