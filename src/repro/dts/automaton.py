"""The discrete transition system abstraction.

A DTS is a tuple ``(X, Q0, A, ->)``: variables (implicit in the state
representation), start states, transition names, and a transition
relation. For exploration we need only two operations: enumerate start
states, and enumerate the ``(action, successor)`` pairs of a state.

States must be *hashable canonical keys* — for the cellular-flow system a
quantized tuple encoding (see :meth:`repro.core` adapters in
:mod:`repro.monitors` tests) — so that exploration can detect revisits.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterable,
    List,
    Mapping,
    Sequence,
    Tuple,
    TypeVar,
)

State = TypeVar("State", bound=Hashable)
Action = TypeVar("Action", bound=Hashable)


class DiscreteTransitionSystem(Generic[State, Action]):
    """Interface of a discrete transition system."""

    def start_states(self) -> Iterable[State]:
        """The set ``Q0`` of start states."""
        raise NotImplementedError

    def transitions(self, state: State) -> Iterable[Tuple[Action, State]]:
        """All ``(a, x')`` with ``(x, a, x') in ->`` for the given ``x``."""
        raise NotImplementedError

    def actions(self) -> Iterable[Action]:
        """The set ``A`` of transition names (informational)."""
        raise NotImplementedError


class FiniteDTS(DiscreteTransitionSystem[State, Action]):
    """A finite DTS given explicitly by tables.

    Used by unit tests of the explorer/predicates and handy for modeling
    abstractions (e.g. the token-rotation automaton of a single cell).
    """

    def __init__(
        self,
        start: Sequence[State],
        table: Mapping[State, Sequence[Tuple[Action, State]]],
    ):
        self._start: List[State] = list(start)
        self._table: Dict[State, List[Tuple[Action, State]]] = {
            state: list(successors) for state, successors in table.items()
        }

    def start_states(self) -> Iterable[State]:
        return list(self._start)

    def transitions(self, state: State) -> Iterable[Tuple[Action, State]]:
        return list(self._table.get(state, []))

    def actions(self) -> Iterable[Action]:
        names = {action for succ in self._table.values() for action, _ in succ}
        return sorted(names, key=repr)

    def states(self) -> Iterable[State]:
        """All states mentioned anywhere in the tables."""
        seen = set(self._start) | set(self._table)
        for successors in self._table.values():
            for _, nxt in successors:
                seen.add(nxt)
        return seen


class LambdaDTS(DiscreteTransitionSystem[State, Action]):
    """A DTS defined by callables — the adapter used for ``System``.

    ``successor_fn`` maps a state to its ``(action, next_state)`` pairs;
    states are whatever hashable canonical encoding the caller chooses.
    """

    def __init__(
        self,
        start: Sequence[State],
        successor_fn: Callable[[State], Iterable[Tuple[Action, State]]],
        action_names: Sequence[Action] = (),
    ):
        self._start = list(start)
        self._successor_fn = successor_fn
        self._action_names = list(action_names)

    def start_states(self) -> Iterable[State]:
        return list(self._start)

    def transitions(self, state: State) -> Iterable[Tuple[Action, State]]:
        return self._successor_fn(state)

    def actions(self) -> Iterable[Action]:
        return list(self._action_names)
