"""Exhaustive breadth-first exploration of a DTS's reachable states.

For tiny cellular-flow instances (2x2 / 3x3 grids, coarse parameters, a
capped entity budget) the reachable state space is small enough to
enumerate completely, which upgrades the statistical evidence of the
simulation monitors into *exhaustive* evidence: Theorem 5 checked on every
reachable state, not just sampled ones.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, List, Optional, Tuple, TypeVar

from repro.dts.automaton import DiscreteTransitionSystem

State = TypeVar("State")
Action = TypeVar("Action")


@dataclass
class ExplorationResult(Generic[State, Action]):
    """Outcome of an exhaustive (or budget-capped) exploration."""

    reachable: Dict[State, int] = field(default_factory=dict)
    """Reached states mapped to their BFS depth."""

    parents: Dict[State, Tuple[Optional[State], Optional[Action]]] = field(
        default_factory=dict
    )
    """Back-pointers for counterexample trace reconstruction."""

    complete: bool = True
    """False when the state budget was exhausted before a fixed point."""

    violation: Optional[State] = None
    """First state violating the checked predicate, if any."""

    @property
    def state_count(self) -> int:
        return len(self.reachable)

    def trace_to(self, state: State) -> List[Tuple[Optional[Action], State]]:
        """The BFS path from a start state to ``state`` as
        ``(action-taken, state)`` pairs (first action is None)."""
        if state not in self.parents:
            raise KeyError(f"state was not reached: {state!r}")
        trace: List[Tuple[Optional[Action], State]] = []
        cursor: Optional[State] = state
        while cursor is not None:
            parent, action = self.parents[cursor]
            trace.append((action, cursor))
            cursor = parent
        trace.reverse()
        return trace


def explore(
    dts: DiscreteTransitionSystem[State, Action],
    predicate: Optional[Callable[[State], bool]] = None,
    max_states: int = 1_000_000,
    stop_on_violation: bool = True,
) -> ExplorationResult[State, Action]:
    """Breadth-first search of the reachable state space.

    When ``predicate`` is given, every reached state is checked; the first
    violating state is recorded (with a reconstructable counterexample
    trace) and, if ``stop_on_violation``, exploration halts there.
    """
    result: ExplorationResult[State, Action] = ExplorationResult()
    queue: deque = deque()
    for start in dts.start_states():
        if start in result.reachable:
            continue
        result.reachable[start] = 0
        result.parents[start] = (None, None)
        queue.append(start)
        if predicate is not None and not predicate(start):
            result.violation = start
            if stop_on_violation:
                return result

    while queue:
        current = queue.popleft()
        depth = result.reachable[current]
        for action, successor in dts.transitions(current):
            if successor in result.reachable:
                continue
            if len(result.reachable) >= max_states:
                result.complete = False
                return result
            result.reachable[successor] = depth + 1
            result.parents[successor] = (current, action)
            if predicate is not None and not predicate(successor):
                result.violation = successor
                if stop_on_violation:
                    return result
            queue.append(successor)
    return result
