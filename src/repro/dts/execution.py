"""Executions and execution fragments.

An execution fragment is a sequence of states ``x0, x1, ...`` where each
consecutive pair is related by some transition; an execution additionally
starts in a start state. These helpers validate and generate such
sequences for the predicate checkers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.dts.automaton import DiscreteTransitionSystem

State = TypeVar("State")
Action = TypeVar("Action")


@dataclass
class Execution(Generic[State, Action]):
    """A recorded (finite) execution fragment: states plus the actions taken."""

    states: List[State]
    actions: List[Action]

    def __post_init__(self) -> None:
        if len(self.states) != len(self.actions) + 1:
            raise ValueError(
                "an execution with k actions must contain k+1 states "
                f"(got {len(self.states)} states, {len(self.actions)} actions)"
            )

    def __len__(self) -> int:
        return len(self.states)

    @property
    def first(self) -> State:
        return self.states[0]

    @property
    def last(self) -> State:
        return self.states[-1]

    def steps(self) -> Iterable[Tuple[State, Action, State]]:
        """The transitions of the fragment as ``(x, a, x')`` triples."""
        for k, action in enumerate(self.actions):
            yield self.states[k], action, self.states[k + 1]


def is_execution(
    dts: DiscreteTransitionSystem, fragment: Sequence, from_start: bool = True
) -> bool:
    """Validate a state sequence against the transition relation.

    ``from_start=True`` additionally requires the first state to be in
    ``Q0`` (the paper's *execution*); otherwise any fragment is accepted.
    """
    if not fragment:
        return False
    if from_start and fragment[0] not in set(dts.start_states()):
        return False
    for current, nxt in zip(fragment, fragment[1:]):
        successors = {successor for _, successor in dts.transitions(current)}
        if nxt not in successors:
            return False
    return True


def execution_states(
    dts: DiscreteTransitionSystem,
    start: State,
    length: int,
    pick: Optional[int] = None,
) -> List[State]:
    """Generate one execution fragment of up to ``length`` states.

    Follows the ``pick``-th enabled transition at each step (first by
    default); stops early at deadlocked states. Deterministic, so suitable
    for reproducible tests.
    """
    states: List[State] = [start]
    current = start
    for _ in range(length - 1):
        options = list(dts.transitions(current))
        if not options:
            break
        index = 0 if pick is None else pick % len(options)
        _, current = options[index]
        states.append(current)
    return states
