"""Invariance, stability, and stabilization checks.

These mirror the paper's definitions:

* ``A`` is *safe with respect to S* when all reachable states lie in ``S``
  (:func:`check_invariant`).
* ``S`` is *stable* when transitions cannot leave it
  (:func:`check_stable`).
* ``A`` *stabilizes to S* when ``S`` is stable and every execution
  fragment reaches it (:func:`check_stabilizes` checks the reachability
  half on recorded fragments; stability is checked separately).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, TypeVar

from repro.dts.automaton import DiscreteTransitionSystem
from repro.dts.explorer import ExplorationResult, explore

State = TypeVar("State")


def check_invariant(
    dts: DiscreteTransitionSystem,
    predicate: Callable[[State], bool],
    max_states: int = 1_000_000,
) -> ExplorationResult:
    """Exhaustively check that every reachable state satisfies ``predicate``.

    Returns the exploration result; ``result.violation is None`` and
    ``result.complete`` together mean the predicate is an invariant of the
    explored system.
    """
    return explore(dts, predicate=predicate, max_states=max_states)


def find_violation(
    dts: DiscreteTransitionSystem,
    predicate: Callable[[State], bool],
    max_states: int = 1_000_000,
) -> Optional[Sequence]:
    """Return a counterexample trace (list of states) or None."""
    result = explore(dts, predicate=predicate, max_states=max_states)
    if result.violation is None:
        return None
    return [state for _, state in result.trace_to(result.violation)]


def check_stable(
    dts: DiscreteTransitionSystem,
    member: Callable[[State], bool],
    states: Iterable[State],
) -> Optional[Tuple[State, State]]:
    """Check closure of ``{x : member(x)}`` under the transition relation.

    Examines only the provided ``states`` (typically the reachable set from
    an exploration). Returns an offending ``(x, x')`` pair with
    ``member(x) and not member(x')``, or None when the set is stable.
    """
    for state in states:
        if not member(state):
            continue
        for _, successor in dts.transitions(state):
            if not member(successor):
                return state, successor
    return None


def check_stabilizes(
    fragment: Sequence[State],
    member: Callable[[State], bool],
    within: Optional[int] = None,
) -> Optional[int]:
    """First index at which ``fragment`` enters ``{x : member(x)}``.

    Returns the index, or None when the fragment never enters the set (or
    not within ``within`` steps when given). Callers combine this with
    :func:`check_stable` to establish stabilization in the paper's sense.
    """
    horizon = len(fragment) if within is None else min(within + 1, len(fragment))
    for index in range(horizon):
        if member(fragment[index]):
            return index
    return None
