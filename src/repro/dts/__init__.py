"""Discrete-transition-system framework (paper Section II).

The paper models ``System`` as a discrete transition system
``A = (X, Q0, A, ->)`` and proves properties via assertional reasoning:
invariance (safety), stability of state sets, and stabilization. This
package provides that formalism generically:

* :mod:`repro.dts.automaton` — the DTS interface and a dict-backed
  finite instance for tests.
* :mod:`repro.dts.execution` — executions, fragments, and generators.
* :mod:`repro.dts.explorer` — breadth-first exhaustive exploration of the
  reachable state space (used to model-check safety on tiny grids).
* :mod:`repro.dts.predicates` — invariance / stability / stabilization
  checks over explored spaces and executions.
"""

from repro.dts.automaton import DiscreteTransitionSystem, FiniteDTS
from repro.dts.execution import Execution, execution_states, is_execution
from repro.dts.explorer import ExplorationResult, explore
from repro.dts.predicates import (
    check_invariant,
    check_stabilizes,
    check_stable,
    find_violation,
)

__all__ = [
    "DiscreteTransitionSystem",
    "ExplorationResult",
    "Execution",
    "FiniteDTS",
    "check_invariant",
    "check_stabilizes",
    "check_stable",
    "execution_states",
    "explore",
    "find_violation",
]
