"""Throughput measurement (paper Section IV).

``K-round throughput`` = entities consumed by the target over ``K``
rounds, divided by ``K``. The *average throughput* is its large-``K``
limit; experiments estimate it with the full-horizon ratio, optionally
discarding a warm-up prefix (the paper starts from an empty grid, so the
pipeline-fill transient depresses small-``K`` estimates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class ThroughputMeter:
    """Accumulates per-round consumption counts."""

    per_round: List[int] = field(default_factory=list)

    def observe(self, consumed_count: int) -> None:
        """Record the entities consumed in one round."""
        if consumed_count < 0:
            raise ValueError(f"consumed count cannot be negative: {consumed_count}")
        self.per_round.append(consumed_count)

    @property
    def rounds(self) -> int:
        return len(self.per_round)

    @property
    def total_consumed(self) -> int:
        return sum(self.per_round)

    def k_round_throughput(self, k: int) -> float:
        """Throughput over the first ``k`` recorded rounds."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if k > self.rounds:
            raise ValueError(f"only {self.rounds} rounds recorded, asked for {k}")
        return sum(self.per_round[:k]) / k

    def average_throughput(self, warmup: int = 0) -> float:
        """Throughput over all recorded rounds after dropping ``warmup``."""
        if warmup < 0:
            raise ValueError(f"warmup must be nonnegative, got {warmup}")
        effective = self.per_round[warmup:]
        if not effective:
            return 0.0
        return sum(effective) / len(effective)

    def cumulative_series(self) -> List[float]:
        """``k``-round throughput for every prefix ``k`` (convergence plots)."""
        series: List[float] = []
        total = 0
        for k, count in enumerate(self.per_round, start=1):
            total += count
            series.append(total / k)
        return series

    def windowed_series(self, window: int) -> List[float]:
        """Non-overlapping ``window``-round throughputs (trend inspection)."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        return [
            sum(self.per_round[start : start + window]) / window
            for start in range(0, self.rounds - window + 1, window)
        ]
