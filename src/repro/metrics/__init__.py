"""Measurement: throughput, latency, occupancy, and time-series helpers.

The paper's headline metric is *K-round throughput* — entities arriving
at the target over ``K`` rounds divided by ``K`` — and its large-``K``
limit, the average throughput. Latency and occupancy are secondary
metrics the reproduction adds for diagnosis.
"""

from repro.metrics.latency import LatencyStats, latency_stats, percentile
from repro.metrics.occupancy import OccupancyProbe, blocked_cell_count
from repro.metrics.series import RollingMean, TimeSeries
from repro.metrics.streaming import (
    StreamingEntityTracker,
    StreamingOccupancyProbe,
    StreamingThroughputMeter,
    install_streaming_meters,
)
from repro.metrics.throughput import ThroughputMeter

__all__ = [
    "LatencyStats",
    "OccupancyProbe",
    "RollingMean",
    "StreamingEntityTracker",
    "StreamingOccupancyProbe",
    "StreamingThroughputMeter",
    "ThroughputMeter",
    "TimeSeries",
    "blocked_cell_count",
    "install_streaming_meters",
    "latency_stats",
    "percentile",
]
