"""Transit-latency statistics.

Latency is the number of rounds from an entity's production at a source
to its consumption at the target. The paper does not plot latency, but it
is the natural companion diagnostic: throughput saturation (Figures 7-8)
shows up as latency growth, and fault churn (Figure 9) as heavy tails.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics over a set of transit latencies."""

    count: int
    mean: float
    stdev: float
    minimum: float
    median: float
    p95: float
    maximum: float


def percentile(ordered: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of pre-sorted data.

    This is the single percentile definition used everywhere results are
    summarized (:func:`latency_stats` and
    :meth:`repro.sim.simulator.Simulator.summarize`), so the same run can
    never report two different p95 values.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(
            f"percentile fraction must be within [0.0, 1.0], got {fraction!r}"
        )
    if not ordered:
        raise ValueError("no data")
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def latency_stats(latencies: Sequence[int]) -> LatencyStats:
    """Summarize latencies; raises ``ValueError`` on empty input."""
    if not latencies:
        raise ValueError("cannot summarize an empty latency set")
    ordered = sorted(float(value) for value in latencies)
    count = len(ordered)
    mean = sum(ordered) / count
    variance = sum((value - mean) ** 2 for value in ordered) / count
    return LatencyStats(
        count=count,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=ordered[0],
        median=percentile(ordered, 0.5),
        p95=percentile(ordered, 0.95),
        maximum=ordered[-1],
    )
