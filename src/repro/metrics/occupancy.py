"""Occupancy and blocking diagnostics.

The paper explains its throughput curves through *blocking*: a low
velocity "causes the predecessor cell to be blocked more frequently", and
saturation happens "when there is roughly only one entity in each cell".
These probes expose exactly those quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.system import RoundReport, System
from repro.grid.topology import CellId


def blocked_cell_count(report: RoundReport) -> int:
    """Cells that held a token this round but could not grant (no gap)."""
    return len(report.signal.blocked)


@dataclass
class OccupancyProbe:
    """Per-round occupancy/blocking time series over a run."""

    entities_per_round: List[int] = field(default_factory=list)
    blocked_per_round: List[int] = field(default_factory=list)
    moved_per_round: List[int] = field(default_factory=list)
    occupied_cells_per_round: List[int] = field(default_factory=list)

    def observe(self, system: System, report: RoundReport) -> None:
        """Record one round's occupancy/blocking sample."""
        self.entities_per_round.append(system.entity_count())
        self.blocked_per_round.append(blocked_cell_count(report))
        self.moved_per_round.append(len(report.move.moved_cells))
        self.occupied_cells_per_round.append(
            sum(1 for state in system.cells.values() if state.members)
        )

    def mean_entities(self) -> float:
        """Mean in-flight population over the observed rounds."""
        if not self.entities_per_round:
            return 0.0
        return sum(self.entities_per_round) / len(self.entities_per_round)

    def mean_blocked(self) -> float:
        """Mean number of blocked (token-held, no-gap) cells per round."""
        if not self.blocked_per_round:
            return 0.0
        return sum(self.blocked_per_round) / len(self.blocked_per_round)

    def mean_entities_per_occupied_cell(self) -> float:
        """The paper's saturation indicator (~1 at the saturation plateau)."""
        pairs = [
            entities / occupied
            for entities, occupied in zip(
                self.entities_per_round, self.occupied_cells_per_round
            )
            if occupied > 0
        ]
        if not pairs:
            return 0.0
        return sum(pairs) / len(pairs)


def occupancy_histogram(system: System) -> Dict[CellId, int]:
    """Entities per cell in the current state (render/diagnostic helper)."""
    return {cid: len(state.members) for cid, state in system.cells.items()}
