"""O(1)-memory variants of the per-round instrumentation.

The batch meters (:class:`~repro.metrics.throughput.ThroughputMeter`,
:class:`~repro.metrics.occupancy.OccupancyProbe`,
:class:`~repro.monitors.progress.EntityTracker`) keep one list entry per
round (or one record per entity) because experiments want the full
series for plots. A long-running ``repro serve`` process cannot afford
that: over a 10k-round soak those lists are the dominant steady-state
growth. The streaming variants here keep exact running aggregates
instead — every summary statistic the simulator's ``summarize()`` reads
(rounds, totals, means, latency mean/percentiles) is bit-identical to
what the unbounded versions would report, but memory stays flat:

- ``StreamingThroughputMeter`` holds two counters plus the warmup
  prefix total (the warmup horizon is fixed at construction).
- ``StreamingOccupancyProbe`` holds running sums for each mean.
- ``StreamingEntityTracker`` holds only in-flight records (bounded by
  the live population) plus a latency-value histogram, which stays
  small because transit latencies concentrate on a narrow integer range
  in steady state.

Series-reconstructing methods (``cumulative_series``, per-entity
``consumed()`` records, ...) are deliberately absent or raise: if a
caller needs history, it should use the batch classes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.system import MovePhaseReport, RoundReport, System
from repro.metrics.occupancy import blocked_cell_count
from repro.monitors.progress import EntityRecord


@dataclass
class StreamingThroughputMeter:
    """Drop-in for ``ThroughputMeter`` keeping totals, not the series.

    ``warmup`` must match the warmup the simulator will pass to
    :meth:`average_throughput` — it is the one slice of history the
    batch meter supports that cannot be recovered from running totals,
    so it is fixed up front.
    """

    warmup: int = 0
    _rounds: int = 0
    _total: int = 0
    _warmup_total: int = 0

    def observe(self, consumed_count: int) -> None:
        """Record the entities consumed in one round."""
        if consumed_count < 0:
            raise ValueError(f"consumed count cannot be negative: {consumed_count}")
        if self._rounds < self.warmup:
            self._warmup_total += consumed_count
        self._rounds += 1
        self._total += consumed_count

    @property
    def rounds(self) -> int:
        return self._rounds

    @property
    def total_consumed(self) -> int:
        return self._total

    def average_throughput(self, warmup: int = 0) -> float:
        """Exact post-warmup throughput for the construction-time warmup."""
        if warmup != self.warmup:
            raise ValueError(
                f"streaming meter was built for warmup={self.warmup}; "
                f"asked for warmup={warmup} (use ThroughputMeter for "
                "arbitrary slices)"
            )
        effective_rounds = self._rounds - min(self.warmup, self._rounds)
        if effective_rounds <= 0:
            return 0.0
        return (self._total - self._warmup_total) / effective_rounds


@dataclass
class StreamingOccupancyProbe:
    """Drop-in for ``OccupancyProbe`` keeping running sums, not series."""

    _rounds: int = 0
    _entities_sum: int = 0
    _blocked_sum: int = 0
    _moved_sum: int = 0
    _occupied_sum: int = 0
    _ratio_sum: float = 0.0
    _ratio_rounds: int = 0

    def observe(self, system: System, report: RoundReport) -> None:
        """Record one round's occupancy/blocking sample."""
        entities = system.entity_count()
        occupied = sum(1 for state in system.cells.values() if state.members)
        self._rounds += 1
        self._entities_sum += entities
        self._blocked_sum += blocked_cell_count(report)
        self._moved_sum += len(report.move.moved_cells)
        self._occupied_sum += occupied
        if occupied > 0:
            self._ratio_sum += entities / occupied
            self._ratio_rounds += 1

    def mean_entities(self) -> float:
        """Mean in-flight population over the observed rounds."""
        if self._rounds == 0:
            return 0.0
        return self._entities_sum / self._rounds

    def mean_blocked(self) -> float:
        """Mean number of blocked (token-held, no-gap) cells per round."""
        if self._rounds == 0:
            return 0.0
        return self._blocked_sum / self._rounds

    def mean_entities_per_occupied_cell(self) -> float:
        """The paper's saturation indicator (~1 at the saturation plateau)."""
        if self._ratio_rounds == 0:
            return 0.0
        return self._ratio_sum / self._ratio_rounds


@dataclass
class StreamingEntityTracker:
    """Drop-in for ``EntityTracker`` that retires consumed records.

    Only in-flight entities keep a live :class:`EntityRecord`; when an
    entity is consumed, its transit latency is folded into a
    value-count histogram and the record is dropped. ``latencies()``
    re-expands the histogram (sorted, exact) — cheap because it is only
    called once, at summarize time.
    """

    records: Dict[int, EntityRecord] = field(default_factory=dict)
    latency_counts: Counter = field(default_factory=Counter)
    consumed_count: int = 0

    def observe(self, report: RoundReport, system: System) -> None:
        """Ingest one round's report (births, hops, consumptions)."""
        for entity in report.produced:
            cid = next(
                cid
                for cid, state in system.cells.items()
                if entity.uid in state.members
            )
            self.records[entity.uid] = EntityRecord(
                uid=entity.uid, birth_round=entity.birth_round, source=cid
            )
        self._observe_moves(report.move, report.round_index)

    def _observe_moves(self, move: MovePhaseReport, round_index: int) -> None:
        for transfer in move.transfers:
            record = self.records.get(transfer.uid)
            if record is None:
                record = EntityRecord(
                    uid=transfer.uid, birth_round=round_index, source=transfer.src
                )
                self.records[transfer.uid] = record
            record.hops += 1
            if transfer.consumed:
                self.latency_counts[round_index - record.birth_round] += 1
                self.consumed_count += 1
                del self.records[transfer.uid]

    def consumed(self) -> List[EntityRecord]:
        """Unsupported here: consumed records are retired, not kept."""
        raise NotImplementedError(
            "StreamingEntityTracker retires consumed records to keep "
            "memory bounded; use EntityTracker when per-entity records "
            "are needed"
        )

    def in_flight(self) -> List[EntityRecord]:
        """Records of entities still in the system."""
        return list(self.records.values())

    def latencies(self) -> List[int]:
        """Transit latencies of all consumed entities (sorted, exact)."""
        out: List[int] = []
        for value in sorted(self.latency_counts):
            out.extend([value] * self.latency_counts[value])
        return out

    def oldest_in_flight_age(self, current_round: int) -> Optional[int]:
        """Age (rounds) of the oldest in-flight entity, or None."""
        ages = [current_round - r.birth_round for r in self.records.values()]
        return max(ages) if ages else None


def install_streaming_meters(simulator) -> None:
    """Swap a simulator's per-round accumulators for streaming ones.

    Must run before the first ``step()`` — the streaming meters start
    empty and cannot adopt history from the batch ones.
    """
    if simulator.meter.rounds != 0:
        raise RuntimeError(
            "install_streaming_meters must run before the first step; "
            f"{simulator.meter.rounds} round(s) already recorded"
        )
    simulator.meter = StreamingThroughputMeter(warmup=simulator.warmup)
    simulator.occupancy = StreamingOccupancyProbe()
    simulator.tracker = StreamingEntityTracker()
