"""Small time-series utilities shared by metrics and analysis."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


@dataclass
class TimeSeries:
    """A named sequence of (round, value) samples."""

    name: str
    rounds: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, round_index: int, value: float) -> None:
        """Append a sample; rounds must be strictly increasing."""
        if self.rounds and round_index <= self.rounds[-1]:
            raise ValueError(
                f"rounds must be strictly increasing "
                f"(got {round_index} after {self.rounds[-1]})"
            )
        self.rounds.append(round_index)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def last(self) -> Optional[Tuple[int, float]]:
        """The most recent ``(round, value)`` sample, or None."""
        if not self.values:
            return None
        return self.rounds[-1], self.values[-1]

    def mean(self) -> float:
        """Mean of the recorded values (0 when empty)."""
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)


@dataclass
class RollingMean:
    """Fixed-window rolling mean (O(1) per observation)."""

    window: int
    _buffer: List[float] = field(default_factory=list)
    _cursor: int = 0
    _sum: float = 0.0

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")

    def observe(self, value: float) -> float:
        """Add a sample; return the current rolling mean."""
        if len(self._buffer) < self.window:
            self._buffer.append(value)
            self._sum += value
        else:
            self._sum += value - self._buffer[self._cursor]
            self._buffer[self._cursor] = value
            self._cursor = (self._cursor + 1) % self.window
        return self.value

    @property
    def value(self) -> float:
        if not self._buffer:
            return 0.0
        return self._sum / len(self._buffer)

    @property
    def full(self) -> bool:
        return len(self._buffer) == self.window


def mean_and_ci(values: Sequence[float], z: float = 1.96) -> Tuple[float, float]:
    """Sample mean and normal-approximation half-width CI.

    With one sample the half-width is 0 (no spread information).
    """
    if not values:
        raise ValueError("no data")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, z * math.sqrt(variance / n)
