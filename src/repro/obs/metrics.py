"""The metrics registry: counters, gauges, and bounded histograms.

Pure-stdlib, allocation-light instruments for counting protocol events
(signal grants, ``bot`` blocks, transfers, token rotations, retries...)
without perturbing the simulation. Everything here is deterministic:
two identical seeded runs produce *equal* registry contents, whatever
process or worker they executed in, so metric dictionaries ride along in
:class:`repro.sim.results.SimulationResult` and survive byte-exact
comparisons between serial and parallel sweeps.

Design rules:

* **Near-zero overhead when disabled.** Nothing in this module is
  global or import-time stateful; a simulation that does not opt in
  (``REPRO_METRICS`` unset) never constructs a registry and pays only
  one ``is None`` branch per round.
* **Bounded memory.** Histograms accumulate into a fixed set of
  buckets; no per-observation storage, so soak runs cannot grow.
* **Deterministic serialization.** :meth:`MetricsRegistry.to_dict`
  sorts families and label sets, so its JSON form is canonical.

Usage::

    >>> registry = MetricsRegistry()
    >>> registry.counter("signal.granted").inc()
    >>> registry.counter("signal.granted").inc(2)
    >>> registry.counter("signal.granted").value
    3
    >>> registry.counter("signal.granted.by_cell", cell="1,0").inc()
    >>> registry.gauge("entities.in_flight").set(4)
    >>> registry.gauge("entities.in_flight").value
    4
    >>> h = registry.histogram("route.stabilization_rounds")
    >>> h.observe(3)
    >>> h.count, h.total, h.minimum, h.maximum
    (1, 3, 3, 3)
    >>> sorted(registry.to_dict()["counters"])
    ['signal.granted', 'signal.granted.by_cell{cell=1,0}']
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Optional, Tuple

#: Default histogram bucket upper bounds (inclusive); observations above
#: the last bound land in the overflow bucket. Chosen for round counts:
#: stabilization times, streak lengths, retry tallies.
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1); negative increments are rejected.

        >>> c = Counter()
        >>> c.inc(); c.inc(5); c.value
        6
        """
        if amount < 0:
            raise ValueError(f"counters only go up, got increment {amount}")
        self.value += amount

    def to_value(self):
        """Serialized form: the plain count."""
        return self.value


class Gauge:
    """A set-to-current-value metric (e.g. entities in flight)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value) -> None:
        """Record the current value, replacing the previous one.

        >>> g = Gauge()
        >>> g.set(7); g.value
        7
        """
        self.value = value

    def to_value(self):
        """Serialized form: the last set value."""
        return self.value


class Histogram:
    """A bounded histogram: fixed buckets, constant memory.

    Observations are tallied into ``len(buckets) + 1`` counters (one per
    upper bound, plus overflow) alongside exact ``count``/``total`` and
    ``minimum``/``maximum`` — no per-observation storage, so a 10^6-round
    soak costs the same memory as a 10-round test.

    >>> h = Histogram(buckets=(1, 10))
    >>> for value in (0, 1, 5, 500):
    ...     h.observe(value)
    >>> h.to_value()["buckets"]
    {'<=1': 2, '<=10': 1, '>10': 1}
    """

    __slots__ = ("buckets", "counts", "count", "total", "minimum", "maximum")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError(f"buckets must be sorted and distinct, got {buckets}")
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total: float = 0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value) -> None:
        """Tally one observation into its bucket."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean of all observations (None when empty)."""
        if self.count == 0:
            return None
        return self.total / self.count

    def to_value(self) -> Dict:
        """Serialized form: summary stats plus per-bucket tallies."""
        labels = [f"<={bound:g}" for bound in self.buckets]
        labels.append(f">{self.buckets[-1]:g}")
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "buckets": dict(zip(labels, self.counts)),
        }


def _label_key(labels: Dict[str, object]) -> str:
    """Canonical string key for a label set (sorted, ``k=v`` pairs)."""
    return ",".join(f"{key}={labels[key]}" for key in sorted(labels))


class MetricsRegistry:
    """Creates-on-first-use registry of named, optionally labeled metrics.

    Instruments are identified by ``(kind, name, labels)``; asking for
    the same triple always returns the same instrument, so call sites
    can stay stateless::

        >>> registry = MetricsRegistry()
        >>> registry.counter("move.transfers") is registry.counter("move.transfers")
        True
        >>> registry.counter("x", cell="0,1") is registry.counter("x", cell="1,0")
        False
    """

    __slots__ = ("_metrics",)

    #: Serialized section per instrument kind.
    _SECTIONS = {"counter": "counters", "gauge": "gauges", "histogram": "histograms"}

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, str, str], object] = {}

    def counter(self, name: str, **labels) -> Counter:
        """The counter ``name`` (with optional labels), created on demand."""
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge ``name`` (with optional labels), created on demand."""
        return self._get("gauge", Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Tuple[float, ...] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        """The histogram ``name``; ``buckets`` applies on first creation."""
        key = ("histogram", name, _label_key(labels))
        instrument = self._metrics.get(key)
        if instrument is None:
            instrument = Histogram(buckets=buckets)
            self._metrics[key] = instrument
        return instrument  # type: ignore[return-value]

    def _get(self, kind: str, factory, name: str, labels: Dict):
        key = (kind, name, _label_key(labels))
        instrument = self._metrics.get(key)
        if instrument is None:
            instrument = factory()
            self._metrics[key] = instrument
        return instrument

    def base_names(self) -> Dict[str, str]:
        """Mapping of every registered base metric name to its kind.

        Labeled variants collapse onto their base name — the catalog in
        ``docs/observability.md`` is checked against these.
        """
        names: Dict[str, str] = {}
        for kind, name, _labels in self._metrics:
            names[name] = kind
        return names

    def to_dict(self) -> Dict:
        """Canonical plain-dict form, stable across runs and processes.

        Unlabeled instruments serialize as ``name: value``; labeled ones
        as ``name{labels}: value``. Keys are sorted, so JSON dumps of two
        equal registries are byte-identical.
        """
        out: Dict[str, Dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for (kind, name, label_key), instrument in sorted(
            self._metrics.items(), key=lambda item: item[0]
        ):
            flat = name if not label_key else f"{name}{{{label_key}}}"
            out[self._SECTIONS[kind]][flat] = instrument.to_value()  # type: ignore[attr-defined]
        return out
