"""The protocol-event tracer and its sinks.

A :class:`ProtocolTracer` turns validated event records
(:func:`repro.obs.events.make_event`) into schema-versioned JSON-lines:
one header line carrying the schema version and the run's config
fingerprint, then one canonically-serialized object per event. Two
sinks cover the two usage modes:

* :class:`JsonlSink` — streaming append to a file, for runs whose trace
  is the artifact (``cellularflows trace --events``, ``REPRO_TRACE``).
  Serialization is canonical (sorted keys, compact separators), so two
  identical seeded runs produce **byte-identical** files regardless of
  which process or worker executed them.
* :class:`RingBufferSink` — a bounded in-memory buffer keeping the most
  recent events, for tests and interactive use where only the tail
  matters and soak runs must not grow memory.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional

from repro.obs.events import TRACE_SCHEMA, make_event

#: Default capacity of a ring-buffer sink (matches the history cap
#: convention of :mod:`repro.faults.injector`).
DEFAULT_BUFFER_CAPACITY = 10_000


def _canonical(record: Dict) -> str:
    """One canonical JSON line: sorted keys, compact separators."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def trace_header(fingerprint: Optional[str] = None) -> Dict:
    """The header record opening every event trace file."""
    header: Dict = {"kind": "protocol-events", "schema": TRACE_SCHEMA}
    if fingerprint is not None:
        header["config_fingerprint"] = fingerprint
    return {"header": header}


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory.

    Overwrites are *counted*, not silent: ``evicted`` tallies every event
    the full buffer pushed out, and the instrumentation layer surfaces it
    as the ``trace.evicted`` metric — a long soak run can prove its
    bounded-memory story without losing track of how much history the
    bound cost.
    """

    def __init__(self, capacity: int = DEFAULT_BUFFER_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._buffer: Deque[Dict] = deque(maxlen=capacity)
        #: Events overwritten because the buffer was at capacity.
        self.evicted = 0

    def write(self, record: Dict) -> None:
        """Append one event (evicting — and counting — the oldest when full)."""
        if len(self._buffer) == self._buffer.maxlen:
            self.evicted += 1
        self._buffer.append(record)

    def events(self) -> List[Dict]:
        """The retained events, oldest first."""
        return list(self._buffer)

    def flush(self) -> None:
        """No-op (memory sink)."""

    def close(self) -> None:
        """No-op (memory sink)."""


class JsonlSink:
    """Streams header + events to a JSON-lines file."""

    def __init__(self, path, fingerprint: Optional[str] = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w")
        self._handle.write(_canonical(trace_header(fingerprint)) + "\n")

    def write(self, record: Dict) -> None:
        """Append one event as one canonical JSON line."""
        self._handle.write(_canonical(record) + "\n")

    def flush(self) -> None:
        """Push buffered lines to the OS (called at round boundaries)."""
        if not self._handle.closed:
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if not self._handle.closed:
            self._handle.close()


class CallbackSink:
    """Hands every event record to a callable, in emission order.

    The in-process integration point: ``repro.serve`` uses it to feed
    protocol events into its batched sink buffer, and tests use it to
    capture events without touching the filesystem. The callback
    receives the validated record dict; mutating it is not allowed (the
    tracer may retain references).
    """

    def __init__(self, callback, on_flush=None, on_close=None):
        self._callback = callback
        self._on_flush = on_flush
        self._on_close = on_close

    def write(self, record: Dict) -> None:
        """Forward one event record to the callback."""
        self._callback(record)

    def flush(self) -> None:
        """Invoke the optional flush hook (round-boundary call)."""
        if self._on_flush is not None:
            self._on_flush()

    def close(self) -> None:
        """Invoke the optional close hook (idempotent by contract)."""
        if self._on_close is not None:
            self._on_close()


class ProtocolTracer:
    """Validates and emits protocol events into a sink.

    Keeps a per-type emission tally (``counts``) so summaries are
    available even when the sink is a bounded ring buffer that has
    evicted early events.
    """

    def __init__(self, sink=None, fingerprint: Optional[str] = None):
        self.sink = sink if sink is not None else RingBufferSink()
        self.fingerprint = fingerprint
        self.counts: Dict[str, int] = {}

    def emit(self, name: str, round_index: int, fields: Dict) -> Dict:
        """Validate, count, and write one event; returns the record."""
        record = make_event(name, round_index, fields)
        self.counts[name] = self.counts.get(name, 0) + 1
        self.sink.write(record)
        return record

    @property
    def total_events(self) -> int:
        """Total events emitted over the tracer's lifetime."""
        return sum(self.counts.values())

    def flush(self) -> None:
        """Flush the sink (round-boundary call)."""
        self.sink.flush()

    def close(self) -> None:
        """Close the sink (idempotent)."""
        self.sink.close()
