"""Observability: structured protocol-event tracing + metrics registry.

The runtime monitors (:mod:`repro.monitors`) *assert* the paper's
properties; this package makes runs *inspectable* — which cell blocked
whom and why on each round, how long routing took to re-stabilize after
a fault, how many retries a sweep burned. Three layers:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`: counters,
  gauges, and bounded histograms, pure stdlib, deterministic, near-zero
  overhead when disabled.
* :mod:`repro.obs.events` / :mod:`repro.obs.tracer` — the schema-versioned
  protocol-event taxonomy and the JSONL tracer (streaming file or
  bounded ring buffer) that emits it.
* :mod:`repro.obs.exporters` — trace loading, summaries, and the
  JSON/CSV exporters behind ``cellularflows report``.

Wiring lives in :mod:`repro.obs.instrument`; enable with the
``REPRO_METRICS`` / ``REPRO_TRACE`` environment toggles or by passing an
:class:`ObservabilityConfig` to
:func:`repro.sim.simulator.build_simulation`. The full event taxonomy,
metrics catalog, and overhead numbers are documented in
``docs/observability.md``.
"""

from repro.obs.events import BLOCK_REASONS, EVENT_TYPES, TRACE_SCHEMA, EventType, make_event
from repro.obs.exporters import (
    TraceSchemaError,
    load_events,
    render_report,
    save_summary_csv,
    save_summary_json,
    summarize_events,
)
from repro.obs.instrument import (
    METRIC_NAMES,
    ObservabilityConfig,
    SimulationInstrumentation,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import JsonlSink, ProtocolTracer, RingBufferSink

__all__ = [
    "BLOCK_REASONS",
    "Counter",
    "EVENT_TYPES",
    "EventType",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "METRIC_NAMES",
    "MetricsRegistry",
    "ObservabilityConfig",
    "ProtocolTracer",
    "RingBufferSink",
    "SimulationInstrumentation",
    "TRACE_SCHEMA",
    "TraceSchemaError",
    "load_events",
    "make_event",
    "render_report",
    "save_summary_csv",
    "save_summary_json",
    "summarize_events",
]
