"""Reading, summarizing, and exporting protocol-event traces.

The reader half of :mod:`repro.obs.tracer`: load a schema-versioned
event JSONL, fold it into a summary (event tallies, per-cell grant/block
pressure, transfer/consumption counts, fault activity), render that
summary as text for ``cellularflows report``, and export it as JSON or
CSV for downstream tooling.

Schema handling is strict but helpful: a trace written by a *newer*
schema, or a file that is not an event trace at all (e.g. the state
snapshots of :mod:`repro.sim.trace`), raises
:class:`TraceSchemaError` with a message that says what was found and
what this build reads — never a bare ``KeyError``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Tuple

from repro.obs.events import EVENT_TYPES, TRACE_SCHEMA


class TraceSchemaError(ValueError):
    """An event trace cannot be read: wrong kind, schema, or shape."""


def load_events(path) -> Tuple[Dict, List[Dict]]:
    """Read an event trace; returns ``(header, events)``.

    Validates the header line (kind, schema version) before touching any
    event, so schema mismatches fail fast with a clear message.
    """
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise TraceSchemaError(f"{path}: empty file, not an event trace")
    try:
        first = json.loads(lines[0])
    except json.JSONDecodeError as error:
        raise TraceSchemaError(
            f"{path}:1 is not JSON ({error}); not an event trace"
        ) from error
    header = first.get("header") if isinstance(first, dict) else None
    if not isinstance(header, dict):
        raise TraceSchemaError(
            f"{path}:1 has no header record; not an event trace"
        )
    if header.get("kind") != "protocol-events":
        kind = header.get("kind")
        raise TraceSchemaError(
            f"{path} is a {kind or 'state-snapshot'} trace, not a "
            f"protocol-event trace; `cellularflows report` reads traces "
            f"written with --events / REPRO_TRACE"
        )
    schema = header.get("schema")
    if not isinstance(schema, int) or schema < 1:
        raise TraceSchemaError(
            f"{path} declares no valid schema version (got {schema!r}); "
            f"this build reads protocol-event schemas 1..{TRACE_SCHEMA}"
        )
    if schema > TRACE_SCHEMA:
        raise TraceSchemaError(
            f"{path} uses protocol-event schema {schema}, but this build "
            f"reads schemas up to {TRACE_SCHEMA}; upgrade the toolkit or "
            f"re-record the trace"
        )
    events: List[Dict] = []
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise TraceSchemaError(
                f"{path}:{number} is corrupt ({error})"
            ) from error
    return header, events


def _cell_key(value) -> str:
    """``[i, j]`` -> ``"i,j"`` (summary dict keys)."""
    return ",".join(str(part) for part in value)


def summarize_events(header: Dict, events: List[Dict]) -> Dict:
    """Fold an event stream into a JSON-ready summary dict."""
    by_type: Dict[str, int] = {}
    grants_by_cell: Dict[str, int] = {}
    blocks_by_cell: Dict[str, int] = {}
    blocks_by_reason: Dict[str, int] = {}
    rounds = set()
    unknown: Dict[str, int] = {}
    for event in events:
        name = event.get("type", "<untyped>")
        if name not in EVENT_TYPES:
            unknown[name] = unknown.get(name, 0) + 1
            continue
        by_type[name] = by_type.get(name, 0) + 1
        rounds.add(event.get("round", -1))
        if name == "SignalGranted":
            key = _cell_key(event["cell"])
            grants_by_cell[key] = grants_by_cell.get(key, 0) + 1
        elif name == "SignalBlocked":
            key = _cell_key(event["cell"])
            blocks_by_cell[key] = blocks_by_cell.get(key, 0) + 1
            reason = event.get("reason", "<none>")
            blocks_by_reason[reason] = blocks_by_reason.get(reason, 0) + 1
    summary = {
        "schema": header.get("schema"),
        "config_fingerprint": header.get("config_fingerprint"),
        "events_total": sum(by_type.values()),
        "rounds_covered": len(rounds),
        "first_round": min(rounds) if rounds else None,
        "last_round": max(rounds) if rounds else None,
        "by_type": {name: by_type.get(name, 0) for name in sorted(EVENT_TYPES)},
        "grants_by_cell": dict(sorted(grants_by_cell.items())),
        "blocks_by_cell": dict(sorted(blocks_by_cell.items())),
        "blocks_by_reason": dict(sorted(blocks_by_reason.items())),
    }
    if unknown:
        summary["unknown_types"] = dict(sorted(unknown.items()))
    return summary


def render_report(summary: Dict) -> str:
    """Human-readable rendering of :func:`summarize_events`' output."""
    lines = [
        f"protocol-event trace (schema {summary['schema']})",
    ]
    if summary.get("config_fingerprint"):
        lines.append(f"config fingerprint: {summary['config_fingerprint']}")
    lines.append(
        f"{summary['events_total']} events over "
        f"{summary['rounds_covered']} active rounds "
        f"(rounds {summary['first_round']}..{summary['last_round']})"
    )
    lines.append("")
    lines.append("events by type:")
    width = max(len(name) for name in summary["by_type"])
    for name, count in summary["by_type"].items():
        lines.append(f"  {name:<{width}}  {count}")
    if summary.get("unknown_types"):
        for name, count in summary["unknown_types"].items():
            lines.append(f"  {name:<{width}}  {count}  (unknown type, skipped)")
    contention = _contention_lines(summary)
    if contention:
        lines.append("")
        lines.extend(contention)
    return "\n".join(lines)


def _contention_lines(summary: Dict, top: int = 5) -> List[str]:
    """The grant/block pressure table (cells ranked by blocks)."""
    blocks = summary.get("blocks_by_cell", {})
    if not blocks:
        return []
    grants = summary.get("grants_by_cell", {})
    ranked = sorted(blocks.items(), key=lambda item: (-item[1], item[0]))[:top]
    lines = [f"most-blocked cells (top {len(ranked)}):"]
    lines.append("  cell        blocks  grants")
    for cell, count in ranked:
        lines.append(f"  {cell:<10}  {count:<6}  {grants.get(cell, 0)}")
    return lines


def save_summary_json(summary: Dict, path) -> Path:
    """Write the summary as indented JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return target


def save_summary_csv(summary: Dict, path) -> Path:
    """Write the summary as flat ``section,name,value`` CSV rows."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["section", "name", "value"])
        for key in (
            "schema",
            "config_fingerprint",
            "events_total",
            "rounds_covered",
            "first_round",
            "last_round",
        ):
            writer.writerow(["summary", key, summary.get(key)])
        for section in ("by_type", "grants_by_cell", "blocks_by_cell", "blocks_by_reason"):
            for name, value in summary.get(section, {}).items():
                writer.writerow([section, name, value])
    return target
