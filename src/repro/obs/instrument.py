"""Wiring: deriving metrics and events from a running simulation.

:class:`SimulationInstrumentation` sits in the round loop
(:class:`repro.sim.simulator.Simulator` calls it once per round when
observability is enabled) and translates the phase reports the protocol
already produces — :class:`~repro.core.route.RoutePhaseReport`,
:class:`~repro.core.signal.SignalPhaseReport`,
:class:`~repro.core.move.MovePhaseReport`, plus the round's
:class:`~repro.faults.model.FaultDecision` — into registry metrics and
structured trace events. The protocol phases themselves stay
observation-free; with observability disabled (the default) the round
loop pays exactly one ``is None`` branch.

Event emission order within a round is canonical (faults, route
changes, token rotations, grants, blocks, transfers/consumptions; cell
order sorted within each group), so identical seeded runs yield
byte-identical traces whether executed serially or on a worker process.

Enablement comes from :class:`ObservabilityConfig`, normally read from
the environment: ``REPRO_METRICS=1`` collects metrics into
``SimulationResult.metrics``; ``REPRO_TRACE=<path>`` streams events to
``<path>`` (a ``.jsonl`` file, or a directory that receives one
``trace-<config fingerprint>.jsonl`` per run — the directory form is
what sweeps use, since every point needs its own file).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import JsonlSink, ProtocolTracer, RingBufferSink

#: Env var enabling the metrics registry (truthy: 1/true/yes/on).
ENV_METRICS = "REPRO_METRICS"
#: Env var enabling event tracing; its value is the output path.
ENV_TRACE = "REPRO_TRACE"

_TRUTHY = {"1", "true", "yes", "on"}

#: The metrics catalog: every metric the instrumentation (or the sweep
#: supervision layer) can emit, with its kind and meaning. This is the
#: registry ``docs/observability.md``'s catalog table is diffed against
#: in CI — add here first, document second, or the docs job fails.
METRIC_NAMES: Dict[str, Dict[str, str]] = {
    "route.dist_changes": {
        "kind": "counter",
        "description": "cells whose Route dist changed, summed over rounds",
    },
    "route.next_changes": {
        "kind": "counter",
        "description": "cells whose Route next-pointer changed, summed over rounds",
    },
    "route.stabilization_rounds": {
        "kind": "histogram",
        "description": "rounds from a fault/recovery event until the Route "
        "phase is quiescent again (Lemma 6 / Corollary 7 in the wild)",
    },
    "signal.granted": {
        "kind": "counter",
        "description": "Signal grants (token holder admitted)",
    },
    "signal.blocked": {
        "kind": "counter",
        "description": "Signal blocks (token held but signal := bot)",
    },
    "signal.granted.by_cell": {
        "kind": "counter",
        "description": "Signal grants, labeled by granting cell",
    },
    "signal.blocked.by_cell": {
        "kind": "counter",
        "description": "Signal blocks, labeled by blocking cell",
    },
    "signal.token_rotations": {
        "kind": "counter",
        "description": "post-grant token rotations (Lemma 9 fairness steps)",
    },
    "move.transfers": {
        "kind": "counter",
        "description": "entities transferred across a cell boundary "
        "(including into the target)",
    },
    "move.consumed": {
        "kind": "counter",
        "description": "entities consumed by the target cell",
    },
    "source.produced": {
        "kind": "counter",
        "description": "entities inserted by source cells",
    },
    "faults.failed": {
        "kind": "counter",
        "description": "fail transitions applied by the injector",
    },
    "faults.recovered": {
        "kind": "counter",
        "description": "recover transitions applied by the injector",
    },
    "monitors.violations": {
        "kind": "counter",
        "description": "property violations recorded by the monitor suite",
    },
    "entities.in_flight": {
        "kind": "gauge",
        "description": "entities present in the system after the round",
    },
    "cells.failed": {
        "kind": "gauge",
        "description": "currently failed cells after the round",
    },
    "trace.events": {
        "kind": "counter",
        "description": "protocol events emitted by the tracer this run",
    },
    "trace.evicted": {
        "kind": "counter",
        "description": "events overwritten by a full ring-buffer trace sink "
        "(the bounded-history cost, counted instead of silent)",
    },
    "sink.dropped": {
        "kind": "counter",
        "description": "events evicted unsent by the serve buffer under the "
        "drop-oldest backpressure policy",
    },
    "sink.delivered": {
        "kind": "counter",
        "description": "events delivered to the serve sink (batched)",
    },
    "sink.batches": {
        "kind": "counter",
        "description": "batches committed to the serve sink",
    },
    "serve.commands": {
        "kind": "counter",
        "description": "service commands applied by the serve loop",
    },
    "serve.command_errors": {
        "kind": "counter",
        "description": "service commands rejected with a structured error",
    },
    "serve.heals": {
        "kind": "counter",
        "description": "shard healing-log entries forwarded as service "
        "events by the serve loop",
    },
    "sweep.points_completed": {
        "kind": "counter",
        "description": "sweep points that returned a result",
    },
    "sweep.retries": {
        "kind": "counter",
        "description": "point retries scheduled by the sweep supervisor",
    },
    "sweep.errors": {
        "kind": "counter",
        "description": "point attempts that raised an exception",
    },
    "sweep.timeouts": {
        "kind": "counter",
        "description": "point attempts killed for exceeding the per-point timeout",
    },
    "sweep.worker_deaths": {
        "kind": "counter",
        "description": "worker processes that vanished mid-point",
    },
    "sweep.point_failures": {
        "kind": "counter",
        "description": "points that exhausted their retry budget",
    },
    "shard.deaths": {
        "kind": "counter",
        "description": "shard workers declared dead (exit, heartbeat "
        "timeout, or unrecoverable channel corruption)",
    },
    "shard.heals": {
        "kind": "counter",
        "description": "dead shards respawned from an authoritative "
        "boundary snapshot",
    },
    "shard.respawn_rounds": {
        "kind": "histogram",
        "description": "rounds from a shard respawn until the Route phase "
        "is quiescent again (the Lemma 6 healing horizon, observed)",
    },
    "channel.retries": {
        "kind": "counter",
        "description": "inter-shard requests retransmitted after a "
        "timeout or garbled reply",
    },
    "channel.timeouts": {
        "kind": "counter",
        "description": "inter-shard request timeouts (before retry "
        "accounting; a death needs retries to exhaust too)",
    },
    "commodity.produced": {
        "kind": "counter",
        "description": "entities produced, labeled by commodity "
        "(multi-commodity runs only)",
    },
    "commodity.consumed": {
        "kind": "counter",
        "description": "entities delivered to their commodity's target, "
        "labeled by commodity (multi-commodity runs only)",
    },
    "commodity.in_flight": {
        "kind": "gauge",
        "description": "entities currently in flight, labeled by "
        "commodity (multi-commodity runs only)",
    },
}


def _is_truthy(value: Optional[str]) -> bool:
    return value is not None and value.strip().lower() in _TRUTHY


@dataclass(frozen=True)
class ObservabilityConfig:
    """What to observe: metrics, event tracing, or both.

    ``trace_path`` of ``None`` disables tracing; a ``.jsonl`` path names
    one output file; any other path is treated as a directory receiving
    one ``trace-<fingerprint>.jsonl`` per run. ``trace_buffer`` (used
    when tracing is requested without a path, e.g. from the API) bounds
    an in-memory ring buffer instead.
    """

    metrics: bool = False
    trace_path: Optional[str] = None
    trace_buffer: Optional[int] = None
    trace_sink: Optional[object] = None
    """An explicit, pre-built sink object (anything with
    ``write``/``flush``/``close``) the tracer should emit into, taking
    precedence over ``trace_path``/``trace_buffer``. In-process
    consumers — ``repro.serve``'s batched event buffer, capture-style
    tests — use this; it has no environment-variable form."""

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None) -> "ObservabilityConfig":
        """Read ``REPRO_METRICS`` / ``REPRO_TRACE`` from the environment."""
        env = os.environ if environ is None else environ
        return cls(
            metrics=_is_truthy(env.get(ENV_METRICS)),
            trace_path=env.get(ENV_TRACE) or None,
        )

    @property
    def tracing(self) -> bool:
        """True when event tracing is requested (sink, path, or buffer)."""
        return (
            self.trace_sink is not None
            or self.trace_path is not None
            or self.trace_buffer is not None
        )

    @property
    def enabled(self) -> bool:
        """True when anything at all is being observed."""
        return self.metrics or self.tracing

    def trace_file(self, fingerprint: Optional[str]) -> Optional[Path]:
        """Resolve the output file for one run (None = ring buffer)."""
        if self.trace_path is None:
            return None
        path = Path(self.trace_path)
        if path.suffix == ".jsonl":
            return path
        return path / f"trace-{fingerprint or 'unconfigured'}.jsonl"


class SimulationInstrumentation:
    """Per-run observability: one registry and/or tracer per simulation.

    Built by the :class:`~repro.sim.simulator.Simulator` when its
    :class:`ObservabilityConfig` enables anything. ``registry`` is the
    run's :class:`~repro.obs.metrics.MetricsRegistry` (None when metrics
    are off); ``tracer`` the run's
    :class:`~repro.obs.tracer.ProtocolTracer` (None when tracing is off).
    """

    def __init__(
        self,
        config: ObservabilityConfig,
        fingerprint: Optional[str] = None,
    ):
        self.config = config
        self.registry: Optional[MetricsRegistry] = (
            MetricsRegistry() if config.metrics else None
        )
        self.tracer: Optional[ProtocolTracer] = None
        if config.tracing:
            if config.trace_sink is not None:
                sink = config.trace_sink
            else:
                path = config.trace_file(fingerprint)
                sink = (
                    JsonlSink(path, fingerprint)
                    if path is not None
                    else RingBufferSink(capacity=config.trace_buffer or 10_000)
                )
            self.tracer = ProtocolTracer(sink, fingerprint)
        self._disrupted_round: Optional[int] = None
        self._finalized = False

    # ------------------------------------------------------------------

    def observe_round(self, system, report, decision) -> None:
        """Digest one round: fault decision + phase reports -> metrics/events.

        Called once per round, after monitors and metrics probes, with
        the :class:`~repro.core.system.RoundReport` of the round and the
        :class:`~repro.faults.model.FaultDecision` applied before it.
        """
        rnd = report.round_index
        if decision is not None and not decision.is_quiet:
            self._disrupted_round = rnd
        self._observe_faults(rnd, decision)
        self._observe_route(system, report.route, rnd)
        self._observe_signal(system, report.signal, rnd)
        self._observe_move(report.move, rnd)
        registry = self.registry
        if registry is not None:
            if report.produced:
                registry.counter("source.produced").inc(len(report.produced))
            registry.gauge("entities.in_flight").set(system.entity_count())
            registry.gauge("cells.failed").set(len(system.failed_cells()))
            if getattr(system, "is_multiflow", False):
                self._observe_commodities(system, report, registry)
        if self.tracer is not None:
            self.tracer.flush()

    def _observe_commodities(self, system, report, registry) -> None:
        """Per-commodity ledger metrics (multi-commodity systems only)."""
        for entity in report.produced:
            registry.counter(
                "commodity.produced", commodity=entity.commodity_name
            ).inc()
        for entity in report.move.consumed:
            registry.counter(
                "commodity.consumed", commodity=entity.commodity_name
            ).inc()
        for name, count in system.in_flight_by_commodity().items():
            registry.gauge("commodity.in_flight", commodity=name).set(count)

    def _observe_faults(self, rnd: int, decision) -> None:
        if decision is None or self.tracer is None:
            return
        for cid in sorted(decision.fail):
            self.tracer.emit("CellFailed", rnd, {"cell": list(cid)})
        for cid in sorted(decision.recover):
            self.tracer.emit("CellRecovered", rnd, {"cell": list(cid)})

    def _observe_route(self, system, route, rnd: int) -> None:
        registry = self.registry
        if registry is not None:
            if route.changed_dist:
                registry.counter("route.dist_changes").inc(len(route.changed_dist))
            if route.changed_next:
                registry.counter("route.next_changes").inc(len(route.changed_next))
            if self._disrupted_round is not None and route.quiescent:
                registry.histogram("route.stabilization_rounds").observe(
                    rnd - self._disrupted_round
                )
                self._disrupted_round = None
        if self.tracer is not None:
            for cid in sorted(set(route.changed_dist) | set(route.changed_next)):
                state = system.cells[cid]
                dist = state.dist if state.dist != float("inf") else None
                self.tracer.emit(
                    "RouteChanged",
                    rnd,
                    {
                        "cell": list(cid),
                        "dist": dist,
                        "next": list(state.next_id) if state.next_id else None,
                    },
                )

    def _observe_signal(self, system, signal, rnd: int) -> None:
        registry = self.registry
        if registry is not None:
            if signal.granted:
                registry.counter("signal.granted").inc(len(signal.granted))
            if signal.blocked:
                registry.counter("signal.blocked").inc(len(signal.blocked))
            if signal.rotated:
                registry.counter("signal.token_rotations").inc(len(signal.rotated))
            for cid in signal.granted:
                registry.counter(
                    "signal.granted.by_cell", cell=f"{cid[0]},{cid[1]}"
                ).inc()
            for cid in signal.blocked:
                registry.counter(
                    "signal.blocked.by_cell", cell=f"{cid[0]},{cid[1]}"
                ).inc()
        if self.tracer is not None:
            for cell, old, new in sorted(signal.rotated):
                self.tracer.emit(
                    "TokenRotated",
                    rnd,
                    {"cell": list(cell), "from": list(old), "to": list(new)},
                )
            for cell in sorted(signal.granted):
                self.tracer.emit(
                    "SignalGranted",
                    rnd,
                    {"cell": list(cell), "to": list(signal.granted[cell])},
                )
            reasons = getattr(signal, "block_reasons", {})
            for cell in sorted(signal.blocked):
                holder = system.cells[cell].token
                self.tracer.emit(
                    "SignalBlocked",
                    rnd,
                    {
                        "cell": list(cell),
                        "holder": list(holder) if holder else None,
                        # The core rule leaves block_reasons empty (its
                        # only cause is the gap); richer systems annotate.
                        "reason": reasons.get(cell, "gap"),
                    },
                )

    def _observe_move(self, move, rnd: int) -> None:
        registry = self.registry
        if registry is not None:
            if move.transfers:
                registry.counter("move.transfers").inc(len(move.transfers))
            if move.consumed:
                registry.counter("move.consumed").inc(len(move.consumed))
        if self.tracer is not None:
            for transfer in move.transfers:
                if transfer.consumed:
                    self.tracer.emit(
                        "EntityConsumed",
                        rnd,
                        {"uid": transfer.uid, "src": list(transfer.src)},
                    )
                else:
                    self.tracer.emit(
                        "EntityTransferred",
                        rnd,
                        {
                            "uid": transfer.uid,
                            "src": list(transfer.src),
                            "dst": list(transfer.dst),
                        },
                    )

    # ------------------------------------------------------------------

    def finalize(self) -> Optional[Dict]:
        """Close the tracer and return the metrics dict (idempotent).

        The returned dict is what lands on
        ``SimulationResult.metrics`` — fully deterministic, so it
        participates in serial-vs-parallel equality checks.
        """
        if self.tracer is not None:
            if self.registry is not None and not self._finalized:
                self.registry.counter("trace.events").inc(self.tracer.total_events)
                # A ring-buffer sink overwrites old events once full; the
                # count rides into the metrics so a soak run's bounded
                # history is visible, not a silent loss.
                evicted = getattr(self.tracer.sink, "evicted", 0)
                if evicted:
                    self.registry.counter("trace.evicted").inc(evicted)
            self.tracer.close()
        self._finalized = True
        if self.registry is None:
            return None
        return self.registry.to_dict()
