"""The protocol-event taxonomy and its schema registry.

Every observable protocol transition has one structured event type, with
a fixed field set, emitted as one JSON object per line by
:class:`repro.obs.tracer.ProtocolTracer`. The registry below is the
single source of truth for the schema: the tracer validates emissions
against it, ``cellularflows report`` summarizes by it, and the docs test
(``tests/test_docs.py``) diffs the event table of
``docs/observability.md`` against it — the documentation cannot drift
from the code without failing CI.

Schema evolution: bump :data:`TRACE_SCHEMA` whenever an event's field
set changes meaning or shape. Readers reject traces from a *newer*
schema with a clear error (see
:class:`repro.obs.exporters.TraceSchemaError`) instead of misreading
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Version stamp written into every trace header. Readers accept
#: schemas up to this value and refuse newer ones.
TRACE_SCHEMA = 1


@dataclass(frozen=True)
class EventType:
    """One entry of the event taxonomy: name, field set, meaning."""

    name: str
    fields: Tuple[str, ...]
    description: str


#: Reasons a Signal phase can force ``signal := bot`` while holding a
#: token. ``gap`` is currently the only cause in the paper's protocol
#: (Figure 5 lines 4-7); the field exists so extensions (multi-flow
#: type exclusion, lossy adverts) can add theirs without a schema bump.
BLOCK_REASONS: Dict[str, str] = {
    "gap": "the depth-d strip on the edge facing the token holder is occupied",
    "residency": (
        "the holder's commodity may not enter: the cell is resident to a "
        "different commodity (multi-commodity type exclusion)"
    ),
}

#: The complete event taxonomy, keyed by event-type name. Field order
#: here is documentation order; on the wire, every record is a JSON
#: object with canonically sorted keys.
EVENT_TYPES: Dict[str, EventType] = {
    event.name: event
    for event in (
        EventType(
            "RouteChanged",
            ("cell", "dist", "next"),
            "a cell's Route output changed this round (new dist/next; "
            "dist is null while unreachable)",
        ),
        EventType(
            "TokenRotated",
            ("cell", "from", "to"),
            "after a grant, the cell's fairness token moved to a "
            "different member of NEPrev (Lemma 9's rotation)",
        ),
        EventType(
            "SignalGranted",
            ("cell", "to"),
            "the cell granted its signal to the token-holding neighbor "
            "(the depth-d gap was clear)",
        ),
        EventType(
            "SignalBlocked",
            ("cell", "holder", "reason"),
            "the cell held a token but set signal := bot; the token "
            "stays parked on `holder` (see the reason table)",
        ),
        EventType(
            "EntityTransferred",
            ("uid", "src", "dst"),
            "an entity crossed a cell boundary and was snapped onto the "
            "entry edge of dst",
        ),
        EventType(
            "EntityConsumed",
            ("uid", "src"),
            "an entity crossed into the target cell and left the system",
        ),
        EventType(
            "CellFailed",
            ("cell",),
            "the environment crashed the cell before this round's update",
        ),
        EventType(
            "CellRecovered",
            ("cell",),
            "the environment recovered the cell before this round's update",
        ),
    )
}


def make_event(name: str, round_index: int, fields: Dict) -> Dict:
    """Build one validated event record (a plain JSON-ready dict).

    Raises ``ValueError`` for an unregistered type or a field set that
    does not match the registry exactly — emission bugs fail loudly at
    the source rather than producing unparseable traces.
    """
    event_type = EVENT_TYPES.get(name)
    if event_type is None:
        raise ValueError(f"unregistered event type: {name!r}")
    if set(fields) != set(event_type.fields):
        raise ValueError(
            f"{name} takes fields {sorted(event_type.fields)}, "
            f"got {sorted(fields)}"
        )
    record = {"round": round_index, "type": name}
    record.update(fields)
    return record
