"""Importable verification harnesses (shared by tests and the fuzzer).

The lockstep differential harness started life as test-support code
under ``tests/``; the fuzzing subsystem (:mod:`repro.fuzz`) turned it
into a library: its oracles run the same harness over generated
scenarios, so the machinery lives here where both can import it. The
``tests/differential.py`` shim re-exports everything for backwards
compatibility.
"""

from repro.testing.differential import (
    DifferentialMismatch,
    LockstepOutcome,
    canonical_report,
    canonical_state,
    random_config,
    run_lockstep,
    state_digest,
)

__all__ = [
    "DifferentialMismatch",
    "LockstepOutcome",
    "canonical_report",
    "canonical_state",
    "random_config",
    "run_lockstep",
    "state_digest",
]
