"""Differential lockstep harness: proving round-engine equivalence.

The round engines (:mod:`repro.sim.engine`) promise to be
*observationally identical*: the full-sweep reference and the dirty-set
incremental engine must produce the same state, reports, metrics,
monitor verdicts, and protocol-event traces for any configuration. This
module is the machinery that checks the promise. It runs the **same**
:class:`~repro.sim.config.SimulationConfig` under two engines in
lockstep and asserts, after every round:

* identical canonical state — every cell variable, entity positions at
  *exact* float equality, the RNG stream state, uid counters and the
  produced/consumed totals;
* identical phase reports, including list ordering (the observability
  layer derives events from them).

At the end of the horizon it further compares the deterministic result
records (:meth:`~repro.sim.results.SimulationResult.simulation_outputs`,
which embeds the metrics registry when observability is enabled) and the
monitor verdict lists. Trace files are written by the simulators
themselves when an :class:`~repro.obs.instrument.ObservabilityConfig`
with a ``trace_path`` is supplied; callers compare them byte-for-byte.

:func:`random_config` generates seeded, randomized (optionally faulting)
configurations so the test matrix in
``tests/test_engine_differential.py`` can sweep wide without
hand-written scenarios. This is library code (it also powers the
``differential`` fuzz oracle in :mod:`repro.fuzz.oracles`); the old
``tests/differential.py`` location remains as a re-export shim.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.params import Parameters
from repro.grid.paths import straight_path, turns_path
from repro.grid.topology import Direction
from repro.obs.instrument import ObservabilityConfig
from repro.sim.config import FaultSpec, SimulationConfig
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator, build_simulation


class DifferentialMismatch(AssertionError):
    """Two engines diverged: the lockstep harness found a difference."""

    def __init__(self, round_index: int, aspect: str, detail: str):
        super().__init__(
            f"engines diverged at round {round_index} ({aspect}): {detail}"
        )
        self.round_index = round_index
        self.aspect = aspect
        self.detail = detail


# ----------------------------------------------------------------------
# Canonical forms
# ----------------------------------------------------------------------


def _canonical_entity(entity) -> Tuple:
    # The commodity tag is None for single-flow entities, so the tuple
    # shape stays comparable across both system kinds.
    return (
        entity.uid,
        entity.x,
        entity.y,
        entity.birth_round,
        entity.side,
        getattr(entity, "commodity_name", None),
    )


def canonical_state(system) -> Tuple:
    """The full system state as one comparable tuple.

    Covers every cell variable (members with exact float positions,
    ``next``/``ne_prev``/``dist``/``token``/``signal``/``failed``), the
    round index, the uid counter, the produced/consumed totals, and the
    source RNG's internal state — so two equal canonical states really
    mean the systems are indistinguishable, now and in every future
    round.
    """
    cells = []
    for cid in sorted(system.cells):
        state = system.cells[cid]
        entry = (
            cid,
            tuple(
                _canonical_entity(state.members[uid])
                for uid in sorted(state.members)
            ),
            state.next_id,
            tuple(sorted(state.ne_prev)),
            state.dist,
            state.token,
            state.signal,
            state.failed,
        )
        # Multi-commodity cells extend the tuple with their per-commodity
        # routing tables; single-flow cells have neither attribute.
        dists = getattr(state, "dists", None)
        if dists is not None:
            entry = entry + (
                tuple(sorted(dists.items())),
                tuple(sorted(state.nexts.items())),
            )
        cells.append(entry)
    extras: Tuple = ()
    if getattr(system, "is_multiflow", False):
        extras = (
            tuple(sorted(system.produced_by_commodity.items())),
            tuple(sorted(system.consumed_by_commodity.items())),
        )
    return (
        tuple(cells),
        system.round_index,
        system._next_uid,
        system.total_produced,
        system.total_consumed,
        system.rng.getstate(),
    ) + extras


def state_digest(system) -> str:
    """Stable hex digest of :func:`canonical_state`.

    ``repr`` round-trips Python floats exactly, so equal digests mean
    bit-equal state (``inf`` included).
    """
    canonical = canonical_state(system)
    return hashlib.sha256(repr(canonical).encode("utf-8")).hexdigest()


def canonical_report(report) -> dict:
    """A round report as named comparable parts (ordering preserved).

    ``granted`` is a dict (insertion-ordered identically by both
    engines); it is canonicalized sorted since dict equality ignores
    order anyway and the observability layer sorts before emitting.
    """
    return {
        "round_index": report.round_index,
        "route.changed_dist": tuple(report.route.changed_dist),
        "route.changed_next": tuple(report.route.changed_next),
        "signal.granted": tuple(sorted(report.signal.granted.items())),
        "signal.blocked": tuple(report.signal.blocked),
        "signal.block_reasons": tuple(
            sorted(getattr(report.signal, "block_reasons", {}).items())
        ),
        "signal.rotated": tuple(report.signal.rotated),
        "move.moved_cells": tuple(report.move.moved_cells),
        "move.transfers": tuple(report.move.transfers),
        "move.consumed": tuple(_canonical_entity(e) for e in report.move.consumed),
        "produced": tuple(_canonical_entity(e) for e in report.produced),
    }


def _first_state_diff(state_a: Tuple, state_b: Tuple) -> str:
    for cell_a, cell_b in zip(state_a[0], state_b[0]):
        if cell_a != cell_b:
            return f"cell {cell_a[0]}: {cell_a!r} != {cell_b!r}"
    names = ("round_index", "next_uid", "total_produced", "total_consumed")
    for name, value_a, value_b in zip(names, state_a[1:5], state_b[1:5]):
        if value_a != value_b:
            return f"{name}: {value_a!r} != {value_b!r}"
    if state_a[5] != state_b[5]:
        return "source RNG streams diverged"
    return "states differ (no field-level diff found)"


# ----------------------------------------------------------------------
# The lockstep runner
# ----------------------------------------------------------------------


@dataclass
class LockstepOutcome:
    """What a clean (divergence-free) lockstep run produced."""

    config: SimulationConfig
    digests: List[str]
    """Per-round state digests — identical across both engines."""

    result_a: SimulationResult
    result_b: SimulationResult


def run_lockstep(
    config: SimulationConfig,
    engine_a: str = "reference",
    engine_b: str = "incremental",
    observability_a: Optional[ObservabilityConfig] = None,
    observability_b: Optional[ObservabilityConfig] = None,
    config_b: Optional[SimulationConfig] = None,
) -> LockstepOutcome:
    """Run ``config`` under both engines, comparing after every round.

    Raises :class:`DifferentialMismatch` at the *first* divergence with
    the round index and the offending aspect, so a failure pinpoints the
    exact protocol step where the engines disagree. Both simulators are
    built from the same config object (the engine is an override, not a
    config edit), so their result records embed identical config dicts.

    ``config_b`` runs side B from a *different* config — used to prove
    shard-count invariance, where only engine-tuning fields (``shards``)
    may differ. The embedded config dicts then legitimately differ, so
    the final result comparison excludes them; everything else (state,
    reports, verdicts, metrics) must still match exactly.
    """
    sim_a = build_simulation(config, observability=observability_a, engine=engine_a)
    sim_b = build_simulation(
        config_b if config_b is not None else config,
        observability=observability_b,
        engine=engine_b,
    )
    digests: List[str] = []
    for round_index in range(config.rounds):
        report_a = sim_a.step()
        report_b = sim_b.step()
        parts_a = canonical_report(report_a)
        parts_b = canonical_report(report_b)
        if parts_a != parts_b:
            aspect = next(k for k in parts_a if parts_a[k] != parts_b[k])
            raise DifferentialMismatch(
                round_index,
                aspect,
                f"{engine_a}={parts_a[aspect]!r} vs {engine_b}={parts_b[aspect]!r}",
            )
        state_a = canonical_state(sim_a.system)
        state_b = canonical_state(sim_b.system)
        if state_a != state_b:
            raise DifferentialMismatch(
                round_index, "state", _first_state_diff(state_a, state_b)
            )
        digests.append(hashlib.sha256(repr(state_a).encode("utf-8")).hexdigest())

    verdicts_a = _monitor_verdicts(sim_a)
    verdicts_b = _monitor_verdicts(sim_b)
    if verdicts_a != verdicts_b:
        raise DifferentialMismatch(
            config.rounds,
            "monitor verdicts",
            f"{engine_a}={verdicts_a!r} vs {engine_b}={verdicts_b!r}",
        )
    result_a = sim_a.summarize()
    result_b = sim_b.summarize()
    outputs_a = result_a.simulation_outputs()
    outputs_b = result_b.simulation_outputs()
    if config_b is not None:
        outputs_a.pop("config", None)
        outputs_b.pop("config", None)
    if outputs_a != outputs_b:
        fields = sorted(
            key
            for key in set(outputs_a) | set(outputs_b)
            if outputs_a.get(key) != outputs_b.get(key)
        )
        raise DifferentialMismatch(
            config.rounds, "result", f"fields differ: {fields}"
        )
    return LockstepOutcome(
        config=config, digests=digests, result_a=result_a, result_b=result_b
    )


def _monitor_verdicts(simulator: Simulator):
    if simulator.monitors is None:
        return None
    return [
        (v.round_index, v.property_name, v.detail)
        for v in simulator.monitors.violations
    ]


# ----------------------------------------------------------------------
# Randomized configuration generation
# ----------------------------------------------------------------------


def random_config(seed: int, faulting: bool = True) -> SimulationConfig:
    """A seeded, randomized configuration for the differential matrix.

    Varies grid size (4-7), corridor shape (straight or turning) versus
    free-form workloads (random target + 1-3 sources), protocol
    parameters, source policies, and horizon; with ``faulting`` (the
    default) a Bernoulli fail/recover model churns the grid, which is
    where dirty-set bookkeeping earns its keep. The generated config
    also uses ``seed`` as its own RNG seed, so every scenario is fully
    reproducible from one integer.
    """
    rng = random.Random(seed ^ 0x5EED)
    n = rng.randint(4, 7)
    params = Parameters(
        l=0.25,
        rs=rng.choice([0.03, 0.05, 0.08]),
        v=rng.choice([0.1, 0.15, 0.2]),
    )
    rounds = rng.randint(40, 80)
    source_policy = rng.choice(
        [
            "eager",
            "eager",
            f"bernoulli:{rng.choice(['0.3', '0.5', '0.8'])}",
            f"capped:{rng.randint(3, 12)}",
        ]
    )
    fault = (
        FaultSpec(pf=rng.uniform(0.01, 0.08), pr=rng.uniform(0.05, 0.3))
        if faulting
        else FaultSpec()
    )
    if rng.random() < 0.7:  # corridor workload
        turns = rng.choice([0, 0, 1, 2])
        if turns:
            path = turns_path((0, 0), n, turns)
        else:
            path = straight_path((rng.randrange(n), 0), Direction.NORTH, n)
        return SimulationConfig(
            grid_width=n,
            params=params,
            rounds=rounds,
            path=path.cells,
            source_policy=source_policy,
            fault=fault,
            seed=seed,
            # A recovery model would resurrect a failed complement, which
            # config validation rejects; fault-free corridors keep the
            # pre-failed complement half the time (a quiescent-heavy
            # grid, the incremental engine's best case).
            fail_complement=(not faulting) and rng.random() < 0.5,
        )
    cells = [(i, j) for i in range(n) for j in range(n)]
    tid = rng.choice(cells)
    others = [cell for cell in cells if cell != tid]
    sources = tuple(rng.sample(others, rng.randint(1, 3)))
    return SimulationConfig(
        grid_width=n,
        params=params,
        rounds=rounds,
        tid=tid,
        sources=sources,
        source_policy=source_policy,
        fault=fault,
        seed=seed,
    )


def random_multiflow_config(
    seed: int, faulting: bool = True
) -> SimulationConfig:
    """A seeded, randomized multi-commodity configuration.

    The multi-commodity leg of the lockstep matrix: 2-3 commodities
    with randomly placed distinct targets and 1-2 sources each, a
    sampled workload profile, every token policy, and (by default)
    Bernoulli fault churn with protected targets — recovery of a
    commodity target resets its own dist-0 row, which is exactly the
    bookkeeping the per-commodity dirty sets must get right.
    """
    from repro.multiflow.commodities import Commodity
    from repro.multiflow.workload import WORKLOAD_PROFILES

    rng = random.Random(seed ^ 0x310F)
    n = rng.randint(4, 6)
    params = Parameters(
        l=0.25,
        rs=rng.choice([0.03, 0.05, 0.08]),
        v=rng.choice([0.1, 0.15, 0.2]),
    )
    rounds = rng.randint(40, 80)
    cells = [(i, j) for i in range(n) for j in range(n)]
    count = rng.randint(2, 3)
    targets = rng.sample(cells, count)
    commodities = []
    for k, target in enumerate(targets):
        others = [cell for cell in cells if cell != target]
        sources = tuple(rng.sample(others, rng.randint(1, 2)))
        commodities.append(
            Commodity(name=f"c{k}", target=target, sources=sources)
        )
    fault = (
        FaultSpec(
            pf=rng.uniform(0.01, 0.06),
            pr=rng.uniform(0.08, 0.3),
            protect_target=True,
        )
        if faulting
        else FaultSpec()
    )
    return SimulationConfig(
        grid_width=n,
        params=params,
        rounds=rounds,
        commodities=tuple(commodities),
        workload=rng.choice(sorted(WORKLOAD_PROFILES)),
        token_policy=rng.choice(["roundrobin", "roundrobin", "random", "sticky"]),
        fault=fault,
        seed=seed,
    )
