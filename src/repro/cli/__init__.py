"""Command-line interface (``python -m repro`` / ``cellularflows``)."""

from repro.cli.main import main

__all__ = ["main"]
