"""``cellularflows`` — run, watch, and reproduce the paper's experiments.

Subcommands
-----------

``run``         one corridor simulation, printing the summary
``watch``       a short run with live ASCII rendering of the grid
``experiment``  reproduce a figure (fig7 / fig8 / fig9): table, plot, checks
``ablation``    run one of the design-choice ablations
``trace``       record a run to JSON-lines and re-verify it offline
                (``--events`` additionally records protocol events)
``report``      summarize a protocol-event trace (text / JSON / CSV)
``svg``         render a run's final state to an SVG file
``fuzz``        deterministic scenario fuzzing: ``run`` a seed range
                against the oracle registry, ``shrink`` a violating
                scenario to a minimal repro, ``replay`` a repro artifact
``serve``       run the simulation as a long-lived service: commands in
                (``--command-file`` JSONL), batched events out
                (``--sink stdout|jsonl|sqlite``); see docs/serving.md
``list``        list registered experiments

Observability toggles (see ``docs/observability.md``): set
``REPRO_METRICS=1`` to collect protocol metrics into every result, and
``REPRO_TRACE=<path>`` to stream protocol events as JSONL.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.ascii_plot import line_plot
from repro.analysis.tables import format_series_table
from repro.core.params import Parameters
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.grid.paths import straight_path, turns_path
from repro.grid.topology import Direction
from repro.multiflow.commodities import default_commodities
from repro.multiflow.workload import WORKLOAD_PROFILES
from repro.sim.config import FaultSpec, SimulationConfig
from repro.sim.simulator import build_simulation
from repro.viz.render import render_grid, render_routes


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--grid", type=int, default=8, help="grid side N (default 8)")
    parser.add_argument("--length", type=int, default=8, help="corridor length in cells")
    parser.add_argument("--turns", type=int, default=0, help="turns along the corridor")
    parser.add_argument("--rounds", type=int, default=2500, help="rounds K")
    parser.add_argument("--l", type=float, default=0.25, help="entity side length")
    parser.add_argument("--rs", type=float, default=0.05, help="safety spacing")
    parser.add_argument("--v", type=float, default=0.2, help="cell velocity")
    parser.add_argument("--pf", type=float, default=0.0, help="per-round failure prob")
    parser.add_argument("--pr", type=float, default=0.0, help="per-round recovery prob")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--no-monitors", action="store_true", help="skip runtime verification"
    )
    parser.add_argument(
        "--engine",
        choices=["reference", "incremental", "vectorized", "timed", "sharded"],
        default=None,
        help="round engine: full-sweep reference, dirty-set incremental, "
        "array-native vectorized, timed asynchronous rounds, "
        "or multi-process sharded districts "
        "(byte-identical results; default: REPRO_ENGINE, then reference)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="district count for --engine sharded (default: REPRO_SHARDS, "
        "then 2); ignored by the in-process engines",
    )
    parser.add_argument(
        "--commodities",
        type=int,
        default=0,
        metavar="N",
        help="multi-commodity mode: run N concurrent crossing commodities "
        "(repro.multiflow) instead of the single corridor; supports "
        "--engine reference/incremental only (see docs/multiflow.md)",
    )
    parser.add_argument(
        "--workload",
        choices=sorted(WORKLOAD_PROFILES),
        default=None,
        help="demand schedule for --commodities (default: steady)",
    )


def _build_config(args: argparse.Namespace) -> SimulationConfig:
    commodities = getattr(args, "commodities", 0)
    if commodities:
        return SimulationConfig(
            grid_width=args.grid,
            params=Parameters(l=args.l, rs=args.rs, v=args.v),
            rounds=args.rounds,
            commodities=default_commodities(args.grid, commodities),
            workload=args.workload,
            fault=FaultSpec(pf=args.pf, pr=args.pr, protect_target=True),
            seed=args.seed,
            monitors=not args.no_monitors,
            engine=args.engine,
            shards=args.shards,
        )
    if args.workload is not None:
        raise SystemExit("--workload requires --commodities")
    if args.turns > 0:
        path = turns_path((0, 0), args.length, args.turns)
    else:
        path = straight_path((1, 0), Direction.NORTH, args.length)
    faults = FaultSpec(pf=args.pf, pr=args.pr)
    return SimulationConfig(
        grid_width=args.grid,
        params=Parameters(l=args.l, rs=args.rs, v=args.v),
        rounds=args.rounds,
        path=path.cells,
        fail_complement=not faults.enabled,
        fault=faults,
        seed=args.seed,
        monitors=not args.no_monitors,
        engine=args.engine,
        shards=args.shards,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    simulator = build_simulation(_build_config(args))
    result = simulator.run()
    print(f"rounds:             {result.rounds}")
    print(f"produced:           {result.produced}")
    print(f"consumed:           {result.consumed}")
    print(f"throughput:         {result.throughput:.4f}")
    print(f"in flight:          {result.in_flight}")
    if result.mean_latency is not None:
        print(f"mean latency:       {result.mean_latency:.1f} rounds")
        print(f"p95 latency:        {result.p95_latency} rounds")
    print(f"mean blocked cells: {result.mean_blocked_cells:.2f}")
    print(f"failures/recovs:    {result.total_failures}/{result.total_recoveries}")
    print(f"monitor violations: {result.monitor_violations}")
    system = simulator.system
    if getattr(system, "is_multiflow", False):
        in_flight = system.in_flight_by_commodity()
        print("commodities (produced/consumed/in-flight):")
        for name in system.table.names():
            print(
                f"  {name}: {system.produced_by_commodity[name]}"
                f"/{system.consumed_by_commodity[name]}"
                f"/{in_flight[name]}"
            )
    if result.metrics is not None:
        counters = result.metrics.get("counters", {})
        print("metrics (REPRO_METRICS):")
        for name, value in counters.items():
            if "{" in name:
                continue  # labeled series: use trace --events + report
            print(f"  {name}: {value}")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    simulator = build_simulation(_build_config(args))
    every = max(1, args.rounds // args.frames)
    for round_index in range(args.rounds):
        simulator.step()
        if round_index % every == 0 or round_index == args.rounds - 1:
            print(f"--- round {round_index} "
                  f"(consumed so far: {simulator.meter.total_consumed}) ---")
            print(render_grid(simulator.system))
            if args.routes:
                print(render_routes(simulator.system))
    return 0


#: Exit code when sweep points failed structurally (supervision exhausted
#: their retries) — distinct from 1, which means a shape check failed.
EXIT_POINTS_FAILED = 3


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.sim.supervisor import PointFailureError

    experiment = get_experiment(args.name)
    rounds = args.rounds  # None = the paper's horizon
    print(f"# {experiment.name}: {experiment.description}")
    effective = rounds if rounds is not None else experiment.paper_rounds
    print(f"# horizon: {effective} rounds per point")
    checkpoint = Path(args.checkpoint) if args.checkpoint else None
    if args.resume and checkpoint is None:
        # Resuming without an explicit file: use the conventional location
        # (written by the previous run if it passed --resume/--checkpoint).
        checkpoint = Path(args.out or ".") / f"{experiment.name}.checkpoint.jsonl"
    if args.workers != 1:
        print(f"# workers: {args.workers}", file=sys.stderr)
    try:
        result = experiment.run(
            rounds=rounds,
            progress=lambda message: print(message, file=sys.stderr),
            workers=args.workers,
            checkpoint=checkpoint,
            resume=args.resume,
            point_timeout=args.point_timeout,
            max_retries=args.max_retries,
            strict=args.strict,
        )
    except PointFailureError as error:
        print(f"strict mode abort: {error}", file=sys.stderr)
        return EXIT_POINTS_FAILED
    if result.failures:
        for failure in result.failures:
            print(
                f"FAILED point {failure.label}: {failure.kind} after "
                f"{failure.attempts} attempt(s) — {failure.error_type}: "
                f"{failure.message}",
                file=sys.stderr,
            )
        print(
            f"# {len(result.failures)} of "
            f"{len(result.runs) + len(result.failures)} points failed; "
            f"tables and shape checks skipped",
            file=sys.stderr,
        )
        if args.out:
            out_dir = Path(args.out)
            json_path = result.save_json(out_dir / f"{experiment.name}.json")
            csv_path = result.save_csv(out_dir / f"{experiment.name}.csv")
            print(f"saved {json_path} and {csv_path} (partial)")
        return EXIT_POINTS_FAILED
    curves = experiment.series(result)
    x_label = {
        "fig7": "rs",
        "fig8": "turns",
        "fig9": "pf",
        "pathlen": "length",
    }[experiment.name]
    print(format_series_table(curves, x_label=x_label))
    print()
    print(line_plot(curves, x_label=x_label, y_label="throughput"))
    print()
    checks = experiment.shape_checks(result)
    for name, passed in checks.items():
        print(f"shape check {name}: {'PASS' if passed else 'FAIL'}")
    if args.out:
        out_dir = Path(args.out)
        json_path = result.save_json(out_dir / f"{experiment.name}.json")
        csv_path = result.save_csv(out_dir / f"{experiment.name}.csv")
        print(f"saved {json_path} and {csv_path}")
    return 0 if all(checks.values()) else 1


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.experiments import ablations

    if args.name == "token":
        rows = ablations.token_policy_ablation(rounds=args.rounds)
        print(
            format_table(
                ["policy", "throughput", "fairness"],
                [(r.policy, r.throughput, r.fairness) for r in rows],
            )
        )
    elif args.name == "unsafe":
        rows = ablations.unsafe_ablation(rounds=args.rounds)
        print(
            format_table(
                ["variant", "throughput", "safety violations"],
                [(r.variant, r.throughput, r.safety_violations) for r in rows],
            )
        )
    elif args.name == "centralized":
        rows = ablations.centralized_ablation(rounds=args.rounds)
        print(
            format_table(
                ["variant", "throughput", "outage rounds"],
                [(r.variant, r.throughput, r.outage_rounds) for r in rows],
            )
        )
    else:
        rows = ablations.source_policy_ablation(rounds=args.rounds)
        print(
            format_table(
                ["policy", "offered", "produced", "throughput"],
                [(r.policy, r.offered, r.produced, r.throughput) for r in rows],
            )
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.instrument import ObservabilityConfig
    from repro.sim.trace import TraceRecorder, replay_throughput, verify_trace

    observability = None
    if args.events:
        # Protocol-event tracing rides along with the state trace; metrics
        # come too so the event counts can be printed at the end.
        observability = ObservabilityConfig(metrics=True, trace_path=args.events)
    simulator = build_simulation(_build_config(args), observability=observability)
    recorder = TraceRecorder.for_system(simulator.system)
    for _ in range(args.rounds):
        report = simulator.step()
        recorder.observe(simulator.system, report)
    trace_path = recorder.save(args.out)
    print(f"trace written: {trace_path} ({args.rounds} rounds)")
    if simulator.obs is not None and simulator.obs.tracer is not None:
        simulator.obs.finalize()
        events_path = simulator.obs.tracer.sink.path
        print(
            f"events written: {events_path} "
            f"({simulator.obs.tracer.total_events} events; "
            f"summarize with `cellularflows report {events_path}`)"
        )
    violations = verify_trace(trace_path)
    print(f"offline verification: {len(violations)} violations")
    print(f"replayed throughput:  {replay_throughput(trace_path):.4f}")
    return 0 if not violations else 1


#: Exit code for an unreadable/mismatched trace file (``report``) —
#: distinct from 1, which means the file was read but is empty.
EXIT_BAD_TRACE = 2


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.exporters import (
        TraceSchemaError,
        load_events,
        render_report,
        save_summary_csv,
        save_summary_json,
        summarize_events,
    )

    try:
        header, events = load_events(args.trace)
    except FileNotFoundError:
        print(f"report: no such trace file: {args.trace}", file=sys.stderr)
        return EXIT_BAD_TRACE
    except TraceSchemaError as error:
        print(f"report: {error}", file=sys.stderr)
        return EXIT_BAD_TRACE
    summary = summarize_events(header, events)
    print(render_report(summary))
    if args.json:
        print(f"summary written: {save_summary_json(summary, args.json)}")
    if args.csv:
        print(f"summary written: {save_summary_csv(summary, args.csv)}")
    return 0 if summary["events_total"] else 1


def _cmd_svg(args: argparse.Namespace) -> int:
    from repro.viz.svg import save_svg

    simulator = build_simulation(_build_config(args))
    for _ in range(args.rounds):
        simulator.step()
    path = save_svg(
        simulator.system,
        args.out,
        title=f"round {args.rounds}, consumed {simulator.meter.total_consumed}",
    )
    print(f"svg written: {path}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    for name, experiment in sorted(EXPERIMENTS.items()):
        print(f"{name:8s} {experiment.description}")
    return 0


EXIT_FUZZ_VIOLATIONS = 4

#: Exit code when `serve` rejected any command (bad JSON, unknown
#: version/command, wrong fields) — distinct from 1, which means the
#: service ran clean but streamed live monitor violations.
EXIT_BAD_COMMAND = 5


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import FileCommandSource, ServeService, make_sink

    config = _build_config(args)
    if args.sink != "stdout" and not args.sink_path:
        print(
            f"serve: --sink {args.sink} requires --sink-path "
            f"(a directory for jsonl, a database file for sqlite)",
            file=sys.stderr,
        )
        return EXIT_BAD_COMMAND
    sink = make_sink(args.sink, path=args.sink_path)
    source = (
        FileCommandSource(args.command_file) if args.command_file else None
    )
    service = ServeService(
        config,
        sink,
        source=source,
        batch_size=args.batch_size,
        buffer_capacity=args.buffer_capacity,
        backpressure=args.backpressure,
        snapshot_every=args.snapshot_every,
        max_rounds=args.max_rounds,
    )
    try:
        service.run()
    except KeyboardInterrupt:
        # Operator stop is a normal shutdown: drain and close cleanly.
        service.finish()
    stats = service.stats()
    buffer = stats["buffer"]
    print(
        f"serve: {stats['rounds_served']} rounds, "
        f"{stats['commands_applied']} commands "
        f"({stats['command_errors']} rejected), "
        f"{buffer['delivered']} events delivered in {buffer['batches']} "
        f"batches ({buffer['dropped']} dropped), "
        f"{stats['violations']} violations "
        f"[stop: {stats['stop_reason']}]",
        file=sys.stderr,
    )
    if stats["command_errors"]:
        return EXIT_BAD_COMMAND
    if stats["violations"]:
        return 1
    return 0


def _parse_seed_range(spec: str) -> List[int]:
    """``START:COUNT`` (or a single seed) -> the explicit seed list."""
    if ":" in spec:
        start_text, count_text = spec.split(":", 1)
        start, count = int(start_text), int(count_text)
        if count <= 0:
            raise ValueError(f"seed count must be positive, got {count}")
        return list(range(start, start + count))
    return [int(spec)]


def _parse_oracles(spec: Optional[str]) -> Optional[List[str]]:
    if spec is None:
        return None
    return [name.strip() for name in spec.split(",") if name.strip()]


def _adversary_names() -> List[str]:
    """Registered adversary classes (lazy: parser building stays cheap)."""
    from repro.adversary.scripts import ADVERSARIES

    return sorted(ADVERSARIES)


def _cmd_fuzz_run(args: argparse.Namespace) -> int:
    from repro.fuzz.campaign import run_campaign
    from repro.fuzz.generator import generate_scenario
    from repro.fuzz.shrink import shrink_scenario, write_repro

    seeds = _parse_seed_range(args.seeds)
    progress = (lambda line: print(line, file=sys.stderr)) if args.verbose else (
        lambda line: None
    )
    result = run_campaign(
        seeds,
        oracle_names=_parse_oracles(args.oracles),
        workers=args.workers,
        point_timeout=args.point_timeout,
        max_retries=args.max_retries,
        progress=progress,
        adversary=args.adversary,
    )
    summary = result.summary_json()
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(summary)
    print(summary, end="")
    for outcome in result.failures:
        if args.shrink and args.repro_dir:
            shrunk = shrink_scenario(
                generate_scenario(outcome.seed, adversary=args.adversary),
                oracle_names=_parse_oracles(args.oracles),
            )
            path = write_repro(shrunk, args.repro_dir)
            print(f"seed {outcome.seed}: shrunk repro written: {path}", file=sys.stderr)
    if result.errors:
        return EXIT_POINTS_FAILED
    if result.failures:
        return EXIT_FUZZ_VIOLATIONS
    return 0


def _cmd_fuzz_shrink(args: argparse.Namespace) -> int:
    from repro.fuzz.generator import Scenario, generate_scenario
    from repro.fuzz.shrink import load_repro, shrink_scenario, write_repro

    if args.seed is not None:
        scenario = generate_scenario(args.seed, adversary=args.adversary)
    else:
        # Exit 2 on an unreadable/wrong-kind artifact, matching `report`.
        try:
            scenario = Scenario.from_dict(load_repro(args.repro)["scenario"])
        except (OSError, ValueError) as error:
            print(f"shrink: {error}", file=sys.stderr)
            return 2
    try:
        result = shrink_scenario(scenario, oracle_names=_parse_oracles(args.oracles))
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    path = write_repro(result, args.out)
    print(f"shrunk in {len(result.steps)} steps ({result.checks} oracle checks):")
    for step in result.steps:
        print(f"  - {step}")
    for violation in result.violations:
        print(f"  violation: {violation.to_dict()}")
    print(f"repro written: {path}")
    return 0


def _cmd_fuzz_replay(args: argparse.Namespace) -> int:
    from repro.fuzz.shrink import replay_repro

    # Exit 2 on an unreadable/wrong-kind artifact (e.g. a corpus
    # scenario, which is not a repro), matching `report`; exit 1 is
    # reserved for "loads fine but no longer reproduces".
    try:
        artifact, recomputed = replay_repro(
            args.repro, oracle_names=_parse_oracles(args.oracles)
        )
    except (OSError, ValueError) as error:
        print(f"replay: {error}", file=sys.stderr)
        return 2
    recorded = artifact["violations"]
    replayed = [violation.to_dict() for violation in recomputed]
    if replayed == recorded:
        print(f"reproduces: {len(replayed)} violation(s), identical to the artifact")
        for violation in replayed:
            print(f"  {violation}")
        return 0
    print("does NOT reproduce: oracles now report")
    for violation in replayed:
        print(f"  {violation}")
    print("but the artifact recorded")
    for violation in recorded:
        print(f"  {violation}")
    return 1


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="cellularflows",
        description="Safe and Stabilizing Distributed Cellular Flows (ICDCS 2010) "
        "— reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one corridor simulation")
    _add_run_arguments(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    watch_parser = subparsers.add_parser("watch", help="run with ASCII rendering")
    _add_run_arguments(watch_parser)
    watch_parser.add_argument("--frames", type=int, default=10, help="snapshots to show")
    watch_parser.add_argument("--routes", action="store_true", help="also show routes")
    watch_parser.set_defaults(handler=_cmd_watch)

    experiment_parser = subparsers.add_parser(
        "experiment", help="reproduce a paper figure"
    )
    experiment_parser.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment_parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="override the per-point horizon (default: the paper's K)",
    )
    experiment_parser.add_argument("--out", help="directory for JSON/CSV artifacts")
    experiment_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="run sweep points over N processes (0 = one per CPU; default 1)",
    )
    experiment_parser.add_argument(
        "--checkpoint",
        help="JSON-lines file recording each completed sweep point "
        "(default: <out>/<name>.checkpoint.jsonl when --resume is given)",
    )
    experiment_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip sweep points already recorded in the checkpoint file "
        "(a torn final line is dropped and re-run; records whose config "
        "fingerprint changed are rejected)",
    )
    experiment_parser.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        help="wall-clock seconds per point attempt; a point that exceeds it "
        "has its worker killed and the attempt counts as failed",
    )
    experiment_parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="re-runs per failing point before it is recorded as a "
        "structured failure (default 2; retries are bit-identical re-runs "
        "of the same seeded config)",
    )
    experiment_parser.add_argument(
        "--strict",
        action="store_true",
        help="fail fast: abort the sweep on the first point that exhausts "
        "its retries instead of degrading gracefully (exit code 3 either way "
        "when points fail)",
    )
    experiment_parser.set_defaults(handler=_cmd_experiment)

    ablation_parser = subparsers.add_parser(
        "ablation", help="run a design-choice ablation"
    )
    ablation_parser.add_argument(
        "name", choices=["token", "unsafe", "centralized", "source"]
    )
    ablation_parser.add_argument("--rounds", type=int, default=1500)
    ablation_parser.set_defaults(handler=_cmd_ablation)

    trace_parser = subparsers.add_parser(
        "trace", help="record a run to JSON-lines and verify it offline"
    )
    _add_run_arguments(trace_parser)
    trace_parser.add_argument("--out", default="trace.jsonl", help="output file")
    trace_parser.add_argument(
        "--events",
        default=None,
        help="also record protocol events (RouteChanged, SignalGranted, ...) "
        "to this JSONL file; summarize it with the `report` subcommand",
    )
    trace_parser.set_defaults(handler=_cmd_trace)

    report_parser = subparsers.add_parser(
        "report", help="summarize a protocol-event trace"
    )
    report_parser.add_argument(
        "trace", help="protocol-event JSONL file written by `trace --events` "
        "or REPRO_TRACE",
    )
    report_parser.add_argument("--json", help="also save the summary as JSON")
    report_parser.add_argument("--csv", help="also save the summary as CSV")
    report_parser.set_defaults(handler=_cmd_report)

    svg_parser = subparsers.add_parser(
        "svg", help="render a run's final state to SVG"
    )
    _add_run_arguments(svg_parser)
    svg_parser.add_argument("--out", default="state.svg", help="output file")
    svg_parser.set_defaults(handler=_cmd_svg)

    fuzz_parser = subparsers.add_parser(
        "fuzz", help="deterministic scenario fuzzing (run / shrink / replay)"
    )
    fuzz_subparsers = fuzz_parser.add_subparsers(dest="fuzz_command", required=True)

    fuzz_run = fuzz_subparsers.add_parser(
        "run", help="check a seed range against the oracle registry"
    )
    fuzz_run.add_argument(
        "--seeds",
        default="0:50",
        help="seed range START:COUNT, or one seed (default 0:50)",
    )
    fuzz_run.add_argument(
        "--oracles",
        default=None,
        help="comma-separated oracle names (default: the full registry)",
    )
    fuzz_run.add_argument(
        "--workers", type=int, default=1, help="worker processes (default 1)"
    )
    fuzz_run.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        help="wall-clock seconds per seed attempt",
    )
    fuzz_run.add_argument(
        "--max-retries",
        type=int,
        default=1,
        help="re-runs per crashed/timed-out seed (default 1)",
    )
    fuzz_run.add_argument("--out", help="also write the summary JSON here")
    fuzz_run.add_argument(
        "--shrink",
        action="store_true",
        help="shrink every violating seed and write repro artifacts",
    )
    fuzz_run.add_argument(
        "--repro-dir",
        default="fuzz-repros",
        help="directory for shrunk repro artifacts (default fuzz-repros/)",
    )
    fuzz_run.add_argument(
        "--verbose", action="store_true", help="per-seed progress on stderr"
    )
    fuzz_run.add_argument(
        "--adversary",
        default=None,
        choices=_adversary_names(),
        help="force every seed through one adversary class",
    )
    fuzz_run.set_defaults(handler=_cmd_fuzz_run)

    fuzz_shrink = fuzz_subparsers.add_parser(
        "shrink", help="delta-debug one violating scenario to a minimal repro"
    )
    shrink_input = fuzz_shrink.add_mutually_exclusive_group(required=True)
    shrink_input.add_argument("--seed", type=int, help="shrink generate_scenario(SEED)")
    shrink_input.add_argument("--repro", help="re-shrink an existing repro artifact")
    fuzz_shrink.add_argument(
        "--oracles", default=None, help="comma-separated oracle names"
    )
    fuzz_shrink.add_argument(
        "--out", default="fuzz-repros", help="artifact directory (default fuzz-repros/)"
    )
    fuzz_shrink.add_argument(
        "--adversary",
        default=None,
        choices=_adversary_names(),
        help="generate --seed through one adversary class (ignored with --repro)",
    )
    fuzz_shrink.set_defaults(handler=_cmd_fuzz_shrink)

    fuzz_replay = fuzz_subparsers.add_parser(
        "replay", help="re-run the oracles on a repro artifact"
    )
    fuzz_replay.add_argument("repro", help="repro JSON written by `fuzz shrink`")
    fuzz_replay.add_argument(
        "--oracles", default=None, help="comma-separated oracle names"
    )
    fuzz_replay.set_defaults(handler=_cmd_fuzz_replay)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the simulation as a long-lived event-streaming service",
    )
    _add_run_arguments(serve_parser)
    serve_parser.add_argument(
        "--sink",
        choices=["stdout", "jsonl", "sqlite"],
        default="stdout",
        help="where the event stream goes (see docs/serving.md; "
        "default stdout)",
    )
    serve_parser.add_argument(
        "--sink-path",
        default=None,
        help="sink destination: a directory of rotated segments for "
        "--sink jsonl, a database file for --sink sqlite",
    )
    serve_parser.add_argument(
        "--max-rounds",
        type=int,
        default=None,
        help="stop after N rounds (default: serve until a shutdown "
        "command arrives)",
    )
    serve_parser.add_argument(
        "--command-file",
        default=None,
        help="JSONL command file to tail (one {\"v\":1,\"cmd\":...} object "
        "per line; appended lines are picked up between rounds)",
    )
    serve_parser.add_argument(
        "--batch-size",
        type=int,
        default=64,
        help="events per sink commit (default 64)",
    )
    serve_parser.add_argument(
        "--buffer-capacity",
        type=int,
        default=4096,
        help="pending-event bound before backpressure engages (default 4096)",
    )
    serve_parser.add_argument(
        "--backpressure",
        choices=["block", "drop-oldest"],
        default="block",
        help="full-buffer policy: block the producer on the sink, or "
        "drop the oldest pending event and count sink.dropped "
        "(default block)",
    )
    serve_parser.add_argument(
        "--snapshot-every",
        type=int,
        default=50,
        help="rounds between service.snapshot events (default 50)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    list_parser = subparsers.add_parser("list", help="list experiments")
    list_parser.set_defaults(handler=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
