"""The protocol on three-dimensional rectangular partitions.

The paper's conclusion: "an extension to three dimensional rectangular
partitions follows in an obvious way". This module spells the obvious
out: unit-cube cells on an ``Nx x Ny x Nz`` lattice (6-neighborhoods),
cube entities of side ``l``, and the same Route / Signal / Move protocol
with the gap and separation predicates generalized per axis.

Safety becomes: any two entities in a cell have centers at least
``d = rs + l`` apart along *some* of the three axes. The Signal gap
check clears a depth-``d`` slab behind the face shared with the token
holder. All proofs carry over axis-by-axis; the runtime monitor here
re-verifies the generalized Theorem 5 empirically.

The module is self-contained (it reuses only the tolerance policy and
the token policies) so the 2-D core stays exactly the paper's object.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.policies import RoundRobinTokenPolicy, TokenPolicy
from repro.geometry.tolerance import strictly_greater, strictly_less, tol_ge, tol_le

CellId3 = Tuple[int, int, int]
INFINITY = math.inf


class Direction3D(Enum):
    """The six lattice directions."""

    EAST = (1, 0, 0)
    WEST = (-1, 0, 0)
    NORTH = (0, 1, 0)
    SOUTH = (0, -1, 0)
    UP = (0, 0, 1)
    DOWN = (0, 0, -1)

    @property
    def axis(self) -> int:
        """0, 1, or 2 — the axis this direction moves along."""
        return next(index for index, delta in enumerate(self.value) if delta != 0)

    @property
    def sign(self) -> int:
        return self.value[self.axis]

    def step(self, cell: CellId3) -> CellId3:
        """The identifier one step from ``cell`` in this direction."""
        dx, dy, dz = self.value
        return (cell[0] + dx, cell[1] + dy, cell[2] + dz)


def direction_between_3d(src: CellId3, dst: CellId3) -> Direction3D:
    """The direction from ``src`` to an adjacent cell ``dst``."""
    delta = tuple(b - a for a, b in zip(src, dst))
    for direction in Direction3D:
        if direction.value == delta:
            return direction
    raise ValueError(f"cells {src} and {dst} are not neighbors")


@dataclass(frozen=True)
class Grid3D:
    """A finite ``nx x ny x nz`` lattice of unit cubes."""

    nx: int
    ny: int
    nz: int

    def __post_init__(self) -> None:
        if min(self.nx, self.ny, self.nz) < 1:
            raise ValueError(f"grid dims must be positive: {self.nx}x{self.ny}x{self.nz}")

    @property
    def size(self) -> int:
        return self.nx * self.ny * self.nz

    def contains(self, cell: CellId3) -> bool:
        """True when ``cell`` is a valid identifier for this grid."""
        i, j, k = cell
        return 0 <= i < self.nx and 0 <= j < self.ny and 0 <= k < self.nz

    def require(self, cell: CellId3) -> CellId3:
        """Return ``cell`` if valid, else raise ``ValueError``."""
        if not self.contains(cell):
            raise ValueError(f"cell {cell} outside {self.nx}x{self.ny}x{self.nz} grid")
        return cell

    def cells(self) -> Iterator[CellId3]:
        """All identifiers, x fastest."""
        for k in range(self.nz):
            for j in range(self.ny):
                for i in range(self.nx):
                    yield (i, j, k)

    def neighbors(self, cell: CellId3) -> List[CellId3]:
        """The in-grid lattice neighbors of ``cell``."""
        self.require(cell)
        return [
            moved
            for direction in Direction3D
            if self.contains(moved := direction.step(cell))
        ]


@dataclass
class Entity3D:
    """A cube entity: uid plus center coordinates."""

    uid: int
    pos: List[float]  # [x, y, z]
    birth_round: int = 0

    def coordinate(self, axis: int) -> float:
        """The center coordinate along ``axis`` (0=x, 1=y, 2=z)."""
        return self.pos[axis]


def axis_separated_3d(a: Entity3D, b: Entity3D, d: float) -> bool:
    """Separation ``>= d`` along at least one of the three axes."""
    return any(tol_ge(abs(a.pos[axis] - b.pos[axis]), d) for axis in range(3))


@dataclass
class Cell3D:
    """Per-cell protocol state (the 3-D analogue of ``CellState``)."""

    cell_id: CellId3
    members: Dict[int, Entity3D] = field(default_factory=dict)
    next_id: Optional[CellId3] = None
    ne_prev: Set[CellId3] = field(default_factory=set)
    dist: float = INFINITY
    token: Optional[CellId3] = None
    signal: Optional[CellId3] = None
    failed: bool = False

    def entities(self) -> List[Entity3D]:
        """The member entities in stable uid order."""
        return [self.members[uid] for uid in sorted(self.members)]


class System3D:
    """The composed 3-D automaton: Route; Signal; Move per round.

    A deliberately lean version of :class:`repro.core.system.System`:
    sources insert at the face opposite the exit direction, the target
    consumes, fail/recover behave as in 2-D.
    """

    def __init__(
        self,
        grid: Grid3D,
        l: float,
        rs: float,
        v: float,
        tid: CellId3,
        sources: Tuple[CellId3, ...] = (),
        token_policy: Optional[TokenPolicy] = None,
        rng: Optional[random.Random] = None,
    ):
        if not 0 < v <= l < 1:
            raise ValueError(f"need 0 < v <= l < 1, got v={v}, l={l}")
        if rs < 0 or rs + l >= 1:
            raise ValueError(f"need 0 <= rs and rs + l < 1, got rs={rs}, l={l}")
        grid.require(tid)
        self.grid = grid
        self.l = l
        self.rs = rs
        self.v = v
        self.d = rs + l
        self.half_l = l / 2.0
        self.tid = tid
        self.sources = tuple(sorted(set(sources)))
        for source in self.sources:
            grid.require(source)
            if source == tid:
                raise ValueError("the target cannot be a source")
        self.token_policy = token_policy or RoundRobinTokenPolicy()
        self.rng = rng or random.Random(0)
        self.cells: Dict[CellId3, Cell3D] = {
            cid: Cell3D(cell_id=cid) for cid in grid.cells()
        }
        self.cells[tid].dist = 0.0
        self.round_index = 0
        self._next_uid = 0
        self.total_produced = 0
        self.total_consumed = 0

    # ------------------------------------------------------------------

    def fail(self, cid: CellId3) -> None:
        """Crash a cell (the paper's fail transition, 3-D)."""
        state = self.cells[self.grid.require(cid)]
        state.failed = True
        state.dist = INFINITY
        state.next_id = None

    def recover(self, cid: CellId3) -> None:
        """Un-crash a cell; the target also resets ``dist = 0``."""
        state = self.cells[self.grid.require(cid)]
        if not state.failed:
            return
        state.failed = False
        state.dist = 0.0 if cid == self.tid else INFINITY
        state.next_id = None
        state.token = None
        state.signal = None
        state.ne_prev = set()

    def entity_count(self) -> int:
        """Entities currently present across all cells."""
        return sum(len(state.members) for state in self.cells.values())

    def seed_entity(self, cid: CellId3, x: float, y: float, z: float) -> Entity3D:
        """Place a fresh entity at an absolute position (setup helper)."""
        entity = Entity3D(uid=self._next_uid, pos=[x, y, z], birth_round=self.round_index)
        self._next_uid += 1
        self.total_produced += 1
        self.cells[self.grid.require(cid)].members[entity.uid] = entity
        return entity

    # ------------------------------------------------------------------

    def update(self) -> int:
        """One synchronous round; returns entities consumed this round."""
        self._route_phase()
        self._signal_phase()
        consumed = self._move_phase()
        self._produce()
        self.round_index += 1
        self.total_consumed += consumed
        return consumed

    def _route_phase(self) -> None:
        snapshot = {
            cid: (INFINITY if state.failed else state.dist)
            for cid, state in self.cells.items()
        }
        for cid, state in self.cells.items():
            if state.failed or cid == self.tid:
                continue
            neighbors = self.grid.neighbors(cid)
            best = min(neighbors, key=lambda n: (snapshot[n], n))
            if snapshot[best] == INFINITY:
                state.dist = INFINITY
                state.next_id = None
            else:
                state.dist = snapshot[best] + 1.0
                state.next_id = best

    def _gap_clear(self, state: Cell3D, toward: Direction3D) -> bool:
        """A depth-d slab behind the face shared with ``toward`` is empty."""
        axis, sign = toward.axis, toward.sign
        origin = state.cell_id[axis]
        if sign > 0:
            boundary = origin + 1
            return all(
                tol_le(e.pos[axis] + self.half_l, boundary - self.d)
                for e in state.members.values()
            )
        boundary = origin
        return all(
            tol_ge(e.pos[axis] - self.half_l, boundary + self.d)
            for e in state.members.values()
        )

    def _signal_phase(self) -> None:
        ne_prev_map = {}
        for cid, state in self.cells.items():
            if state.failed:
                continue
            ne_prev_map[cid] = {
                nbr
                for nbr in self.grid.neighbors(cid)
                if not self.cells[nbr].failed
                and self.cells[nbr].next_id == cid
                and self.cells[nbr].members
            }
        for cid, ne_prev in ne_prev_map.items():
            state = self.cells[cid]
            state.ne_prev = ne_prev
            if state.token is not None and state.token not in ne_prev:
                state.token = None
            if state.token is None:
                state.token = self.token_policy.initial(ne_prev)
            if state.token is None:
                state.signal = None
                continue
            toward = direction_between_3d(cid, state.token)
            if self._gap_clear(state, toward):
                state.signal = state.token
                state.token = self.token_policy.rotate(ne_prev, state.token)
            else:
                state.signal = None

    def _move_phase(self) -> int:
        movers = []
        for cid, state in self.cells.items():
            if state.failed or state.next_id is None or not state.members:
                continue
            nxt_state = self.cells[state.next_id]
            if not nxt_state.failed and nxt_state.signal == cid:
                movers.append((cid, state.next_id))
        consumed = 0
        pending = []
        for cid, nxt in movers:
            state = self.cells[cid]
            toward = direction_between_3d(cid, nxt)
            axis, sign = toward.axis, toward.sign
            for entity in state.entities():
                entity.pos[axis] += sign * self.v
                origin = cid[axis]
                if sign > 0:
                    crossed = strictly_greater(entity.pos[axis] + self.half_l, origin + 1)
                else:
                    crossed = strictly_less(entity.pos[axis] - self.half_l, origin)
                if crossed:
                    pending.append((entity, cid, nxt, axis, sign))
        for entity, cid, nxt, axis, sign in pending:
            del self.cells[cid].members[entity.uid]
            if nxt == self.tid:
                consumed += 1
                continue
            # Snap the trailing face onto the shared boundary.
            if sign > 0:
                entity.pos[axis] = nxt[axis] + self.half_l
            else:
                entity.pos[axis] = nxt[axis] + 1 - self.half_l
            self.cells[nxt].members[entity.uid] = entity
        return consumed

    def _produce(self) -> None:
        for source in self.sources:
            state = self.cells[source]
            if state.failed:
                continue
            if state.next_id is None:
                # No route yet: wait, as the 2-D sources do (arbitrary
                # placement would break orientation symmetry and the
                # flat-3-D == 2-D equivalence).
                continue
            candidate = self._entry_face_center(state)
            if all(
                axis_separated_3d(candidate, other, self.d)
                for other in state.members.values()
            ):
                entity = Entity3D(
                    uid=self._next_uid,
                    pos=list(candidate.pos),
                    birth_round=self.round_index,
                )
                self._next_uid += 1
                self.total_produced += 1
                state.members[entity.uid] = entity

    def _entry_face_center(self, state: Cell3D) -> Entity3D:
        cid = state.cell_id
        center = [cid[0] + 0.5, cid[1] + 0.5, cid[2] + 0.5]
        assert state.next_id is not None, "callers ensure a route exists"
        exit_dir = direction_between_3d(cid, state.next_id)
        axis, sign = exit_dir.axis, exit_dir.sign
        if sign > 0:
            center[axis] = cid[axis] + self.half_l
        else:
            center[axis] = cid[axis] + 1 - self.half_l
        return Entity3D(uid=-1, pos=center)


def check_safe_3d(system: System3D) -> List[Tuple[CellId3, int, int]]:
    """Generalized Theorem 5: violating (cell, uid, uid) triples."""
    violations = []
    for cid, state in system.cells.items():
        entities = state.entities()
        for a in range(len(entities)):
            for b in range(a + 1, len(entities)):
                if not axis_separated_3d(entities[a], entities[b], system.d):
                    violations.append((cid, entities[a].uid, entities[b].uid))
    return violations


def check_containment_3d(system: System3D) -> List[Tuple[CellId3, int]]:
    """Generalized Invariant 1: entities protruding from their cube."""
    violations = []
    half = system.half_l
    for cid, state in system.cells.items():
        for entity in state.entities():
            for axis in range(3):
                lo, hi = cid[axis] + half, cid[axis] + 1 - half
                if not (tol_ge(entity.pos[axis], lo) and tol_le(entity.pos[axis], hi)):
                    violations.append((cid, entity.uid))
                    break
    return violations
