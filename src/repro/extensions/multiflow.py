"""Multiple entity types with distinct targets (future-work extension).

The paper's conclusion asks for "flow control of multiple types of
entities with arbitrary flow patterns". The fundamental tension: the
cell coupling forces *all* entities in a cell to move identically, but
entities of different flows want different directions.

This extension resolves it with a **type-exclusive cell discipline**:

* every cell runs one routing table *per flow* (the same self-stabilizing
  Route rule, one target each);
* a cell may only contain entities of a single flow at a time — its
  *resident flow*;
* Signal considers inbound neighbors of *any* flow, but grants only when
  (a) the entry strip is clear (the paper's gap rule) and (b) the
  neighbor's resident flow matches the cell's resident flow, or the cell
  is empty;
* Move steers each cell toward the ``next`` of its resident flow.

Safety is inherited unchanged (the gap/separation reasoning never used
flow identity). Per-flow progress holds on flow-disjoint routes and,
under the fair token rotation, on shared cells that regularly drain.

**Known limitation (and why multiflow is genuinely future work):** when
two flows traverse shared cells in *opposite* directions — e.g. after a
crash forces both detours through the same corridor — the type-exclusive
discipline can gridlock: each flow's head cell waits for the other to
drain, forming a cycle in the waits-on graph. Single-flow systems cannot
form such cycles (``next`` strictly decreases ``dist``), which is
exactly why the paper's progress proof does not carry over unchanged.
:meth:`MultiFlowSystem.detect_waiting_cycles` makes the condition
observable; resolving it (priorities, capacity reservations, or
re-routing away from contended corridors) is left as the open problem it
is.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.entity import Entity
from repro.core.params import Parameters
from repro.core.policies import RoundRobinTokenPolicy, TokenPolicy
from repro.core.signal import gap_clear
from repro.core.cell import CellState
from repro.core.move import crossed_boundary
from repro.geometry.point import Point
from repro.geometry.separation import fits_among
from repro.grid.topology import CellId, Direction, Grid, direction_between

INFINITY = math.inf


@dataclass(frozen=True)
class Flow:
    """One traffic flow: name, target cell, and its source cells."""

    name: str
    target: CellId
    sources: Tuple[CellId, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("flow name must be nonempty")
        if self.target in self.sources:
            raise ValueError(f"flow {self.name}: target cannot be a source")


@dataclass
class _MultiCell:
    """Cell state with per-flow routing and a resident-flow tag."""

    base: CellState
    dist: Dict[str, float] = field(default_factory=dict)
    next_id: Dict[str, Optional[CellId]] = field(default_factory=dict)

    @property
    def resident_flow(self) -> Optional[str]:
        """The flow of the entities currently in the cell (None if empty)."""
        for entity in self.base.members.values():
            return _flow_of(entity)
        return None


def _flow_of(entity: Entity) -> str:
    return getattr(entity, "flow_name")


class MultiFlowSystem:
    """The type-exclusive multi-flow protocol on a shared grid."""

    def __init__(
        self,
        grid: Grid,
        params: Parameters,
        flows: List[Flow],
        token_policy: Optional[TokenPolicy] = None,
        rng: Optional[random.Random] = None,
    ):
        if not flows:
            raise ValueError("at least one flow is required")
        names = [flow.name for flow in flows]
        if len(set(names)) != len(names):
            raise ValueError("flow names must be unique")
        self.grid = grid
        self.params = params
        self.flows: Dict[str, Flow] = {flow.name: flow for flow in flows}
        for flow in flows:
            grid.require(flow.target)
            for source in flow.sources:
                grid.require(source)
        self.token_policy = token_policy or RoundRobinTokenPolicy()
        self.rng = rng or random.Random(0)
        self.cells: Dict[CellId, _MultiCell] = {
            cid: _MultiCell(base=CellState(cell_id=cid)) for cid in grid.cells()
        }
        for cid, cell in self.cells.items():
            for name in self.flows:
                is_target = self.flows[name].target == cid
                cell.dist[name] = 0.0 if is_target else INFINITY
                cell.next_id[name] = None
        self.round_index = 0
        self._next_uid = 0
        self.total_produced: Dict[str, int] = {name: 0 for name in self.flows}
        self.total_consumed: Dict[str, int] = {name: 0 for name in self.flows}

    # ------------------------------------------------------------------

    def fail(self, cid: CellId) -> None:
        """Crash a cell: every flow observes it as dist = infinity."""
        cell = self.cells[self.grid.require(cid)]
        cell.base.failed = True
        for name in self.flows:
            cell.dist[name] = INFINITY
            cell.next_id[name] = None

    def entity_count(self) -> int:
        """Entities currently present across all cells and flows."""
        return sum(len(cell.base.members) for cell in self.cells.values())

    def entities_of_flow(self, name: str) -> int:
        """In-flight entities belonging to one flow."""
        return sum(
            1
            for cell in self.cells.values()
            for entity in cell.base.members.values()
            if _flow_of(entity) == name
        )

    # ------------------------------------------------------------------

    def update(self) -> Dict[str, int]:
        """One synchronous round; returns per-flow consumption counts."""
        self._route_phase()
        self._signal_phase()
        consumed = self._move_phase()
        self._produce()
        self.round_index += 1
        for name, count in consumed.items():
            self.total_consumed[name] += count
        return consumed

    def _route_phase(self) -> None:
        for name, flow in self.flows.items():
            snapshot = {
                cid: (INFINITY if cell.base.failed else cell.dist[name])
                for cid, cell in self.cells.items()
            }
            for cid, cell in self.cells.items():
                if cell.base.failed or cid == flow.target:
                    continue
                neighbors = self.grid.neighbors(cid)
                best = min(neighbors, key=lambda n: (snapshot[n], n))
                if snapshot[best] == INFINITY:
                    cell.dist[name] = INFINITY
                    cell.next_id[name] = None
                else:
                    cell.dist[name] = snapshot[best] + 1.0
                    cell.next_id[name] = best

    def _moving_direction(self, cid: CellId) -> Optional[CellId]:
        """Where this cell currently wants to send its entities."""
        cell = self.cells[cid]
        resident = cell.resident_flow
        if resident is None:
            return None
        return cell.next_id[resident]

    def _signal_phase(self) -> None:
        ne_prev_map: Dict[CellId, Set[CellId]] = {}
        for cid, cell in self.cells.items():
            if cell.base.failed:
                continue
            inbound: Set[CellId] = set()
            for nbr in self.grid.neighbors(cid):
                nbr_cell = self.cells[nbr]
                if nbr_cell.base.failed or not nbr_cell.base.members:
                    continue
                if self._moving_direction(nbr) == cid:
                    inbound.add(nbr)
            ne_prev_map[cid] = inbound
        for cid, ne_prev in ne_prev_map.items():
            cell = self.cells[cid]
            state = cell.base
            state.ne_prev = ne_prev
            if state.token is not None and state.token not in ne_prev:
                state.token = None
            if state.token is None:
                state.token = self.token_policy.initial(ne_prev)
            if state.token is None:
                state.signal = None
                continue
            holder = self.cells[state.token]
            compatible = (
                cell.resident_flow is None
                or holder.resident_flow == cell.resident_flow
                # The target of the holder's flow consumes, no residency issue.
                or self.flows[holder.resident_flow].target == cid
            )
            toward = direction_between(cid, state.token)
            if compatible and gap_clear(state, toward, self.params):
                state.signal = state.token
                state.token = self.token_policy.rotate(ne_prev, state.token)
            else:
                state.signal = None

    def _move_phase(self) -> Dict[str, int]:
        consumed = {name: 0 for name in self.flows}
        movers: List[Tuple[CellId, CellId]] = []
        for cid, cell in self.cells.items():
            if cell.base.failed or not cell.base.members:
                continue
            nxt = self._moving_direction(cid)
            if nxt is None:
                continue
            nxt_cell = self.cells[nxt]
            if not nxt_cell.base.failed and nxt_cell.base.signal == cid:
                movers.append((cid, nxt))
        pending: List[Tuple[Entity, CellId, CellId, Direction]] = []
        for cid, nxt in movers:
            cell = self.cells[cid]
            toward = direction_between(cid, nxt)
            for entity in cell.base.entities():
                entity.translate(toward, self.params.v)
                if crossed_boundary(entity, cid, toward, self.params.half_l):
                    pending.append((entity, cid, nxt, toward))
        for entity, cid, nxt, toward in pending:
            self.cells[cid].base.remove_entity(entity.uid)
            flow = _flow_of(entity)
            if self.flows[flow].target == nxt:
                consumed[flow] += 1
            else:
                entity.snap_to_entry_edge(nxt, toward, self.params.half_l)
                self.cells[nxt].base.add_entity(entity)
        return consumed

    def _produce(self) -> None:
        for name in sorted(self.flows):
            flow = self.flows[name]
            for source in flow.sources:
                cell = self.cells[source]
                if cell.base.failed:
                    continue
                resident = cell.resident_flow
                if resident is not None and resident != name:
                    continue  # type exclusivity: wait for the cell to drain
                if cell.next_id[name] is None:
                    continue  # no route yet: wait, as the core sources do
                candidate = self._entry_point(cell, name)
                centers = [e.center for e in cell.base.members.values()]
                if fits_among(candidate, centers, self.params.d):
                    entity = Entity(
                        uid=self._next_uid,
                        x=candidate.x,
                        y=candidate.y,
                        birth_round=self.round_index,
                        side=self.params.l,
                    )
                    entity.flow_name = name  # type: ignore[attr-defined]
                    self._next_uid += 1
                    self.total_produced[name] += 1
                    cell.base.add_entity(entity)

    def _entry_point(self, cell: _MultiCell, flow_name: str) -> Point:
        i, j = cell.base.cell_id
        half = self.params.half_l
        nxt = cell.next_id[flow_name]
        assert nxt is not None, "produce gates on a route existing"
        exit_dir = direction_between(cell.base.cell_id, nxt)
        if exit_dir is Direction.EAST:
            return Point(i + half, j + 0.5)
        if exit_dir is Direction.WEST:
            return Point(i + 1 - half, j + 0.5)
        if exit_dir is Direction.NORTH:
            return Point(i + 0.5, j + half)
        return Point(i + 0.5, j + 1 - half)

    # ------------------------------------------------------------------

    def check_safe(self) -> List[Tuple[CellId, int, int]]:
        """Theorem 5, unchanged: violating (cell, uid, uid) triples."""
        from repro.geometry.separation import axis_separated

        violations = []
        for cid, cell in self.cells.items():
            entities = cell.base.entities()
            for a in range(len(entities)):
                for b in range(a + 1, len(entities)):
                    if not axis_separated(
                        entities[a].center, entities[b].center, self.params.d
                    ):
                        violations.append((cid, entities[a].uid, entities[b].uid))
        return violations

    def detect_waiting_cycles(self) -> List[List[CellId]]:
        """Cycles in the waits-on graph (potential inter-flow gridlock).

        Cell ``c`` waits on ``n`` when ``c`` is nonempty, wants to move
        into ``n``, and ``n`` is nonempty too (so ``c`` cannot be granted
        until ``n`` drains). A cycle of such edges can never drain — the
        head-to-head deadlock discussed in the module docstring. Returns
        each cycle once, as a list of cell ids.
        """
        waits_on: Dict[CellId, CellId] = {}
        for cid, cell in self.cells.items():
            if cell.base.failed or not cell.base.members:
                continue
            nxt = self._moving_direction(cid)
            if nxt is None:
                continue
            nxt_cell = self.cells[nxt]
            if not nxt_cell.base.failed and nxt_cell.base.members:
                waits_on[cid] = nxt
        cycles: List[List[CellId]] = []
        visited: Set[CellId] = set()
        for start in sorted(waits_on):
            if start in visited:
                continue
            trail: List[CellId] = []
            seen_at: Dict[CellId, int] = {}
            cursor: Optional[CellId] = start
            while cursor is not None and cursor in waits_on and cursor not in visited:
                seen_at[cursor] = len(trail)
                trail.append(cursor)
                cursor = waits_on[cursor]
                if cursor in seen_at:
                    cycles.append(trail[seen_at[cursor]:])
                    break
            visited.update(trail)
        return cycles

    def check_type_exclusive(self) -> List[CellId]:
        """Cells currently holding entities of more than one flow."""
        offenders = []
        for cid, cell in self.cells.items():
            flows = {_flow_of(e) for e in cell.base.members.values()}
            if len(flows) > 1:
                offenders.append(cid)
        return offenders
