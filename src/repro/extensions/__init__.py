"""Extensions beyond the paper's core protocol.

The conclusion sketches several generalizations; two are implemented:

* :mod:`repro.extensions.grid3d` — "an extension to three dimensional
  rectangular partitions follows in an obvious way": the full protocol
  on an ``Nx x Ny x Nz`` lattice of unit cubes (6-neighborhoods, cube
  entities, per-axis separation over three axes).
* :mod:`repro.extensions.multiflow` — a first step toward "flow control
  of multiple types of entities": several flows with distinct targets
  sharing the grid, under a type-exclusive cell discipline that preserves
  the movement coupling, safety, and per-flow progress.
"""

from repro.extensions.grid3d import (
    Cell3D,
    Direction3D,
    Entity3D,
    Grid3D,
    System3D,
    check_safe_3d,
)
from repro.extensions.multiflow import Flow, MultiFlowSystem

__all__ = [
    "Cell3D",
    "Direction3D",
    "Entity3D",
    "Flow",
    "Grid3D",
    "MultiFlowSystem",
    "System3D",
    "check_safe_3d",
]
