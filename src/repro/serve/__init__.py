"""``repro.serve``: the simulation as a long-running streaming service.

The serve subsystem turns a batch simulation into an operable service:
a command protocol in (:mod:`repro.serve.commands`), a batched event
stream out (:mod:`repro.serve.buffer` feeding the pluggable sinks of
:mod:`repro.serve.sinks`), live monitor verdicts and shard-heal events
in between (:mod:`repro.serve.service`), and soak oracles to judge the
whole thing over time (:mod:`repro.serve.oracles`). The CLI front door
is ``repro serve`` / ``cellularflows serve``.
"""

from repro.serve.buffer import BACKPRESSURE_POLICIES, EventBuffer
from repro.serve.commands import (
    COMMAND_SCHEMA,
    COMMANDS,
    Command,
    CommandError,
    FileCommandSource,
    ScriptedCommandSource,
    parse_command,
    parse_command_line,
)
from repro.serve.oracles import (
    MemoryProbe,
    OracleVerdict,
    check_bounded_memory,
    check_monotone_consumed,
    check_zero_violations,
    soak_verdicts,
)
from repro.serve.service import (
    SERVICE_EVENTS,
    ServeService,
    build_service,
    serve_header,
)
from repro.serve.sinks import (
    SINKS,
    MemorySink,
    RotatingJsonlSink,
    ServeSink,
    SqliteSink,
    StdoutSink,
    canonical_line,
    make_sink,
)

__all__ = [
    "BACKPRESSURE_POLICIES",
    "COMMAND_SCHEMA",
    "COMMANDS",
    "Command",
    "CommandError",
    "EventBuffer",
    "FileCommandSource",
    "MemoryProbe",
    "MemorySink",
    "OracleVerdict",
    "RotatingJsonlSink",
    "SERVICE_EVENTS",
    "SINKS",
    "ScriptedCommandSource",
    "ServeService",
    "ServeSink",
    "SqliteSink",
    "StdoutSink",
    "build_service",
    "canonical_line",
    "check_bounded_memory",
    "check_monotone_consumed",
    "check_zero_violations",
    "make_sink",
    "parse_command",
    "parse_command_line",
    "serve_header",
    "soak_verdicts",
]
