"""The ``repro serve`` loop: a simulation run as a long-lived service.

:class:`ServeService` wires the pieces of the serve subsystem together
around a :class:`~repro.sim.stepper.ResumableStepper`:

* a **command source** (:mod:`repro.serve.commands`) queues operator
  commands — arrivals, fault/recover injections, target relocations,
  adversary activations, checkpoints, drain, shutdown — applied between
  rounds, each acknowledged (or rejected) as a structured service event;
* the simulation's **protocol events** stream straight into the
  :class:`~repro.serve.buffer.EventBuffer` through a
  :class:`~repro.obs.tracer.CallbackSink`, riding the same batched
  path to the pluggable sink;
* the **monitor suite** runs non-strict with a live verdict callback,
  so property violations appear in the stream the round they happen
  instead of only in a post-mortem summary;
* under the **sharded engine**, healing-log entries (worker deaths,
  heals, stabilizations, relocation redeploys) are forwarded as
  ``service.heal`` events via the engine's incremental cursor.

One turn of the loop (:meth:`tick`) is: apply due commands, step one
round, forward heal events, snapshot if due, pump the buffer. The whole
service is single-threaded and deterministic — producer and consumer
are phases of the same turn — which is what lets the soak oracle demand
byte-identical output from two runs of the same command schedule.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Dict, List, Optional

from repro.metrics.streaming import install_streaming_meters
from repro.obs.events import TRACE_SCHEMA
from repro.obs.instrument import ObservabilityConfig
from repro.obs.tracer import CallbackSink
from repro.serve.buffer import EventBuffer
from repro.serve.commands import (
    COMMAND_SCHEMA,
    Command,
    CommandError,
)
from repro.serve.sinks import ServeSink
from repro.sim.config import SimulationConfig
from repro.sim.stepper import ResumableStepper

#: Fault-decision history window kept by a serving simulator. Batch
#: runs keep 10k decisions for offline diagnosis; a service keeps a
#: shallow recent window — the full fault record is in the event stream.
SERVE_FAULT_HISTORY_LIMIT = 256

#: The service-event taxonomy (beyond the protocol events of
#: :mod:`repro.obs.events`): type name -> one-line meaning. Everything
#: the serve loop itself injects into the stream uses one of these.
SERVICE_EVENTS: Dict[str, str] = {
    "service.command": "a command was applied (carries the command and its result)",
    "service.command_error": "a command was rejected (structured code + message)",
    "service.snapshot": "periodic state digest: entities, failures, ledger counters",
    "service.checkpoint": "operator-requested authoritative state digest",
    "service.heal": "one shard healing-log entry (sharded engine only)",
    "service.violation": "a monitored property failed this round (live verdict)",
    "service.drained": "an operator drain flushed the buffer to the sink",
    "service.stopped": "the loop ended (carries the reason)",
}


def serve_header(fingerprint: Optional[str] = None) -> Dict:
    """The header record opening every serve event stream."""
    header: Dict = {
        "kind": "serve-events",
        "schema": TRACE_SCHEMA,
        "command_schema": COMMAND_SCHEMA,
    }
    if fingerprint is not None:
        header["config_fingerprint"] = fingerprint
    return {"header": header}


class ServeService:
    """Drive one simulation as a command-consuming, event-streaming service.

    ``config`` is a normal :class:`~repro.sim.config.SimulationConfig`
    (its ``rounds`` is only the nominal horizon — the service runs until
    a shutdown command or ``max_rounds``). ``sink`` is any
    :class:`~repro.serve.sinks.ServeSink`; ``source`` any command source
    (``due(round) -> [(command, error), ...]``), or None for a
    command-less stream. Buffer shape and backpressure mirror
    :class:`~repro.serve.buffer.EventBuffer`.
    """

    def __init__(
        self,
        config: SimulationConfig,
        sink: ServeSink,
        source=None,
        engine: Optional[str] = None,
        batch_size: int = 64,
        buffer_capacity: int = 4096,
        backpressure: str = "block",
        snapshot_every: Optional[int] = 50,
        max_rounds: Optional[int] = None,
    ):
        if snapshot_every is not None and snapshot_every <= 0:
            raise ValueError(
                f"snapshot_every must be positive or None, got {snapshot_every}"
            )
        if max_rounds is not None and max_rounds <= 0:
            raise ValueError(
                f"max_rounds must be positive or None, got {max_rounds}"
            )
        self.config = config
        self.sink = sink
        self.source = source
        self.snapshot_every = snapshot_every
        self.max_rounds = max_rounds
        self.buffer = EventBuffer(
            sink,
            capacity=buffer_capacity,
            batch_size=batch_size,
            policy=backpressure,
        )
        # Protocol events flow from the tracer into the same buffer the
        # service events use: one stream, one ordering, one sink.
        observability = ObservabilityConfig(
            metrics=True,
            trace_sink=CallbackSink(self.buffer.publish),
        )
        self.stepper = ResumableStepper(
            config, observability=observability, engine=engine
        )
        simulator = self.stepper.simulator
        # A service has no batch horizon: swap the per-round list
        # accumulators for exact streaming aggregates so steady-state
        # memory stays flat over an indefinite run (the soak's bounded-
        # memory oracle holds the service to this).
        install_streaming_meters(simulator)
        # The injector's decision history defaults to a 10k-deep deque —
        # sized for batch horizons, linear growth for most of a long
        # soak. The service streams fault events to the sink anyway, so
        # a shallow window is all diagnosis needs.
        simulator.injector.history = deque(
            simulator.injector.history, maxlen=SERVE_FAULT_HISTORY_LIMIT
        )
        self.metrics = simulator.obs.registry
        self.buffer.metrics = self.metrics
        # Live verdicts: never die on a violation, stream it instead.
        self.monitors = simulator.monitors
        if self.monitors is not None:
            self.monitors.strict = False
            self.monitors.on_violation = self._on_violation
        self.rounds_served = 0
        self.commands_applied = 0
        self.command_errors = 0
        self.violations_seen = 0
        self.heals_forwarded = 0
        self._heal_cursor = 0
        self._started = False
        self._stopped = False
        self._stop_reason: Optional[str] = None
        self._finished = False

    # ------------------------------------------------------------------
    # Stream plumbing
    # ------------------------------------------------------------------

    def _publish(self, record: Dict) -> None:
        self.buffer.publish(record)

    def _service_event(self, event_type: str, fields: Dict) -> None:
        assert event_type in SERVICE_EVENTS, event_type
        record: Dict = {
            "round": self.stepper.round_index,
            "type": event_type,
        }
        record.update(fields)
        self._publish(record)

    def start(self) -> None:
        """Write the stream header (idempotent; ``tick`` calls it)."""
        if not self._started:
            self._started = True
            self.sink.write_header(serve_header(self.config.fingerprint()))

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------

    def tick(self) -> bool:
        """One service turn; returns False once the loop should end.

        Commands due at the current round apply first (a shutdown takes
        effect before the round it is scheduled at executes), then one
        protocol round runs, heal events and a due snapshot are
        published, and the buffer pumps complete batches to the sink.
        """
        self.start()
        if self._stopped:
            return False
        if self.max_rounds is not None and self.rounds_served >= self.max_rounds:
            self._stopped = True
            self._stop_reason = "max-rounds"
            return False
        self._apply_due_commands()
        if self._stopped:
            return False
        report = self.stepper.step()
        self.rounds_served += 1
        self._forward_heal_events()
        if (
            self.snapshot_every is not None
            and self.rounds_served % self.snapshot_every == 0
        ):
            self._publish_snapshot(report.round_index)
        self.buffer.pump()
        return True

    def run(self):
        """Serve until shutdown or ``max_rounds``; returns the summary."""
        while self.tick():
            pass
        return self.finish()

    def finish(self):
        """End the stream: stopped event, full drain, close (idempotent).

        Returns the run's :class:`~repro.sim.results.SimulationResult`
        (None on repeat calls). The drain-before-close ordering is the
        shutdown guarantee the property tests pin: every published event
        reaches the sink.
        """
        if self._finished:
            return None
        self._finished = True
        self.start()
        self._service_event(
            "service.stopped",
            {"reason": self._stop_reason or "finished", "rounds": self.rounds_served},
        )
        self.buffer.drain()
        result = self.stepper.summarize()
        self.sink.flush()
        self.sink.close()
        close = getattr(self.source, "close", None)
        if close is not None:
            close()
        return result

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def _apply_due_commands(self) -> None:
        if self.source is None:
            return
        for command, error in self.source.due(self.stepper.round_index):
            if error is not None:
                self._reject(error)
                continue
            try:
                self._apply_command(command)
            except CommandError as command_error:
                self._reject(command_error)
            if self._stopped:
                return

    def _reject(self, error: CommandError) -> None:
        self.command_errors += 1
        self.metrics.counter("serve.command_errors").inc()
        self._service_event("service.command_error", error.to_record())

    def _acknowledge(self, command: Command, result: Dict) -> None:
        self.commands_applied += 1
        self.metrics.counter("serve.commands").inc()
        fields: Dict = {"command": command.canonical()}
        fields.update(result)
        self._service_event("service.command", fields)

    def _apply_command(self, command: Command) -> None:
        name = command.name
        if name == "arrive":
            cell = self._require_cell(command.args["cell"])
            uid = self.stepper.arrive(cell)
            self._acknowledge(
                command, {"applied": uid is not None, "uid": uid}
            )
        elif name == "fail":
            self.stepper.fail(self._require_cell(command.args["cell"]))
            self._acknowledge(command, {"applied": True})
        elif name == "recover":
            self.stepper.recover(self._require_cell(command.args["cell"]))
            self._acknowledge(command, {"applied": True})
        elif name == "relocate":
            target = self._require_cell(command.args["target"])
            try:
                self.stepper.relocate_target(target)
            except ValueError as error:
                raise CommandError("bad-value", str(error))
            self._acknowledge(command, {"applied": True})
        elif name == "adversary":
            summary = self._activate_adversary(command.args["spec"])
            self._acknowledge(command, {"applied": True, **summary})
        elif name == "checkpoint":
            self._acknowledge(command, {"applied": True})
            self._publish_checkpoint()
        elif name == "drain":
            self._acknowledge(command, {"applied": True})
            # The event rides the drain it announces. It must not carry
            # delivered/pending counts — those depend on the batch shape,
            # and the stream is byte-identical across batch shapes;
            # ``produced`` is simulation-determined, so it may.
            self._service_event(
                "service.drained", {"produced": self.buffer.produced}
            )
            self.buffer.drain()
        else:
            assert name == "shutdown", name
            self._acknowledge(command, {"applied": True})
            self._stopped = True
            self._stop_reason = "shutdown"

    def _require_cell(self, cell):
        cid = tuple(cell)
        try:
            self.stepper.system.grid.require(cid)
        except Exception as error:
            raise CommandError("bad-value", str(error))
        return cid

    def _activate_adversary(self, spec: str) -> Dict:
        """Compile a campaign and splice it into the live injector.

        The compiled schedule is offset so round 0 of the script is the
        *current* round — activating ``regional_failure()`` at round 500
        plays the same storm the batch run plays from round 0. Scripted
        events compose on top of whatever model is already running (the
        scripted model is consulted first, keeping any Bernoulli rng
        stream unperturbed — same rule as ``build_simulation``).
        """
        from repro.adversary.scripts import compile_adversary
        from repro.faults.model import ComposedFaultModel, NoFaults
        from repro.faults.schedule import FaultEvent, ScriptedFaultModel

        try:
            campaign_config = replace(self.config, adversary=spec)
            compiled = compile_adversary(campaign_config)
        except (ValueError, KeyError) as error:
            raise CommandError("bad-value", f"adversary spec rejected: {error}")
        offset = self.stepper.round_index
        injector = self.stepper.simulator.injector
        events = [
            FaultEvent(event.round_index + offset, event.cell, event.kind)
            for event in compiled.events
        ]
        if events:
            scripted = ScriptedFaultModel(events)
            if isinstance(injector.model, NoFaults):
                injector.model = scripted
            else:
                injector.model = ComposedFaultModel((scripted, injector.model))
        if compiled.relocations:
            pending = list(injector.relocations[injector._relocation_pos :])
            pending.extend(
                (rnd + offset, tuple(cell))
                for rnd, cell in compiled.relocations
            )
            injector.relocations = tuple(sorted(pending))
            injector._relocation_pos = 0
        return {
            "events": len(events),
            "relocations": len(compiled.relocations),
        }

    # ------------------------------------------------------------------
    # Derived stream events
    # ------------------------------------------------------------------

    def _on_violation(self, violation) -> None:
        self.violations_seen += 1
        self._service_event(
            "service.violation",
            {
                "violation_round": violation.round_index,
                "property": violation.property_name,
                "detail": violation.detail,
            },
        )

    def _forward_heal_events(self) -> None:
        events_since = getattr(
            self.stepper.simulator.engine, "healing_events_since", None
        )
        if events_since is None:
            return
        entries, self._heal_cursor = events_since(self._heal_cursor)
        for entry in entries:
            self.heals_forwarded += 1
            self.metrics.counter("serve.heals").inc()
            self._service_event("service.heal", {"entry": entry})

    def _publish_snapshot(self, round_index: int) -> None:
        """Periodic ledger snapshot.

        Deliberately simulation-side only (no buffer/sink stats): the
        snapshot must be byte-identical across sinks and batch shapes,
        which sink-side counters are not.
        """
        system = self.stepper.system
        self._service_event(
            "service.snapshot",
            {
                "snapshot_round": round_index,
                "entities": system.entity_count(),
                "failed_cells": len(system.failed_cells()),
                "produced": system.total_produced,
                "consumed": self.stepper.simulator.meter.total_consumed,
                "violations": self.violations_seen,
            },
        )

    def _publish_checkpoint(self) -> None:
        from repro.testing.differential import state_digest

        self._service_event(
            "service.checkpoint",
            {
                "digest": state_digest(self.stepper.system),
                "config_fingerprint": self.config.fingerprint(),
            },
        )

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """The service ledger (buffer conservation stats included)."""
        return {
            "rounds_served": self.rounds_served,
            "commands_applied": self.commands_applied,
            "command_errors": self.command_errors,
            "violations": self.violations_seen,
            "heals_forwarded": self.heals_forwarded,
            "stop_reason": self._stop_reason,
            "buffer": self.buffer.stats(),
        }


def build_service(
    config: SimulationConfig,
    sink: ServeSink,
    schedule=None,
    **options,
) -> ServeService:
    """Convenience: a service over a scripted ``[(round, command), ...]``.

    The test harness's front door — ``schedule`` entries may be raw
    protocol objects (dicts) or validated :class:`Command` instances.
    """
    from repro.serve.commands import ScriptedCommandSource

    source = ScriptedCommandSource(schedule) if schedule is not None else None
    return ServeService(config, sink, source=source, **options)
