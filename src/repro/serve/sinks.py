"""Pluggable batched event sinks for the serve loop.

A sink receives *batches* of canonical event records from the
:class:`~repro.serve.buffer.EventBuffer` (the producer-consumer stage
with the backpressure policy) and commits each batch atomically-enough
for its medium:

* :class:`StdoutSink` — canonical JSONL to a stream; the pipe-friendly
  default (``repro serve | jq ...``).
* :class:`RotatingJsonlSink` — size/age-rotated JSONL segment files;
  every batch is written as **one** buffered write, and reopening after
  a kill repairs a torn final line, so no partial record survives a
  crash.
* :class:`SqliteSink` — one sqlite transaction per batch: a batch either
  commits whole or not at all, and rows round-trip to the exact
  canonical JSONL the other sinks emit.
* :class:`MemorySink` — in-process capture with an optional per-batch
  callback; the test-harness sink.

Serialization is canonical everywhere (sorted keys, compact separators,
one object per line) so the same event sequence through any sink — or
through the same sink with different batch sizes — yields byte-identical
canonical output. ``tests/test_serve.py`` enforces exactly that.

The :data:`SINKS` registry is the single source of truth for the sink
table in ``docs/serving.md`` (CI-diffed by ``tests/test_docs.py``) and
for the CLI's ``--sink`` choices.
"""

from __future__ import annotations

import json
import os
import sqlite3
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence


def canonical_line(record: Dict) -> str:
    """One canonical JSON line: sorted keys, compact separators."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class ServeSink:
    """Interface: commit batches of event records.

    ``write_batch`` must treat the batch as one unit of work; ``flush``
    pushes any buffering to the medium; ``close`` is idempotent.
    ``event_records()`` returns the committed event records (headers
    excluded) for verification — the byte-determinism oracle compares
    its canonical JSONL across sinks.
    """

    name: str = "abstract"

    def write_header(self, header: Dict) -> None:
        """Record the stream header (called once, before any batch)."""

    def write_batch(self, records: Sequence[Dict]) -> None:
        """Persist one committed batch of event records, atomically."""
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered output to the medium (no-op by default)."""

    def close(self) -> None:
        """Release resources (idempotent; no-op by default)."""

    def event_records(self) -> List[Dict]:
        """Committed event records, in order, headers excluded."""
        raise NotImplementedError(
            f"{type(self).__name__} cannot re-read its output"
        )

    def to_jsonl(self) -> str:
        """The committed event sequence as canonical JSONL (no header)."""
        return "".join(canonical_line(r) + "\n" for r in self.event_records())


class StdoutSink(ServeSink):
    """Canonical JSONL to a text stream (``sys.stdout`` by default)."""

    name = "stdout"

    def __init__(self, stream=None):
        self._stream = stream if stream is not None else sys.stdout

    def write_header(self, header: Dict) -> None:
        self._stream.write(canonical_line(header) + "\n")

    def write_batch(self, records: Sequence[Dict]) -> None:
        """Write the batch as canonical JSONL in one stream write."""
        # One write per batch: interleaving-safe under pipes.
        self._stream.write(
            "".join(canonical_line(record) + "\n" for record in records)
        )

    def flush(self) -> None:
        self._stream.flush()


def _repair_torn_tail(path: Path) -> int:
    """Truncate a trailing partial line; returns bytes removed.

    Batches are committed as single buffered writes ending in a newline,
    so a kill can leave at most one torn record at the tail — everything
    after the final newline. Dropping it restores the file to a prefix
    of complete records (the atomic-batch contract, JSONL edition).
    """
    data = path.read_bytes()
    if not data or data.endswith(b"\n"):
        return 0
    keep = data.rfind(b"\n") + 1  # 0 when no newline at all
    with path.open("wb") as handle:
        handle.write(data[:keep])
    return len(data) - keep


class RotatingJsonlSink(ServeSink):
    """Size/age-rotated JSONL segments in a directory.

    Segments are ``events-00000.jsonl``, ``events-00001.jsonl``, ... —
    each self-describing (the stream header reopens every segment). A
    new segment starts when the current one would exceed
    ``rotate_bytes``, or when it already spans ``rotate_rounds`` rounds
    (age measured in protocol rounds: the only clock a deterministic
    service has). A batch never straddles segments.

    Reopening an existing directory resumes into the last segment after
    torn-tail repair, so a killed service restarts onto a clean prefix.
    """

    name = "jsonl"

    def __init__(
        self,
        directory,
        rotate_bytes: int = 4_000_000,
        rotate_rounds: Optional[int] = None,
    ):
        if rotate_bytes <= 0:
            raise ValueError(f"rotate_bytes must be positive, got {rotate_bytes}")
        if rotate_rounds is not None and rotate_rounds <= 0:
            raise ValueError(
                f"rotate_rounds must be positive or None, got {rotate_rounds}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.rotate_bytes = rotate_bytes
        self.rotate_rounds = rotate_rounds
        self.repaired_bytes = 0
        self._header: Optional[Dict] = None
        self._handle = None
        self._segment_first_round: Optional[int] = None
        existing = self.files()
        if existing:
            last = existing[-1]
            self.repaired_bytes = _repair_torn_tail(last)
            self._index = int(last.stem.split("-")[1])
            self._handle = last.open("a")
            self._segment_first_round = self._first_round_of(last)
        else:
            self._index = -1  # first batch opens events-00000

    def files(self) -> List[Path]:
        """The segment files, in rotation order."""
        return sorted(self.directory.glob("events-*.jsonl"))

    def _first_round_of(self, path: Path) -> Optional[int]:
        with path.open() as handle:
            for line in handle:
                record = json.loads(line)
                if "header" not in record:
                    return record.get("round")
        return None

    def _open_next_segment(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
        self._index += 1
        path = self.directory / f"events-{self._index:05d}.jsonl"
        self._handle = path.open("w")
        self._segment_first_round = None
        if self._header is not None:
            self._handle.write(canonical_line(self._header) + "\n")

    def write_header(self, header: Dict) -> None:
        self._header = header
        if self._handle is None:
            self._open_next_segment()
        else:
            # Resumed segment: append the header so the restart boundary
            # is visible in the stream.
            self._handle.write(canonical_line(header) + "\n")

    def _should_rotate(self, payload_size: int, first_round) -> bool:
        if self._handle is None:
            return True
        if self._handle.tell() + payload_size > self.rotate_bytes and self._handle.tell() > 0:
            return True
        if (
            self.rotate_rounds is not None
            and self._segment_first_round is not None
            and first_round is not None
            and first_round - self._segment_first_round >= self.rotate_rounds
        ):
            return True
        return False

    def write_batch(self, records: Sequence[Dict]) -> None:
        """Append the batch to the current segment, rotating first if due."""
        if not records:
            return
        payload = "".join(canonical_line(record) + "\n" for record in records)
        first_round = records[0].get("round")
        if self._should_rotate(len(payload), first_round):
            self._open_next_segment()
        if self._segment_first_round is None:
            self._segment_first_round = first_round
        # One buffered write per batch: a kill tears at most the tail
        # line, which reopening repairs.
        self._handle.write(payload)
        self._handle.flush()

    def flush(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self.flush()
            self._handle.close()

    def event_records(self) -> List[Dict]:
        out: List[Dict] = []
        for path in self.files():
            with path.open() as handle:
                for line in handle:
                    record = json.loads(line)
                    if "header" not in record:
                        out.append(record)
        return out


class SqliteSink(ServeSink):
    """Events in a sqlite database, one transaction per batch.

    Stores the *canonical JSON text* of every record, so rows round-trip
    to byte-identical JSONL (``to_jsonl``) — the determinism oracle
    compares sqlite output against the stdout/JSONL sinks directly. A
    batch is one ``INSERT``-many transaction: a crash mid-batch rolls
    the whole batch back, leaving no partial record (sqlite's
    atomic-commit guarantee).
    """

    name = "sqlite"

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        with self._conn:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS events ("
                " seq INTEGER PRIMARY KEY AUTOINCREMENT,"
                " round INTEGER,"
                " type TEXT,"
                " record TEXT NOT NULL)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )

    def write_header(self, header: Dict) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("header", canonical_line(header)),
            )

    def write_batch(self, records: Sequence[Dict]) -> None:
        """Insert the batch as one all-or-nothing sqlite transaction."""
        if not records:
            return
        rows = [
            (record.get("round"), record.get("type"), canonical_line(record))
            for record in records
        ]
        with self._conn:  # one transaction: all-or-nothing
            self._conn.executemany(
                "INSERT INTO events (round, type, record) VALUES (?, ?, ?)",
                rows,
            )

    def flush(self) -> None:
        """No-op: every batch already committed its transaction."""

    def close(self) -> None:
        try:
            self._conn.close()
        except sqlite3.ProgrammingError:  # already closed
            pass

    def header(self) -> Optional[Dict]:
        """The stored stream header, or None before write_header."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'header'"
        ).fetchone()
        return json.loads(row[0]) if row else None

    def iter_lines(self) -> Iterator[str]:
        """The stored canonical JSON texts, in commit order."""
        for (text,) in self._conn.execute(
            "SELECT record FROM events ORDER BY seq"
        ):
            yield text

    def event_records(self) -> List[Dict]:
        return [json.loads(text) for text in self.iter_lines()]

    def to_jsonl(self) -> str:
        # Straight from the stored text: the round-trip is literal.
        return "".join(text + "\n" for text in self.iter_lines())


class MemorySink(ServeSink):
    """In-process capture sink with an optional per-batch callback.

    The service-mode test harness's sink: tests read ``records`` and
    ``batch_sizes`` directly, or hook ``callback(batch)`` to observe (or
    sabotage — see the backpressure matrix) delivery as it happens.
    """

    name = "memory"

    def __init__(self, callback=None):
        self.header: Optional[Dict] = None
        self.records: List[Dict] = []
        self.batch_sizes: List[int] = []
        self.flushes = 0
        self.closed = False
        self.callback = callback

    def write_header(self, header: Dict) -> None:
        self.header = header

    def write_batch(self, records: Sequence[Dict]) -> None:
        """Capture the batch in memory and invoke the per-batch callback."""
        batch = list(records)
        if self.callback is not None:
            self.callback(batch)
        self.records.extend(batch)
        self.batch_sizes.append(len(batch))

    def flush(self) -> None:
        self.flushes += 1

    def close(self) -> None:
        self.closed = True

    def event_records(self) -> List[Dict]:
        return list(self.records)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SinkSpec:
    """One registry entry: name, constructor, one-line description."""

    name: str
    factory: type
    description: str


#: The sink registry — ``docs/serving.md``'s sink table is CI-diffed
#: against this (names and descriptions must match exactly), and the
#: CLI's ``--sink`` choices come from it.
SINKS: Dict[str, SinkSpec] = {
    spec.name: spec
    for spec in (
        SinkSpec(
            "stdout",
            StdoutSink,
            "canonical JSONL to standard output (pipe-friendly default)",
        ),
        SinkSpec(
            "jsonl",
            RotatingJsonlSink,
            "size/age-rotated JSONL segment files with torn-tail repair "
            "on restart",
        ),
        SinkSpec(
            "sqlite",
            SqliteSink,
            "sqlite database, one atomic transaction per batch; rows "
            "round-trip to canonical JSONL",
        ),
        SinkSpec(
            "memory",
            MemorySink,
            "in-process capture with a per-batch callback (tests and "
            "embedding)",
        ),
    )
}


def make_sink(name: str, path=None, stream=None, **options) -> ServeSink:
    """Instantiate a registered sink.

    ``stdout`` accepts ``stream`` (defaults to ``sys.stdout``); ``jsonl``
    and ``sqlite`` require ``path`` (a directory / a database file);
    ``memory`` accepts a ``callback`` option.
    """
    if name not in SINKS:
        raise ValueError(f"unknown sink {name!r}; available: {sorted(SINKS)}")
    if name == "stdout":
        return StdoutSink(stream=stream)
    if name == "memory":
        return MemorySink(**options)
    if path is None:
        raise ValueError(f"sink {name!r} requires a path")
    return SINKS[name].factory(path, **options)
