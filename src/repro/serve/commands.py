"""The versioned JSON command protocol of ``repro serve``.

One command per JSON object::

    {"v": 1, "cmd": "fail", "cell": [2, 3], "at": 120}

``v`` is the protocol version (:data:`COMMAND_SCHEMA`); a newer version
is rejected with a structured error instead of being misread. ``cmd``
names an entry of the :data:`COMMANDS` registry; the remaining keys must
match the command's field set *exactly* (unknown or missing fields are
rejections, not warnings). ``at`` is optional everywhere: the round
index at which to apply the command (commands without it apply as soon
as they are read).

Rejections never crash the service: every invalid command becomes one
:class:`CommandError` carrying a machine-readable ``code``, which the
service emits as a ``service.command_error`` event and tallies in the
``serve.command_errors`` metric. The property tests in
``tests/test_serve.py`` drive arbitrary valid sequences (never crash)
and arbitrary invalid ones (always a structured rejection) through this
module.

The :data:`COMMANDS` registry is the single source of truth for the
command table in ``docs/serving.md``, CI-diffed by ``tests/test_docs.py``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Version stamp of the command protocol. Bump on any change to a
#: command's field set or meaning; the service rejects newer versions.
COMMAND_SCHEMA = 1

#: Keys with protocol-level meaning, allowed alongside any command.
_ENVELOPE_KEYS = frozenset({"v", "cmd", "at"})


@dataclass(frozen=True)
class CommandSpec:
    """One registry entry: name, required field set, meaning."""

    name: str
    fields: Tuple[str, ...]
    description: str


#: The complete command registry, keyed by command name.
COMMANDS: Dict[str, CommandSpec] = {
    spec.name: spec
    for spec in (
        CommandSpec(
            "arrive",
            ("cell",),
            "inject one entity arrival at the cell's entry edge (rejected "
            "when the cell is failed or has no safe slot)",
        ),
        CommandSpec(
            "fail",
            ("cell",),
            "crash the cell (the environment's fail transition; idempotent)",
        ),
        CommandSpec(
            "recover",
            ("cell",),
            "recover the cell (no-op on live cells)",
        ),
        CommandSpec(
            "relocate",
            ("target",),
            "move the routing destination to another cell mid-run",
        ),
        CommandSpec(
            "adversary",
            ("spec",),
            "activate a named adversary campaign (repro.adversary spec "
            "string), its schedule offset to start at the current round",
        ),
        CommandSpec(
            "checkpoint",
            (),
            "emit a service.checkpoint event carrying a digest of the "
            "authoritative state",
        ),
        CommandSpec(
            "drain",
            (),
            "flush every buffered event to the sink now",
        ),
        CommandSpec(
            "shutdown",
            (),
            "drain, emit service.stopped, and end the serve loop",
        ),
    )
}


class CommandError(ValueError):
    """A rejected command: machine-readable ``code`` + human message."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message

    def to_record(self) -> Dict[str, str]:
        """The structured-error payload of a ``service.command_error`` event."""
        return {"code": self.code, "error": self.message}


@dataclass(frozen=True)
class Command:
    """One validated command, ready for the service loop."""

    name: str
    args: Dict = field(default_factory=dict)
    at: Optional[int] = None

    def canonical(self) -> Dict:
        """The command as a canonical protocol object (round-trippable)."""
        record: Dict = {"v": COMMAND_SCHEMA, "cmd": self.name}
        record.update(self.args)
        if self.at is not None:
            record["at"] = self.at
        return record


def _require_cell(value, field_name: str) -> Tuple[int, int]:
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 2
        or not all(isinstance(c, int) and not isinstance(c, bool) for c in value)
    ):
        raise CommandError(
            "bad-value",
            f"{field_name} must be a [column, row] pair of integers, "
            f"got {value!r}",
        )
    return (value[0], value[1])


def parse_command(obj) -> Command:
    """Validate one protocol object into a :class:`Command`.

    Raises :class:`CommandError` with a stable ``code`` on any defect:
    ``bad-envelope`` (not an object / missing keys), ``bad-version``,
    ``unknown-command``, ``bad-fields`` (field set mismatch), or
    ``bad-value`` (a field with the wrong shape).
    """
    if not isinstance(obj, dict):
        raise CommandError(
            "bad-envelope", f"a command must be a JSON object, got {type(obj).__name__}"
        )
    version = obj.get("v")
    if version != COMMAND_SCHEMA:
        raise CommandError(
            "bad-version",
            f"unsupported command version {version!r} (this service speaks "
            f"v{COMMAND_SCHEMA})",
        )
    name = obj.get("cmd")
    if not isinstance(name, str) or name not in COMMANDS:
        raise CommandError(
            "unknown-command",
            f"unknown command {name!r}; available: {sorted(COMMANDS)}",
        )
    spec = COMMANDS[name]
    given = set(obj) - _ENVELOPE_KEYS
    if given != set(spec.fields):
        raise CommandError(
            "bad-fields",
            f"{name} takes fields {sorted(spec.fields)}, got {sorted(given)}",
        )
    at = obj.get("at")
    if at is not None and (
        not isinstance(at, int) or isinstance(at, bool) or at < 0
    ):
        raise CommandError(
            "bad-value", f"at must be a nonnegative round index, got {at!r}"
        )
    args: Dict = {}
    for field_name in spec.fields:
        value = obj[field_name]
        if field_name in ("cell", "target"):
            args[field_name] = _require_cell(value, field_name)
        elif field_name == "spec":
            if not isinstance(value, str) or not value.strip():
                raise CommandError(
                    "bad-value", f"spec must be a nonempty string, got {value!r}"
                )
            args[field_name] = value
        else:  # pragma: no cover - no other field kinds registered
            args[field_name] = value
    return Command(name=name, args=args, at=at)


def parse_command_line(text: str) -> Command:
    """Parse one JSONL command line (``bad-json`` on unparseable text)."""
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as error:
        raise CommandError("bad-json", f"unparseable command line: {error}")
    return parse_command(obj)


# ---------------------------------------------------------------------------
# Command sources
# ---------------------------------------------------------------------------

#: One item a source hands the service: ``(command, None)`` for a valid
#: command or ``(None, error)`` for a structured rejection.
ParseResult = Tuple[Optional[Command], Optional[CommandError]]


class ScriptedCommandSource:
    """An in-process command schedule: ``[(round, protocol_object), ...]``.

    The service-mode test harness's source. Protocol objects are parsed
    when due, so invalid entries exercise the same structured-rejection
    path a file source does. A :class:`Command` instance is accepted
    directly (already validated).
    """

    def __init__(self, schedule):
        self._schedule: List[Tuple[int, object]] = sorted(
            ((int(rnd), obj) for rnd, obj in schedule), key=lambda item: item[0]
        )
        self._pos = 0

    def due(self, round_index: int) -> List[ParseResult]:
        """Commands scheduled at or before ``round_index``, in order."""
        out: List[ParseResult] = []
        while (
            self._pos < len(self._schedule)
            and self._schedule[self._pos][0] <= round_index
        ):
            _, obj = self._schedule[self._pos]
            self._pos += 1
            if isinstance(obj, Command):
                out.append((obj, None))
                continue
            try:
                out.append((parse_command(obj), None))
            except CommandError as error:
                out.append((None, error))
        return out

    def exhausted(self) -> bool:
        """True once every scheduled command has been handed out."""
        return self._pos >= len(self._schedule)


class FileCommandSource:
    """Tail a JSONL command file (or FIFO) incrementally.

    Each :meth:`due` call reads newly appended *complete* lines (a
    partial trailing line is left for the next call), parses them, and
    returns what is due: commands with ``at`` in the future are held
    until their round. The file never needs to pre-exist — a service can
    start first and the operator ``echo`` commands in later.
    """

    def __init__(self, path):
        self.path = path
        self._handle = None
        self._tail = ""
        self._held: List[Tuple[int, Command]] = []

    def _read_new_lines(self) -> List[str]:
        if self._handle is None:
            try:
                self._handle = open(self.path, "r")
            except FileNotFoundError:
                return []
        chunk = self._handle.read()
        if not chunk:
            return []
        data = self._tail + chunk
        lines = data.split("\n")
        self._tail = lines.pop()  # "" when data ended in a newline
        return [line for line in lines if line.strip()]

    def due(self, round_index: int) -> List[ParseResult]:
        """Parse newly arrived lines; release held commands now due."""
        out: List[ParseResult] = []
        for line in self._read_new_lines():
            try:
                command = parse_command_line(line)
            except CommandError as error:
                out.append((None, error))
                continue
            if command.at is not None and command.at > round_index:
                self._held.append((command.at, command))
            else:
                out.append((command, None))
        if self._held:
            self._held.sort(key=lambda item: item[0])
            while self._held and self._held[0][0] <= round_index:
                out.append((self._held.pop(0)[1], None))
        return out

    def exhausted(self) -> bool:
        """A file source never declares itself exhausted (it is a tail)."""
        return False

    def close(self) -> None:
        """Release the tailed file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
