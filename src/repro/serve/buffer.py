"""The producer→consumer event buffer with explicit backpressure.

The serve loop is a single deterministic thread, so the producer
(protocol events, service events) and the consumer (batched sink
commits) are *phases of the same round*, not racing threads — which is
what makes two runs of the same command schedule byte-identical. The
buffer still models the essential production shape, patterned on
hygge's home→store flow batching: events accumulate in a bounded
pending queue; the service *pumps* the consumer once per round, which
drains complete batches into the sink; a sink that falls behind fills
the queue and triggers the backpressure policy:

* ``block`` — the producer stalls on the sink: publishing into a full
  buffer synchronously commits a batch to make room. Nothing is ever
  dropped and the queue depth stays bounded by ``capacity``; the cost
  is producer latency (exactly what blocking means).
* ``drop-oldest`` — the oldest pending event is evicted and counted in
  ``dropped`` (surfaced as the ``sink.dropped`` metric). The stream
  stays fresh and the producer never stalls; the cost is history.

Conservation is the buffer's contract and the backpressure tests pin it
exactly: ``produced == delivered + dropped + pending`` at every moment.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.serve.sinks import ServeSink

#: The two backpressure policies (name -> one-line meaning); the CLI's
#: ``--backpressure`` choices and docs/serving.md both draw on this.
BACKPRESSURE_POLICIES: Dict[str, str] = {
    "block": "stall the producer on the sink; never drop, bounded depth",
    "drop-oldest": "evict the oldest pending event, counting sink.dropped",
}


class EventBuffer:
    """Bounded pending queue between the event producers and one sink.

    ``capacity`` bounds the pending queue; ``batch_size`` is the commit
    unit. ``metrics`` (a :class:`repro.obs.metrics.MetricsRegistry`, or
    None) receives ``sink.delivered`` / ``sink.batches`` /
    ``sink.dropped`` counters.
    """

    def __init__(
        self,
        sink: ServeSink,
        capacity: int = 4096,
        batch_size: int = 64,
        policy: str = "block",
        metrics=None,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if batch_size > capacity:
            raise ValueError(
                f"batch_size {batch_size} cannot exceed capacity {capacity}"
            )
        if policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {policy!r}; available: "
                f"{sorted(BACKPRESSURE_POLICIES)}"
            )
        self.sink = sink
        self.capacity = capacity
        self.batch_size = batch_size
        self.policy = policy
        self.metrics = metrics
        self._pending: Deque[Dict] = deque()
        self.produced = 0
        self.delivered = 0
        self.dropped = 0
        self.batches = 0
        self.max_depth = 0

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def publish(self, record: Dict) -> None:
        """Enqueue one event record, applying backpressure when full."""
        self.produced += 1
        if len(self._pending) >= self.capacity:
            if self.policy == "block":
                # Blocking means the producer pays the sink's latency
                # right here: commit one batch to make room.
                self._commit(self.batch_size)
            else:  # drop-oldest
                self._pending.popleft()
                self.dropped += 1
                if self.metrics is not None:
                    self.metrics.counter("sink.dropped").inc()
        self._pending.append(record)
        if len(self._pending) > self.max_depth:
            self.max_depth = len(self._pending)

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Events queued but not yet committed to the sink."""
        return len(self._pending)

    def pump(self, max_batches: Optional[int] = None) -> int:
        """Commit complete batches (the per-round consumer turn).

        Delivers up to ``max_batches`` batches of ``batch_size`` events
        (all complete batches when None); a trailing partial batch stays
        pending until :meth:`drain`. Returns events delivered.
        """
        delivered = 0
        committed = 0
        while len(self._pending) >= self.batch_size and (
            max_batches is None or committed < max_batches
        ):
            delivered += self._commit(self.batch_size)
            committed += 1
        return delivered

    def drain(self) -> int:
        """Commit everything pending, including a final partial batch.

        The drain/shutdown guarantee: after ``drain`` returns, every
        published event has been delivered or (previously) counted
        dropped — ``pending == 0``.
        """
        delivered = 0
        while self._pending:
            delivered += self._commit(min(self.batch_size, len(self._pending)))
        self.sink.flush()
        return delivered

    def _commit(self, count: int) -> int:
        batch = [self._pending.popleft() for _ in range(count)]
        self.sink.write_batch(batch)
        self.delivered += len(batch)
        self.batches += 1
        if self.metrics is not None:
            self.metrics.counter("sink.delivered").inc(len(batch))
            self.metrics.counter("sink.batches").inc()
        return len(batch)

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """The conservation ledger: produced = delivered + dropped + pending."""
        return {
            "produced": self.produced,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "pending": self.pending,
            "batches": self.batches,
            "max_depth": self.max_depth,
        }
