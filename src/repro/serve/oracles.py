"""The soak oracle trio: what "healthy under indefinite load" means.

A long-running service cannot be validated by a final-state assertion
alone; it needs *trend* oracles over the run. Three of them, each a pure
function over samples so the soak harness (``tests/soak.py``), the CI
soak-smoke job, and unit tests all share one judgment:

1. **Bounded memory** — the allocated-block count plateaus: after a
   warmup prefix, the late-window mean may exceed the early-window mean
   by at most a tolerance. Sampling uses ``gc.collect()`` +
   ``sys.getallocatedblocks()`` (exact CPython allocator counts, no
   third-party dependency), which catches the classic soak killers —
   unbounded histories, event buffers that never drain, caches keyed by
   round index.
2. **Monotone consumed counter** — the throughput ledger only ever
   moves forward; a decrease means double-counting or state corruption.
3. **Zero live-monitor violations** — the paper-faithful protocol is
   proved safe, so a soak of it must stream zero ``service.violation``
   events no matter what the command schedule injected.
"""

from __future__ import annotations

import gc
import sys
from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class OracleVerdict:
    """One oracle's judgment: name, pass/fail, human-readable detail."""

    name: str
    ok: bool
    detail: str

    def __str__(self) -> str:
        return f"[{'PASS' if self.ok else 'FAIL'}] {self.name}: {self.detail}"


class MemoryProbe:
    """Collect allocated-block samples at caller-chosen moments.

    ``gc.collect()`` before each reading removes cyclic garbage noise,
    so the series tracks *live* objects — exactly what must plateau.
    """

    def __init__(self):
        self.samples: List[int] = []

    def sample(self) -> int:
        """Collect garbage, record and return the live-block count."""
        gc.collect()
        count = sys.getallocatedblocks()
        self.samples.append(count)
        return count


def check_bounded_memory(
    samples: Sequence[int],
    warmup_fraction: float = 0.5,
    growth_tolerance: float = 0.05,
    min_samples: int = 6,
) -> OracleVerdict:
    """Plateau check over an allocated-block series.

    The first ``warmup_fraction`` of samples is discarded (engines warm
    caches, sinks open files); the remainder is split in half and the
    late half's mean may exceed the early half's by at most
    ``growth_tolerance`` (relative). A linear leak — one retained object
    per round — fails this for any tolerance once the run is long
    enough, which is the point of soaking.
    """
    if len(samples) < min_samples:
        return OracleVerdict(
            "bounded-memory",
            False,
            f"need at least {min_samples} samples, got {len(samples)}",
        )
    steady = list(samples[int(len(samples) * warmup_fraction) :])
    half = len(steady) // 2
    early = steady[:half]
    late = steady[half:]
    early_mean = sum(early) / len(early)
    late_mean = sum(late) / len(late)
    growth = (late_mean - early_mean) / early_mean
    ok = growth <= growth_tolerance
    return OracleVerdict(
        "bounded-memory",
        ok,
        f"steady-state growth {growth * 100:+.2f}% "
        f"(early mean {early_mean:.0f} blocks, late mean {late_mean:.0f}, "
        f"tolerance {growth_tolerance * 100:.0f}%)",
    )


def check_monotone_consumed(samples: Sequence[int]) -> OracleVerdict:
    """The consumed counter must be nondecreasing across samples."""
    if not samples:
        return OracleVerdict("monotone-consumed", False, "no samples collected")
    for i in range(1, len(samples)):
        if samples[i] < samples[i - 1]:
            return OracleVerdict(
                "monotone-consumed",
                False,
                f"consumed went backwards at sample {i}: "
                f"{samples[i - 1]} -> {samples[i]}",
            )
    return OracleVerdict(
        "monotone-consumed",
        True,
        f"{len(samples)} samples, {samples[0]} -> {samples[-1]}",
    )


def check_zero_violations(violations: int) -> OracleVerdict:
    """The paper-faithful protocol streams zero live violations."""
    return OracleVerdict(
        "zero-violations",
        violations == 0,
        f"{violations} live monitor violation(s) streamed",
    )


def soak_verdicts(
    memory_samples: Sequence[int],
    consumed_samples: Sequence[int],
    violations: int,
    growth_tolerance: float = 0.05,
) -> List[OracleVerdict]:
    """The full trio over one soak run's collected samples."""
    return [
        check_bounded_memory(memory_samples, growth_tolerance=growth_tolerance),
        check_monotone_consumed(consumed_samples),
        check_zero_violations(violations),
    ]
