"""The Signal function (paper Figure 5).

Signal is the safety/progress core of the protocol. Each non-faulty cell:

1. Computes ``NEPrev`` — the neighbors whose (post-Route) ``next`` points
   at this cell and whose ``Members`` is nonempty. Failed neighbors never
   appear (they do not communicate).
2. Maintains a ``token`` over ``NEPrev`` for mutual exclusion: at most one
   inbound neighbor is considered per round.
3. Grants ``signal := token`` only when the cell has a *clear gap of depth
   d* along its edge facing the token holder — i.e. no member's edge is
   within ``d`` of that boundary (with the ``l/2`` reading of the scanned
   text; see DESIGN.md). Otherwise ``signal := bot`` and the token parks on
   the blocked neighbor so it is retried next round (this is the fairness
   step of Lemma 9).
4. After a grant, the token rotates to a different member of ``NEPrev``
   when one exists, giving every inbound neighbor a turn infinitely often.

The grant is what makes transfers safe: predicate H says a granted edge
has a ``d``-deep empty strip behind it, so an entity snapped onto that
edge lands at distance >= d from every resident entity (Theorem 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.cell import CellState, effective_next, effective_nonempty
from repro.core.params import Parameters
from repro.core.policies import RoundRobinTokenPolicy, TokenPolicy
from repro.geometry.tolerance import tol_ge, tol_le
from repro.grid.topology import CellId, Direction, Grid, direction_between


@dataclass
class SignalPhaseReport:
    """Grant/block decisions of one Signal phase (for monitors/metrics)."""

    granted: Dict[CellId, CellId] = field(default_factory=dict)
    """Mapping granting-cell -> neighbor granted permission."""

    blocked: List[CellId] = field(default_factory=list)
    """Cells that held a token but lacked the gap (signal forced to bot)."""

    rotated: List[Tuple[CellId, CellId, CellId]] = field(default_factory=list)
    """``(cell, previous holder, new holder)`` for each post-grant token
    rotation — the fairness steps of Lemma 9, recorded so the
    observability layer (:mod:`repro.obs`) can count and trace them."""

    block_reasons: Dict[CellId, str] = field(default_factory=dict)
    """Optional block-reason annotations keyed by blocked cell.

    The core Signal rule only blocks for one reason — the occupied
    depth-``d`` strip — so it leaves this empty and consumers default a
    missing entry to ``"gap"``. Systems with additional admission
    conjuncts (the multi-commodity residency rule) record the reason
    here; values must come from ``repro.obs.events.BLOCK_REASONS``."""


def gap_clear(
    state: CellState, toward: Direction, params: Parameters
) -> bool:
    """The paper's lines 4-7: is a depth-``d`` strip clear on the edge of
    ``state``'s cell facing direction ``toward``?

    ``toward`` is the direction *from this cell to the token-holding
    neighbor* — the edge through which that neighbor's entities would
    enter. For the east edge the condition is
    ``forall p: px + l/2 <= i + 1 - d``; the other edges are symmetric.
    """
    i, j = state.cell_id
    half = params.half_l
    d = params.d
    if toward is Direction.EAST:
        return all(tol_le(e.x + half, i + 1 - d) for e in state.members.values())
    if toward is Direction.WEST:
        return all(tol_ge(e.x - half, i + d) for e in state.members.values())
    if toward is Direction.NORTH:
        return all(tol_le(e.y + half, j + 1 - d) for e in state.members.values())
    return all(tol_ge(e.y - half, j + d) for e in state.members.values())


def gap_clear_extents(
    state: CellState, toward: Direction, params: Parameters
) -> bool:
    """:func:`gap_clear` computed from the windowed member extents.

    ``all(tol_le(x_k + l/2, bound))`` is equivalent to
    ``tol_le(max(x_k) + l/2, bound)``: IEEE addition is monotone, so
    ``max(x_k) + l/2 == max(x_k + l/2)`` exactly, and ``tol_le`` is
    monotone in its first argument. One comparison per edge instead of
    one per member — the form the vectorized engine uses, kept here next
    to the per-member original so the equivalence is testable
    (``tests/test_engine_vectorized.py``).
    """
    if not state.members:
        return True
    i, j = state.cell_id
    half = params.half_l
    d = params.d
    members = state.members.values()
    if toward is Direction.EAST:
        return tol_le(max(e.x for e in members) + half, i + 1 - d)
    if toward is Direction.WEST:
        return tol_ge(min(e.x for e in members) - half, i + d)
    if toward is Direction.NORTH:
        return tol_le(max(e.y for e in members) + half, j + 1 - d)
    return tol_ge(min(e.y for e in members) - half, j + d)


def compute_ne_prev(
    grid: Grid, cells: Dict[CellId, CellState], cid: CellId
) -> Set[CellId]:
    """``NEPrev``: nonempty, non-faulty neighbors routing through ``cid``."""
    result: Set[CellId] = set()
    for nbr in grid.neighbors(cid):
        nbr_state = cells[nbr]
        if effective_next(nbr_state) == cid and effective_nonempty(nbr_state):
            result.add(nbr)
    return result


def signal_phase(
    grid: Grid,
    cells: Dict[CellId, CellState],
    params: Parameters,
    policy: Optional[TokenPolicy] = None,
) -> SignalPhaseReport:
    """Apply Signal simultaneously to every non-faulty cell.

    Reads neighbors' post-Route ``next`` and membership; writes each cell's
    own ``ne_prev``, ``token`` and ``signal``. Simultaneity is safe because
    Signal writes only private/own variables while reading only the
    neighbors' shared ones, which no cell's Signal modifies.
    """
    if policy is None:
        policy = RoundRobinTokenPolicy()
    # Snapshot the shared inputs so in-round writes cannot leak between
    # cells (next is written by Route, not Signal, but membership of the
    # *own* cell is also read — own state is current by construction).
    ne_prev_map = {
        cid: compute_ne_prev(grid, cells, cid)
        for cid, state in cells.items()
        if not state.failed
    }
    report = SignalPhaseReport()
    for cid, ne_prev in ne_prev_map.items():
        state = cells[cid]
        _signal_step(state, ne_prev, params, policy, report)
    return report


def _signal_step(
    state: CellState,
    ne_prev: Set[CellId],
    params: Parameters,
    policy: TokenPolicy,
    report: SignalPhaseReport,
    gap=None,
) -> None:
    """One cell's Signal computation.

    ``gap`` selects the gap predicate implementation — the per-member
    :func:`gap_clear` (default, resolved at call time so tests can
    monkeypatch the module attribute) or the windowed
    :func:`gap_clear_extents`; both return identical verdicts.
    """
    if gap is None:
        gap = gap_clear
    state.ne_prev = ne_prev
    # Clarified corner (see DESIGN.md): a token whose holder left NEPrev
    # (drained, re-routed or failed) is dropped before the initial choose,
    # otherwise it could dangle forever and starve live neighbors.
    if state.token is not None and state.token not in ne_prev:
        state.token = None
    if state.token is None:
        state.token = policy.initial(ne_prev)
    if state.token is None:
        # NEPrev empty: nobody to grant.
        state.signal = None
        return
    toward = direction_between(state.cell_id, state.token)
    if gap(state, toward, params):
        state.signal = state.token
        report.granted[state.cell_id] = state.token
        state.token = policy.rotate(ne_prev, state.token)
        if state.token != state.signal:
            report.rotated.append((state.cell_id, state.signal, state.token))
    else:
        # Blocked: deny everyone this round but keep the token parked on
        # the same neighbor, so it gets the next opportunity (fairness).
        state.signal = None
        report.blocked.append(state.cell_id)
