"""The Move function (paper Figure 6).

A non-faulty cell whose ``next`` neighbor granted it the signal shifts all
its entities by ``v`` toward that neighbor. Entities whose leading edge
strictly crosses the shared boundary are transferred: removed from the
moving cell, and — unless the neighbor is the target, which consumes them
— added to the neighbor with their trailing edge snapped onto the
boundary (``px := m + l/2`` and symmetric cases).

Movement for all cells happens against a snapshot of the post-Signal
``signal``/``next`` values; transfers are applied after every cell has
moved, so a just-transferred entity is never moved twice in one round.
At most one neighbor can transfer into a given cell per round because
``signal`` is a single value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.cell import CellState, effective_signal
from repro.core.entity import Entity
from repro.core.params import Parameters
from repro.geometry.tolerance import strictly_greater, strictly_less
from repro.grid.topology import CellId, Direction, Grid, direction_between


@dataclass(frozen=True)
class Transfer:
    """One entity crossing between cells (or into the target)."""

    uid: int
    src: CellId
    dst: CellId
    consumed: bool


@dataclass
class MovePhaseReport:
    """Physical outcome of one Move phase."""

    moved_cells: List[CellId] = field(default_factory=list)
    transfers: List[Transfer] = field(default_factory=list)
    consumed: List[Entity] = field(default_factory=list)
    """Entities that reached the target this round (with final state)."""


def crossed_boundary(
    entity: Entity, cell: CellId, toward: Direction, half_l: float
) -> bool:
    """Has ``entity``'s leading edge strictly passed the boundary of
    ``cell`` in direction ``toward``? (Paper Figure 6, lines 6-7.)"""
    i, j = cell
    if toward is Direction.EAST:
        return strictly_greater(entity.x + half_l, i + 1)
    if toward is Direction.WEST:
        return strictly_less(entity.x - half_l, i)
    if toward is Direction.NORTH:
        return strictly_greater(entity.y + half_l, j + 1)
    return strictly_less(entity.y - half_l, j)


def collect_movers(cells: Dict[CellId, CellState]) -> List[Tuple[CellId, CellId]]:
    """Snapshot the grant each cell observes: ``(mover, next)`` pairs.

    A cell moves this round when it is non-faulty, has entities, and its
    ``next`` neighbor's (post-Signal) ``signal`` points back at it. The
    full-sweep engine calls this scan; the incremental engine instead
    derives the same pairs from the round's grant report (every mover
    corresponds to exactly one grant, since ``signal`` is single-valued
    and set fresh each round).
    """
    movers: List[Tuple[CellId, CellId]] = []
    for cid, state in cells.items():
        if state.failed or state.next_id is None or not state.members:
            continue
        nxt = state.next_id
        if effective_signal(cells[nxt]) == cid:
            movers.append((cid, nxt))
    return movers


def apply_moves(
    grid: Grid,
    cells: Dict[CellId, CellState],
    params: Parameters,
    tid: CellId,
    movers: List[Tuple[CellId, CellId]],
) -> MovePhaseReport:
    """Execute the Move function for the given ``(mover, next)`` pairs."""
    report = MovePhaseReport()
    pending: List[Tuple[Entity, CellId, CellId, Direction]] = []
    for cid, nxt in movers:
        state = cells[cid]
        toward = direction_between(cid, nxt)
        report.moved_cells.append(cid)
        for entity in state.entities():
            entity.translate(toward, params.v)
            if crossed_boundary(entity, cid, toward, params.half_l):
                pending.append((entity, cid, nxt, toward))

    for entity, cid, nxt, toward in pending:
        cells[cid].remove_entity(entity.uid)
        if nxt == tid:
            report.consumed.append(entity)
            report.transfers.append(
                Transfer(uid=entity.uid, src=cid, dst=nxt, consumed=True)
            )
        else:
            entity.snap_to_entry_edge(nxt, toward, params.half_l)
            cells[nxt].add_entity(entity)
            report.transfers.append(
                Transfer(uid=entity.uid, src=cid, dst=nxt, consumed=False)
            )
    return report


def move_phase(
    grid: Grid,
    cells: Dict[CellId, CellState],
    params: Parameters,
    tid: CellId,
) -> MovePhaseReport:
    """Apply Move simultaneously to every non-faulty cell."""
    return apply_moves(grid, cells, params, tid, collect_movers(cells))
