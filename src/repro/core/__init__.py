"""The paper's primary contribution: the distributed cellular-flow protocol.

Public surface:

* :class:`~repro.core.params.Parameters` — validated ``(l, rs, v)``.
* :class:`~repro.core.entity.Entity` — an ``l x l`` entity.
* :class:`~repro.core.cell.CellState` — one cell's protocol variables.
* :class:`~repro.core.system.System` — the composed automaton with
  ``update`` / ``fail`` / ``recover`` transitions.
* :func:`~repro.core.system.build_corridor_system` — the paper's corridor
  workload in one call.
* Source policies (:mod:`repro.core.sources`) and token policies
  (:mod:`repro.core.policies`).

The Route / Signal / Move phase functions are importable from their own
modules for fine-grained testing and reuse.
"""

from repro.core.cell import (
    INFINITY,
    CellState,
    effective_dist,
    effective_next,
    effective_nonempty,
    effective_signal,
)
from repro.core.entity import Entity
from repro.core.move import MovePhaseReport, Transfer, move_phase
from repro.core.params import Parameters
from repro.core.policies import (
    RandomTokenPolicy,
    RoundRobinTokenPolicy,
    StickyTokenPolicy,
    TokenPolicy,
)
from repro.core.route import RoutePhaseReport, route_phase
from repro.core.signal import SignalPhaseReport, gap_clear, signal_phase
from repro.core.sources import (
    BernoulliSource,
    CappedSource,
    EagerSource,
    SilentSource,
    SourcePolicy,
)
from repro.core.system import RoundReport, System, build_corridor_system

__all__ = [
    "BernoulliSource",
    "CappedSource",
    "CellState",
    "EagerSource",
    "Entity",
    "INFINITY",
    "MovePhaseReport",
    "Parameters",
    "RandomTokenPolicy",
    "RoundReport",
    "RoundRobinTokenPolicy",
    "RoutePhaseReport",
    "SignalPhaseReport",
    "SilentSource",
    "SourcePolicy",
    "StickyTokenPolicy",
    "System",
    "TokenPolicy",
    "Transfer",
    "build_corridor_system",
    "effective_dist",
    "effective_next",
    "effective_nonempty",
    "effective_signal",
    "gap_clear",
    "move_phase",
    "route_phase",
    "signal_phase",
]
