"""The composed ``System`` automaton (paper Section II-B).

``System`` is the ensemble of all ``N x N`` cells plus the environment
hooks: ``fail``/``recover`` transitions and source-cell entity insertion.
One :meth:`System.update` is the paper's atomic ``update`` transition — a
synchronous round applying, in order, the Route, Signal, and Move
functions to every non-faulty cell, followed by source production.

The class is deliberately free of experiment logic (no fault sampling, no
metrics): fault models live in :mod:`repro.faults`, measurement in
:mod:`repro.metrics`, and the round loop composing them in
:mod:`repro.sim.simulator`. This keeps ``System`` exactly the object the
paper's proofs talk about, which is what the monitors and the exhaustive
explorer check.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from repro.core.cell import CellState, INFINITY
from repro.core.entity import Entity
from repro.core.move import MovePhaseReport, move_phase
from repro.core.params import Parameters
from repro.core.policies import RoundRobinTokenPolicy, TokenPolicy
from repro.core.route import RoutePhaseReport, route_phase
from repro.core.signal import SignalPhaseReport, signal_phase
from repro.core.sources import EagerSource, SourcePolicy
from repro.geometry.point import Point
from repro.grid.topology import CellId, Grid


@dataclass
class RoundReport:
    """Everything observable about one ``update`` transition."""

    round_index: int
    route: RoutePhaseReport
    signal: SignalPhaseReport
    move: MovePhaseReport
    produced: List[Entity] = field(default_factory=list)

    @property
    def consumed_count(self) -> int:
        return len(self.move.consumed)


class System:
    """The paper's ``System``: grid, parameters, target, sources, cells.

    Parameters
    ----------
    grid:
        The cell lattice.
    params:
        Protocol parameters ``(l, rs, v)``.
    tid:
        Identifier of the unique target cell (consumes entities).
    sources:
        Mapping from source-cell identifier to its production policy.
        Defaults to no sources; ``{cell: EagerSource()}`` reproduces the
        paper's saturated-offered-load setup.
    token_policy:
        How cells choose/rotate their Signal token (default round-robin).
    rng:
        Randomness for source policies (the protocol itself is
        deterministic); defaults to a fixed-seed generator.
    """

    def __init__(
        self,
        grid: Grid,
        params: Parameters,
        tid: CellId,
        sources: Optional[Mapping[CellId, SourcePolicy]] = None,
        token_policy: Optional[TokenPolicy] = None,
        rng: Optional[random.Random] = None,
    ):
        grid.require(tid)
        self.grid = grid
        self.params = params
        self.tid = tid
        self.sources: Dict[CellId, SourcePolicy] = dict(sources or {})
        for src in self.sources:
            grid.require(src)
            if src == tid:
                raise ValueError("the target cell cannot be a source")
        self.token_policy = token_policy or RoundRobinTokenPolicy()
        self.rng = rng or random.Random(0)
        self.cells: Dict[CellId, CellState] = {
            cid: CellState(cell_id=cid) for cid in grid.cells()
        }
        self.cells[tid].dist = 0.0
        self.round_index = 0
        self._next_uid = 0
        self.total_produced = 0
        self.total_consumed = 0
        #: Optional callback ``(phase_name, system) -> None`` invoked after
        #: each sub-phase of ``update`` ("route", "signal", "move",
        #: "produce"). Monitors use it to evaluate predicates that only
        #: hold at specific points within the atomic transition (e.g. the
        #: paper's H holds post-Signal but not post-Move; Lemma 3).
        self.phase_observer = None
        #: Optional callback ``(event, cell_id) -> None`` fired on the
        #: out-of-round environment transitions that change what a cell's
        #: neighbors observe: ``"fail"`` / ``"recover"`` (only on actual
        #: transitions — the idempotent no-op cases stay silent),
        #: ``"relocate"`` (target relocation, fired for both the old and
        #: the new target cell), and
        #: ``"members"`` (direct entity seeding). The incremental round
        #: engine (:mod:`repro.sim.engine`) uses it to seed its dirty
        #: sets; everything else leaves it None.
        self.cell_observer = None

    # ------------------------------------------------------------------
    # Environment transitions
    # ------------------------------------------------------------------

    def fail(self, cid: CellId) -> None:
        """The ``fail(<i,j>)`` transition: crash a cell.

        Idempotent on already-failed cells (matching the paper's effect
        clause, which simply sets the flags).
        """
        self.grid.require(cid)
        state = self.cells[cid]
        already_failed = state.failed
        state.mark_failed()
        if not already_failed:
            self._notify_cell_event("fail", cid)

    def recover(self, cid: CellId) -> None:
        """Un-crash a cell (the Figure 9 failure/recovery model).

        Recovery of the target restores ``dist = 0`` so Route re-converges
        (Section IV). No-op on non-failed cells.
        """
        self.grid.require(cid)
        state = self.cells[cid]
        if state.failed:
            state.mark_recovered(is_target=(cid == self.tid))
            self._notify_cell_event("recover", cid)

    def relocate_target(self, new_tid: CellId) -> None:
        """Move the routing destination to another cell mid-run.

        Models a mobile target (the ``rotating_target`` adversary; cf.
        self-stabilization with mobile destinations, arXiv:0708.0909).
        The old target reverts to an ordinary unconverged cell
        (``dist = INFINITY``) and Route re-stabilizes onto the new one
        within the Lemma 6 horizon. Entities already inside the new
        target cell simply stay: routing consumes on *transfer into* the
        target, and stationary residents never violate safety.
        """
        self.grid.require(new_tid)
        if new_tid == self.tid:
            return
        if new_tid in self.sources:
            raise ValueError(f"cannot relocate the target onto source {new_tid}")
        if self.cells[new_tid].failed:
            raise ValueError(f"cannot relocate the target onto failed cell {new_tid}")
        old_tid = self.tid
        self.tid = new_tid
        old_state = self.cells[old_tid]
        if not old_state.failed:
            old_state.dist = INFINITY
            old_state.next_id = None
        new_state = self.cells[new_tid]
        new_state.dist = 0.0
        new_state.next_id = None
        self._notify_cell_event("relocate", old_tid)
        self._notify_cell_event("relocate", new_tid)

    def failed_cells(self) -> Set[CellId]:
        """``F(x)``: identifiers of currently failed cells."""
        return {cid for cid, s in self.cells.items() if s.failed}

    def non_faulty_cells(self) -> Set[CellId]:
        """``NF(x)``: identifiers of currently non-faulty cells."""
        return {cid for cid, s in self.cells.items() if not s.failed}

    # ------------------------------------------------------------------
    # The update transition
    # ------------------------------------------------------------------

    def update(self) -> RoundReport:
        """One synchronous round: Route; Signal; Move; source production."""
        route_report = route_phase(self.grid, self.cells, self.tid)
        self._notify_phase("route")
        signal_report = signal_phase(
            self.grid, self.cells, self.params, self.token_policy
        )
        self._notify_phase("signal")
        move_report = move_phase(self.grid, self.cells, self.params, self.tid)
        self._notify_phase("move")
        self.total_consumed += len(move_report.consumed)
        produced = self._produce()
        self._notify_phase("produce")
        report = RoundReport(
            round_index=self.round_index,
            route=route_report,
            signal=signal_report,
            move=move_report,
            produced=produced,
        )
        self.round_index += 1
        return report

    def _notify_phase(self, name: str) -> None:
        if self.phase_observer is not None:
            self.phase_observer(name, self)

    def _notify_cell_event(self, event: str, cid: CellId) -> None:
        if self.cell_observer is not None:
            self.cell_observer(event, cid)

    def run(self, rounds: int) -> List[RoundReport]:
        """Run ``rounds`` consecutive updates (no faults) and collect reports."""
        return [self.update() for _ in range(rounds)]

    def _produce(self) -> List[Entity]:
        """Let each non-faulty source add at most one safely placed entity."""
        produced: List[Entity] = []
        for cid in sorted(self.sources):
            state = self.cells[cid]
            if state.failed:
                continue
            candidate = self.sources[cid].place(
                state, self.params, self.round_index, self.rng
            )
            if candidate is None:
                continue
            entity = self._spawn(candidate)
            state.add_entity(entity)
            produced.append(entity)
        return produced

    def _spawn(self, center: Point) -> Entity:
        entity = Entity(
            uid=self._next_uid,
            x=center.x,
            y=center.y,
            birth_round=self.round_index,
            side=self.params.l,
        )
        self._next_uid += 1
        self.total_produced += 1
        return entity

    # ------------------------------------------------------------------
    # Direct state manipulation (tests, explorer, pre-loaded scenarios)
    # ------------------------------------------------------------------

    def seed_entity(self, cid: CellId, x: float, y: float) -> Entity:
        """Place a fresh entity at an absolute position (setup helper)."""
        self.grid.require(cid)
        entity = self._spawn(Point(x, y))
        self.cells[cid].add_entity(entity)
        self._notify_cell_event("members", cid)
        return entity

    def entity_count(self) -> int:
        """Entities currently present across all cells."""
        return sum(len(s.members) for s in self.cells.values())

    def all_entities(self) -> List[Entity]:
        """Every entity in the system, in (cell, uid) order."""
        result: List[Entity] = []
        for cid in sorted(self.cells):
            result.extend(self.cells[cid].entities())
        return result

    # ------------------------------------------------------------------
    # Path distance / target connectivity (paper Section III-B)
    # ------------------------------------------------------------------

    def path_distance(self) -> Dict[CellId, float]:
        """``rho(x, <i,j>)``: BFS hop distance to ``tid`` through non-faulty
        cells (infinity for failed or disconnected cells).

        This is the *ground truth* the routing protocol stabilizes to; the
        monitors compare ``dist`` against it.
        """
        rho: Dict[CellId, float] = {cid: INFINITY for cid in self.cells}
        if self.cells[self.tid].failed:
            return rho
        rho[self.tid] = 0.0
        frontier: List[CellId] = [self.tid]
        depth = 0.0
        while frontier:
            depth += 1.0
            nxt: List[CellId] = []
            for cid in frontier:
                for nbr in self.grid.neighbors(cid):
                    if self.cells[nbr].failed or rho[nbr] != INFINITY:
                        continue
                    rho[nbr] = depth
                    nxt.append(nbr)
            frontier = nxt
        return rho

    def target_connected(self) -> Set[CellId]:
        """``TC(x)``: cells with a finite path distance to the target."""
        rho = self.path_distance()
        return {cid for cid, value in rho.items() if value != INFINITY}

    def clone(self) -> "System":
        """Deep copy of the full system state (explorer / what-if probes).

        Uses ``type(self)`` so protocol variants (e.g. the greedy
        baseline) clone as themselves; subclasses with extra constructor
        state must override and extend this.

        Stateful policies are cloned through their ``clone()`` protocol
        method: sharing a ``CappedSource`` counter or a
        ``RandomTokenPolicy`` RNG between clone and original would let a
        what-if probe corrupt the real system's production cap and
        random stream.
        """
        other = type(self)(
            grid=self.grid,
            params=self.params,
            tid=self.tid,
            sources={cid: policy.clone() for cid, policy in self.sources.items()},
            token_policy=self.token_policy.clone(),
            rng=random.Random(),
        )
        other.rng.setstate(self.rng.getstate())
        other.cells = {cid: state.clone() for cid, state in self.cells.items()}
        other.round_index = self.round_index
        other._next_uid = self._next_uid
        other.total_produced = self.total_produced
        other.total_consumed = self.total_consumed
        return other


def build_corridor_system(
    grid: Grid,
    params: Parameters,
    path_cells: Sequence[CellId],
    source_policy: Optional[SourcePolicy] = None,
    token_policy: Optional[TokenPolicy] = None,
    rng: Optional[random.Random] = None,
    fail_complement: bool = True,
) -> System:
    """The paper's corridor workload: source at the head of ``path_cells``,
    target at the tail, and (optionally) every off-path cell pre-failed so
    routing has exactly one feasible route.
    """
    if len(path_cells) < 2:
        raise ValueError("a corridor needs at least source and target cells")
    source, target = path_cells[0], path_cells[-1]
    system = System(
        grid=grid,
        params=params,
        tid=target,
        sources={source: source_policy or EagerSource()},
        token_policy=token_policy,
        rng=rng,
    )
    if fail_complement:
        alive = set(path_cells)
        for cid in grid.cells():
            if cid not in alive:
                system.fail(cid)
    return system
