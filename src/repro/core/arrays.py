"""Structure-of-arrays protocol state: the vectorized engine's core.

The object model (:class:`~repro.core.cell.CellState` per cell, entity
objects in per-cell dicts) is the semantic reference, but it caps
throughput: every Route sweep is ``O(N^2)`` Python bytecode. This module
provides the flat array mirror that turns the per-round sweeps into a
handful of whole-grid numpy operations:

* :class:`GridArrays` — ``dist``/``next``/``token``/``signal`` as flat
  ``int64`` arrays (one slot per cell, row-major ``k = j * width + i``),
  with :data:`~repro.core.cell.DIST_SENTINEL` for ``dist = infinity``
  and :data:`NO_CELL` (= -1) for a bottom cell reference, plus boolean
  ``failed`` and integer ``member_count`` arrays.
* :class:`EntityArrays` — entities packed as parallel ``(cell, x, y)``
  arrays (uids alongside), the layout the sharded-district roadmap item
  will shard by cell block.
* :func:`route_relax` — the whole-grid Bellman-Ford relaxation of the
  paper's Route function (Figure 4) with the exact ``(dist, id)`` argmin
  tie-break of :func:`repro.core.route._route_step`.
* :func:`ne_prev_masks` — per-direction boolean masks from which each
  cell's ``NEPrev`` set is read off (Figure 5's first step).

The argmin trick: for any cell, its lattice neighbors sorted by
identifier ``(i, j)`` tuple order are always WEST ``(i-1, j)`` < SOUTH
``(i, j-1)`` < NORTH ``(i, j+1)`` < EAST ``(i+1, j)`` — the first
coordinate orders WEST before the ``i``-column before EAST, and within
the column the second coordinate orders SOUTH before NORTH. Folding the
four shifted neighbor grids in that fixed order with a strict ``<``
therefore reproduces the smaller-identifier tie-break without ever
materializing per-cell id lists.

numpy is a *soft* dependency: importing this module without numpy
installed works (``HAVE_NUMPY`` is False) and only constructing the
array state raises, so the rest of the package — and the other two
engines — keep running on a bare Python install.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.core.cell import DIST_SENTINEL, dist_to_int
from repro.grid.topology import CellId

try:  # soft dependency: the object engines must not require numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

HAVE_NUMPY = np is not None

NO_CELL: int = -1
"""Sentinel for a bottom cell reference (``next``/``token``/``signal``)."""

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import System


def require_numpy() -> None:
    """Raise a pointed error when numpy is unavailable."""
    if not HAVE_NUMPY:
        raise RuntimeError(
            "the vectorized engine requires numpy, which is not installed; "
            "use engine='reference' or engine='incremental' instead"
        )


class GridArrays:
    """Flat array mirror of every cell's protocol variables.

    One slot per cell at flat index ``k = j * width + i`` — ascending
    ``k`` is exactly ``Grid.cells()`` row-major iteration order, so
    ``numpy.nonzero`` index order matches the reference engine's report
    ordering for free.
    """

    __slots__ = (
        "width",
        "height",
        "size",
        "dist",
        "next",
        "token",
        "signal",
        "failed",
        "member_count",
    )

    def __init__(self, width: int, height: int):
        require_numpy()
        self.width = width
        self.height = height
        self.size = width * height
        self.dist = np.full(self.size, DIST_SENTINEL, dtype=np.int64)
        self.next = np.full(self.size, NO_CELL, dtype=np.int64)
        self.token = np.full(self.size, NO_CELL, dtype=np.int64)
        self.signal = np.full(self.size, NO_CELL, dtype=np.int64)
        self.failed = np.zeros(self.size, dtype=bool)
        self.member_count = np.zeros(self.size, dtype=np.int64)

    # -- index mapping --------------------------------------------------

    def flat(self, cid: CellId) -> int:
        """Cell identifier ``(i, j)`` to flat index ``k``."""
        return cid[1] * self.width + cid[0]

    def cell(self, k: int) -> CellId:
        """Flat index ``k`` back to the ``(i, j)`` identifier."""
        return (int(k) % self.width, int(k) // self.width)

    def ref(self, cid: Optional[CellId]) -> int:
        """A cell reference (or ``None``) to its flat encoding."""
        return NO_CELL if cid is None else self.flat(cid)

    # -- synchronization with the object state --------------------------

    def sync_cell(self, k: int, state) -> None:
        """Overwrite slot ``k`` from a :class:`CellState`."""
        self.dist[k] = dist_to_int(state.dist)
        self.next[k] = self.ref(state.next_id)
        self.token[k] = self.ref(state.token)
        self.signal[k] = self.ref(state.signal)
        self.failed[k] = state.failed
        self.member_count[k] = len(state.members)

    @classmethod
    def from_system(cls, system: "System") -> "GridArrays":
        """Pack a system's current cell state into fresh arrays."""
        arrays = cls(system.grid.width, system.grid.height)
        for cid, state in system.cells.items():
            arrays.sync_cell(arrays.flat(cid), state)
        return arrays


class EntityArrays:
    """Entities packed as parallel ``(cell, x, y)`` arrays.

    ``uid`` rides alongside so the packing round-trips to the object
    model. Rows are sorted by ``(cell, uid)`` — the deterministic order
    the per-cell object iteration uses — which is also the order a
    sharded engine would partition by.
    """

    __slots__ = ("uid", "cell", "x", "y")

    def __init__(self, uid, cell, x, y):
        require_numpy()
        self.uid = uid
        self.cell = cell
        self.x = x
        self.y = y

    def __len__(self) -> int:
        return len(self.uid)

    @classmethod
    def from_system(cls, system: "System") -> "EntityArrays":
        """Pack every in-flight entity (row-major cell order, uid order
        within a cell)."""
        require_numpy()
        uids, cells, xs, ys = [], [], [], []
        width = system.grid.width
        for cid, state in system.cells.items():
            k = cid[1] * width + cid[0]
            for uid in sorted(state.members):
                entity = state.members[uid]
                uids.append(uid)
                cells.append(k)
                xs.append(entity.x)
                ys.append(entity.y)
        return cls(
            uid=np.asarray(uids, dtype=np.int64),
            cell=np.asarray(cells, dtype=np.int64),
            x=np.asarray(xs, dtype=np.float64),
            y=np.asarray(ys, dtype=np.float64),
        )

    def counts(self, size: int):
        """Per-cell member counts (length ``size``)."""
        return np.bincount(self.cell, minlength=size)


# ----------------------------------------------------------------------
# Vectorized phase kernels
# ----------------------------------------------------------------------


def _shifted(grid2d, fill):
    """The four neighbor views of a 2-D array, in ascending neighbor-id
    order (WEST, SOUTH, NORTH, EAST), padded with ``fill`` off-grid."""
    west = np.full_like(grid2d, fill)
    west[:, 1:] = grid2d[:, :-1]
    south = np.full_like(grid2d, fill)
    south[1:, :] = grid2d[:-1, :]
    north = np.full_like(grid2d, fill)
    north[:-1, :] = grid2d[1:, :]
    east = np.full_like(grid2d, fill)
    east[:, :-1] = grid2d[:, 1:]
    return west, south, north, east


def route_relax(arrays: GridArrays) -> Tuple["np.ndarray", "np.ndarray"]:
    """One whole-grid Route relaxation: ``(new_dist, new_next)``.

    Semantics of :func:`repro.core.route._route_step` applied to every
    cell at once: each cell takes ``1 + min`` over its neighbors'
    *effective* dists (failed neighbors observed at the sentinel), with
    the ``(dist, id)`` argmin tie-break realized by folding the neighbor
    grids in ascending-identifier order with a strict ``<``. The caller
    masks out failed cells and the target (which Route never touches).
    """
    height, width = arrays.height, arrays.width
    eff = np.where(arrays.failed, DIST_SENTINEL, arrays.dist).reshape(
        height, width
    )
    flat_ids = np.arange(arrays.size, dtype=np.int64).reshape(height, width)

    best = np.full((height, width), DIST_SENTINEL, dtype=np.int64)
    best_next = np.full((height, width), NO_CELL, dtype=np.int64)
    neighbor_dists = _shifted(eff, DIST_SENTINEL)
    neighbor_ids = (flat_ids - 1, flat_ids - width, flat_ids + width, flat_ids + 1)
    for nbr_dist, nbr_id in zip(neighbor_dists, neighbor_ids):
        better = nbr_dist < best  # strict: earlier (smaller-id) fold wins ties
        best = np.where(better, nbr_dist, best)
        best_next = np.where(better, nbr_id, best_next)

    unreachable = best == DIST_SENTINEL
    new_dist = np.where(unreachable, DIST_SENTINEL, best + 1)
    new_next = np.where(unreachable, NO_CELL, best_next)
    return new_dist.reshape(-1), new_next.reshape(-1)


def ne_prev_masks(arrays: GridArrays):
    """Per-direction inbound-pointer masks: the array form of ``NEPrev``.

    Returns four flat boolean arrays ``(west, south, north, east)`` —
    ascending neighbor-id order — where e.g. ``east[k]`` means cell
    ``k``'s EAST neighbor is visible (non-faulty, nonempty) and its
    ``next`` points at ``k``. A cell's ``NEPrev`` set is exactly the
    neighbors whose mask bit is set (Figure 5, step 1; failed cells
    never run Signal, so their own mask rows are simply unread).
    """
    height, width = arrays.height, arrays.width
    visible = (~arrays.failed) & (arrays.member_count > 0)
    vis2d = visible.reshape(height, width)
    next2d = arrays.next.reshape(height, width)
    flat_ids = np.arange(arrays.size, dtype=np.int64).reshape(height, width)

    west = np.zeros((height, width), dtype=bool)
    west[:, 1:] = vis2d[:, :-1] & (next2d[:, :-1] == flat_ids[:, 1:])
    south = np.zeros((height, width), dtype=bool)
    south[1:, :] = vis2d[:-1, :] & (next2d[:-1, :] == flat_ids[1:, :])
    north = np.zeros((height, width), dtype=bool)
    north[:-1, :] = vis2d[1:, :] & (next2d[1:, :] == flat_ids[:-1, :])
    east = np.zeros((height, width), dtype=bool)
    east[:, :-1] = vis2d[:, 1:] & (next2d[:, 1:] == flat_ids[:, :-1])
    return (
        west.reshape(-1),
        south.reshape(-1),
        north.reshape(-1),
        east.reshape(-1),
    )
