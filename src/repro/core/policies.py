"""Token selection policies for the Signal function.

The paper's Signal function "choose"s from ``NEPrev`` in two places: the
initial pick when ``token = bot`` (line 3) and the rotation after a grant
(lines 10-12). Any choice satisfying "different from the previous value if
possible" preserves the fairness argument of Lemma 9; the *policy* of the
choice is a free design parameter, so it is pluggable here.

:class:`RoundRobinTokenPolicy` (the default) walks ``NEPrev`` in cyclic
identifier order, matching the behavior the paper's Lemma 9 base case
describes ("signal_tid changes to a different neighbor with entities every
round"). :class:`RandomTokenPolicy` draws uniformly (still avoiding the
previous holder on rotation), and :class:`StickyTokenPolicy` deliberately
violates fairness — it exists for the ablation benchmark that shows why
rotation is necessary for progress.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional

from repro.grid.topology import CellId


class TokenPolicy:
    """Interface: how a cell picks and rotates its token over ``NEPrev``."""

    def clone(self) -> "TokenPolicy":
        """An independent copy for ``System.clone()``.

        Stateless policies share themselves; policies holding an RNG (or
        other mutable state) must override so a cloned system's token
        choices never advance the original's stream.
        """
        return self

    def initial(self, ne_prev: Iterable[CellId]) -> Optional[CellId]:
        """Pick a token holder when the current token is bottom."""
        raise NotImplementedError

    def rotate(
        self, ne_prev: Iterable[CellId], current: CellId
    ) -> Optional[CellId]:
        """Pick the next holder after a grant; must differ from ``current``
        whenever ``NEPrev`` offers an alternative."""
        raise NotImplementedError


def _sorted(ne_prev: Iterable[CellId]) -> List[CellId]:
    return sorted(ne_prev)


class RoundRobinTokenPolicy(TokenPolicy):
    """Cycle through ``NEPrev`` in identifier order (deterministic, fair)."""

    def initial(self, ne_prev: Iterable[CellId]) -> Optional[CellId]:
        candidates = _sorted(ne_prev)
        return candidates[0] if candidates else None

    def rotate(
        self, ne_prev: Iterable[CellId], current: CellId
    ) -> Optional[CellId]:
        candidates = _sorted(ne_prev)
        if not candidates:
            return None
        others = [c for c in candidates if c != current]
        if not others:
            return candidates[0]
        # Cyclic successor of `current` among the alternatives.
        for candidate in others:
            if candidate > current:
                return candidate
        return others[0]


class RandomTokenPolicy(TokenPolicy):
    """Uniform random choice (seeded); still avoids the previous holder."""

    def __init__(self, rng: random.Random):
        self._rng = rng

    def clone(self) -> "RandomTokenPolicy":
        rng = random.Random()
        rng.setstate(self._rng.getstate())
        return RandomTokenPolicy(rng)

    def initial(self, ne_prev: Iterable[CellId]) -> Optional[CellId]:
        candidates = _sorted(ne_prev)
        return self._rng.choice(candidates) if candidates else None

    def rotate(
        self, ne_prev: Iterable[CellId], current: CellId
    ) -> Optional[CellId]:
        candidates = _sorted(ne_prev)
        if not candidates:
            return None
        others = [c for c in candidates if c != current]
        return self._rng.choice(others) if others else candidates[0]


class StickyTokenPolicy(TokenPolicy):
    """Never rotates: keeps granting the same neighbor.

    This policy breaks the fairness hypothesis of Lemma 9 and can starve
    other inbound neighbors forever. It is *not* part of the paper's
    protocol — it exists so the ablation benchmark can demonstrate that the
    rotation rule is load-bearing for progress.
    """

    def initial(self, ne_prev: Iterable[CellId]) -> Optional[CellId]:
        candidates = _sorted(ne_prev)
        return candidates[0] if candidates else None

    def rotate(
        self, ne_prev: Iterable[CellId], current: CellId
    ) -> Optional[CellId]:
        candidates = _sorted(ne_prev)
        if not candidates:
            return None
        return current if current in candidates else candidates[0]
