"""Protocol parameters.

The paper specifies the system with three parameters:

* ``l``  — side length of every (square) entity,
* ``rs`` — minimum required inter-entity gap along each axis,
* ``v``  — cell velocity: the distance entities move in one round.

subject to ``v < l < 1`` and ``rs + l < 1``. The derived *center spacing
requirement* is ``d = rs + l``: safety requires any two entity centers in
one cell to differ by at least ``d`` along some axis.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Parameters:
    """Validated protocol parameters ``(l, rs, v)``.

    Raises ``ValueError`` on construction unless ``0 < v < l < 1`` and
    ``rs >= 0`` with ``rs + l < 1`` — the side conditions the paper requires
    so that (a) a freshly transferred entity cannot collide before the next
    round and (b) entities fit inside their unit cell with the required gap.
    """

    l: float
    rs: float
    v: float

    def __post_init__(self) -> None:
        if not 0.0 < self.l < 1.0:
            raise ValueError(f"entity length l must be in (0, 1), got {self.l}")
        if self.rs < 0.0:
            raise ValueError(f"safety gap rs must be nonnegative, got {self.rs}")
        if not 0.0 < self.v:
            raise ValueError(f"velocity v must be positive, got {self.v}")
        # The paper states v < l, yet its own simulations (Figures 8 and 9)
        # use v = l = 0.2. We therefore accept v <= l; the strict-inequality
        # corner is exercised by the safety monitors in every experiment.
        if not self.v <= self.l:
            raise ValueError(
                f"velocity must not exceed entity length (v={self.v}, l={self.l})"
            )
        if not self.rs + self.l < 1.0:
            raise ValueError(
                f"rs + l must be less than 1, got {self.rs} + {self.l}"
            )

    @property
    def d(self) -> float:
        """Center spacing requirement ``d = rs + l``."""
        return self.rs + self.l

    @property
    def half_l(self) -> float:
        """Half the entity side, ``l / 2`` (distance from center to edge)."""
        return self.l / 2.0

    def max_entities_per_axis(self) -> int:
        """Upper bound on safely co-resident entity centers along one axis.

        Centers live in ``[l/2, 1 - l/2]`` (cell-relative) and consecutive
        centers differ by at least ``d``, so at most
        ``floor((1 - l) / d) + 1`` fit along an axis.
        """
        return int((1.0 - self.l) / self.d + 1e-12) + 1


#: The parameterization used in the paper's Figure 7 study (l fixed).
FIG7_ENTITY_LENGTH = 0.25

#: The parameterization used in the paper's Figure 9 study.
FIG9_PARAMS = Parameters(l=0.2, rs=0.05, v=0.2)
