"""The Route function (paper Figure 4).

Route maintains a self-stabilizing distance-vector routing table. Each
non-faulty, non-target cell simultaneously recomputes

    ``dist := 1 + min over neighbors of dist``
    ``next := bot``                          if the new dist is infinite,
    ``next := argmin (dist, id) neighbor``   otherwise (ties by identifier)

from the *previous round's* neighbor values (Jacobi-style simultaneous
update — this is what gives the ``h``-round stabilization bound of
Lemma 6; a sequential sweep would stabilize faster but match neither the
paper's message-passing reading nor its proofs).

Failed neighbors are observed as ``dist = infinity`` via the effective
view, so routes around crashes re-form automatically once recomputation
propagates — Corollary 7's ``O(N^2)`` bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.cell import (
    DIST_SENTINEL,
    INFINITY,
    CellState,
    dist_to_int,
    effective_dist,
)
from repro.grid.topology import CellId, Grid


@dataclass
class RoutePhaseReport:
    """What the Route phase changed this round (for monitors and metrics)."""

    changed_dist: List[CellId] = field(default_factory=list)
    changed_next: List[CellId] = field(default_factory=list)

    @property
    def quiescent(self) -> bool:
        """True when the phase was a fixed point (routing has stabilized)."""
        return not self.changed_dist and not self.changed_next


def route_phase(
    grid: Grid,
    cells: Dict[CellId, CellState],
    tid: CellId,
) -> RoutePhaseReport:
    """Apply Route simultaneously to every non-faulty, non-target cell."""
    snapshot: Dict[CellId, float] = {
        cid: effective_dist(state) for cid, state in cells.items()
    }
    report = RoutePhaseReport()
    for cid, state in cells.items():
        if state.failed or cid == tid:
            continue
        new_dist, new_next = _route_step(grid, cid, snapshot)
        if new_dist != state.dist:
            report.changed_dist.append(cid)
            state.dist = new_dist
        if new_next != state.next_id:
            report.changed_next.append(cid)
            state.next_id = new_next
    return report


def _route_step(
    grid: Grid,
    cid: CellId,
    dist_snapshot: Dict[CellId, float],
) -> Tuple[float, Optional[CellId]]:
    """One cell's Route computation against a neighbor-dist snapshot.

    The ``(dist, id)`` argmin runs on the integral-with-sentinel
    embedding (:func:`repro.core.cell.dist_to_int`): dists are exact
    integers plus one infinity sentinel, so the tie comparison is an
    integer ``==`` — no accumulated-float equality is ever relied on,
    and the vectorized engine's integer argmin provably matches.
    """
    neighbors = grid.neighbors(cid)
    best: Optional[CellId] = None
    best_dist = DIST_SENTINEL
    for nbr in neighbors:
        nbr_dist = dist_to_int(dist_snapshot[nbr])
        if nbr_dist < best_dist or (nbr_dist == best_dist and _prefer(nbr, best)):
            best_dist = nbr_dist
            best = nbr
    if best_dist == DIST_SENTINEL:
        return INFINITY, None
    return float(best_dist + 1), best


def _prefer(candidate: CellId, incumbent: Optional[CellId]) -> bool:
    """Tie-break rule of the paper's argmin: smaller identifier wins."""
    return incumbent is None or candidate < incumbent
