"""Source-cell entity production.

The paper's sources "add at most one entity in each round ... such that
the addition does not violate the minimum gap requirement", plus the
environment assumption that a source never perpetually blocks a nonempty
non-faulty neighbor. The concrete placement rule is unspecified, so it is
a pluggable policy here (see DESIGN.md section 3).

The default :class:`EagerSource` inserts, whenever it can do so safely,
at the wall *opposite* the cell's exit direction, centered on the
perpendicular axis — new entities queue up behind the departing flow and
never occupy the strip adjacent to the exit edge, so insertions cannot
retroactively block a grant the cell just made.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.cell import CellState
from repro.core.params import Parameters
from repro.geometry.point import Point
from repro.geometry.separation import fits_among
from repro.grid.topology import Direction


def entry_wall_center(
    state: CellState, params: Parameters, default: Direction = Direction.NORTH
) -> Point:
    """Candidate insertion point: flush against the wall opposite the exit.

    When the cell has no route yet (``next = bot``) the ``default`` exit
    direction is assumed, so sources keep producing while routing
    stabilizes (insertions remain safe either way — safety is re-checked
    against the members, not the route).
    """
    i, j = state.cell_id
    half = params.half_l
    if state.next_id is not None:
        exit_dir = Direction(
            (state.next_id[0] - i, state.next_id[1] - j)
        )
    else:
        exit_dir = default
    center_x, center_y = i + 0.5, j + 0.5
    if exit_dir is Direction.EAST:
        return Point(i + half, center_y)
    if exit_dir is Direction.WEST:
        return Point(i + 1 - half, center_y)
    if exit_dir is Direction.NORTH:
        return Point(center_x, j + half)
    return Point(center_x, j + 1 - half)


class SourcePolicy:
    """Interface: propose (at most) one insertion point per round."""

    def clone(self) -> "SourcePolicy":
        """An independent copy for ``System.clone()``.

        Stateless policies share themselves; any policy with mutable
        state (counters, RNGs) must override and deep-copy it, or a
        cloned system's production would corrupt the original's.
        """
        return self

    def place(
        self,
        state: CellState,
        params: Parameters,
        round_index: int,
        rng: random.Random,
    ) -> Optional[Point]:
        """Return a safe center for a new entity, or None to skip this round.

        Implementations must only return points that keep the cell Safe;
        the system asserts this but does not repair it.
        """
        raise NotImplementedError

    def _safe_candidate(
        self, state: CellState, params: Parameters
    ) -> Optional[Point]:
        # No route yet (fresh start or post-failure): wait. Inserting
        # before the exit direction is known would pick an arbitrary wall,
        # which both risks blocking the eventual flow and breaks the
        # protocol's orientation symmetry (see tests/test_symmetry.py).
        if state.next_id is None:
            return None
        candidate = entry_wall_center(state, params)
        centers = [e.center for e in state.members.values()]
        if fits_among(candidate, centers, params.d):
            return candidate
        return None


class EagerSource(SourcePolicy):
    """Insert every round the entry wall is clear (maximum offered load).

    This is the policy used for all figure reproductions: the paper's
    throughput curves measure the *service* rate of the protocol, so the
    source must never be the bottleneck.
    """

    def place(
        self,
        state: CellState,
        params: Parameters,
        round_index: int,
        rng: random.Random,
    ) -> Optional[Point]:
        return self._safe_candidate(state, params)


class BernoulliSource(SourcePolicy):
    """Offer an entity with probability ``rate`` per round (open-loop load)."""

    def __init__(self, rate: float):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"arrival rate must be in [0, 1], got {rate}")
        self.rate = rate

    def place(
        self,
        state: CellState,
        params: Parameters,
        round_index: int,
        rng: random.Random,
    ) -> Optional[Point]:
        if rng.random() >= self.rate:
            return None
        return self._safe_candidate(state, params)


class CappedSource(SourcePolicy):
    """Wrap another policy, stopping after ``limit`` successful insertions.

    Useful for drain experiments ("inject k entities, wait for delivery")
    and for the progress integration tests.
    """

    def __init__(self, inner: SourcePolicy, limit: int):
        if limit < 0:
            raise ValueError(f"limit must be nonnegative, got {limit}")
        self.inner = inner
        self.limit = limit
        self.produced = 0

    def clone(self) -> "CappedSource":
        other = CappedSource(self.inner.clone(), self.limit)
        other.produced = self.produced
        return other

    def place(
        self,
        state: CellState,
        params: Parameters,
        round_index: int,
        rng: random.Random,
    ) -> Optional[Point]:
        if self.produced >= self.limit:
            return None
        candidate = self.inner.place(state, params, round_index, rng)
        if candidate is not None:
            self.produced += 1
        return candidate


class SilentSource(SourcePolicy):
    """Never produces (lets a pre-loaded configuration drain)."""

    def place(
        self,
        state: CellState,
        params: Parameters,
        round_index: int,
        rng: random.Random,
    ) -> Optional[Point]:
        return None
