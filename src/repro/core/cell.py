"""Per-cell protocol state and the failure-masked shared-variable view.

Each ``Cell_{i,j}`` owns the variables of the paper's Figure 3:

=============  =====================================================
``members``    set of entities located in the cell (keyed by uid)
``next_id``    neighbor toward which the cell attempts to move (bot = None)
``ne_prev``    nonempty neighbors whose ``next`` points at this cell
``dist``       estimated hop distance to the target (infinity when unknown)
``token``      rotating mutual-exclusion token over ``ne_prev``
``signal``     neighbor currently granted permission to move this way
``failed``     crash flag
=============  =====================================================

``members``, ``dist``, ``next_id`` and ``signal`` are *shared*: neighbors
read them each round. A failed cell "never communicates", so neighbors
must observe default values for its shared variables; the ``effective_*``
helpers implement exactly that masking and are the only way protocol code
reads a neighbor's state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.entity import Entity
from repro.grid.topology import CellId

INFINITY: float = math.inf
"""The paper's ``dist = infinity`` (unknown / failed)."""

DIST_SENTINEL: int = 2**31 - 1
"""Integer stand-in for ``dist = infinity``.

Every finite ``dist`` the protocol produces is an exact integral float
(``0`` at the target, ``1 + min`` everywhere else), so the whole dist
lattice embeds into the integers with one sentinel for infinity. The
reference engine compares dists through this embedding (killing the
float-``==`` tie-break hazard), and the vectorized engine stores dists
this way natively (:mod:`repro.core.arrays`). The sentinel is far above
any reachable hop count (bounded by rounds elapsed), so ``best + 1``
can never collide with it.
"""


def dist_to_int(value: float) -> int:
    """Embed a ``dist`` float into the integral-with-sentinel form.

    Raises ``ValueError`` for non-integral or out-of-range values — a
    non-integral dist means some code path broke the ``1 + min``
    arithmetic, which must fail loudly rather than silently mis-compare.
    """
    if value == INFINITY:
        return DIST_SENTINEL
    as_int = int(value)
    if as_int != value:
        raise ValueError(
            f"dist {value!r} is not integral; the protocol only produces "
            f"0, infinity, or 1 + min values"
        )
    if not 0 <= as_int < DIST_SENTINEL:
        raise ValueError(
            f"dist {value!r} outside the representable range "
            f"[0, {DIST_SENTINEL})"
        )
    return as_int


def dist_from_int(value: int) -> float:
    """Inverse of :func:`dist_to_int` (sentinel back to ``math.inf``)."""
    return INFINITY if value == DIST_SENTINEL else float(value)


@dataclass
class CellState:
    """Mutable protocol state of one cell.

    Initial values follow the paper's Figure 3: everything bottom/empty,
    ``dist = infinity`` (the target's dist is set to 0 by the system on
    construction and on recovery).
    """

    cell_id: CellId
    members: Dict[int, Entity] = field(default_factory=dict)
    next_id: Optional[CellId] = None
    ne_prev: Set[CellId] = field(default_factory=set)
    dist: float = INFINITY
    token: Optional[CellId] = None
    signal: Optional[CellId] = None
    failed: bool = False

    @property
    def is_empty(self) -> bool:
        return not self.members

    def entities(self) -> List[Entity]:
        """The member entities (stable uid order, for determinism)."""
        return [self.members[uid] for uid in sorted(self.members)]

    def add_entity(self, entity: Entity) -> None:
        """Add an entity to ``members`` (uid must be fresh)."""
        if entity.uid in self.members:
            raise ValueError(f"entity {entity.uid} already in cell {self.cell_id}")
        self.members[entity.uid] = entity

    def remove_entity(self, uid: int) -> Entity:
        """Remove and return the entity with ``uid``."""
        try:
            return self.members.pop(uid)
        except KeyError:
            raise ValueError(f"entity {uid} not in cell {self.cell_id}") from None

    def mark_failed(self) -> None:
        """Apply the paper's ``fail(<i,j>)`` effect to the local state."""
        self.failed = True
        self.dist = INFINITY
        self.next_id = None

    def mark_recovered(self, is_target: bool) -> None:
        """Un-crash the cell (the Figure 9 recovery model).

        A recovered cell rejoins with no routing knowledge; recovery of the
        target also resets ``dist = 0`` (Section IV of the paper). Members
        persist across the crash — entities parked on a failed cell are not
        destroyed.
        """
        self.failed = False
        self.dist = 0.0 if is_target else INFINITY
        self.next_id = None
        self.token = None
        self.signal = None
        self.ne_prev = set()

    def clone(self) -> "CellState":
        """Deep copy (snapshots for monitors, the explorer, and baselines)."""
        return CellState(
            cell_id=self.cell_id,
            members={uid: e.clone() for uid, e in self.members.items()},
            next_id=self.next_id,
            ne_prev=set(self.ne_prev),
            dist=self.dist,
            token=self.token,
            signal=self.signal,
            failed=self.failed,
        )


def effective_dist(state: CellState) -> float:
    """``dist`` as observed by neighbors (infinity when failed)."""
    return INFINITY if state.failed else state.dist


def effective_next(state: CellState) -> Optional[CellId]:
    """``next`` as observed by neighbors (bottom when failed)."""
    return None if state.failed else state.next_id


def effective_signal(state: CellState) -> Optional[CellId]:
    """``signal`` as observed by neighbors (bottom when failed)."""
    return None if state.failed else state.signal


def effective_nonempty(state: CellState) -> bool:
    """Whether neighbors observe the cell as holding entities.

    A failed cell does not communicate, so its members are invisible; this
    keeps failed cells out of everyone's ``NEPrev`` and therefore out of
    token rotation.
    """
    return (not state.failed) and bool(state.members)
