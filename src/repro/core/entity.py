"""Entities: the vehicles/packages moved by the protocol.

An entity is an ``l x l`` square identified by a unique id, with its
center at ``(x, y)`` in the Euclidean plane. Entities are *passive*: only
the cell containing an entity ever changes its position, so the class is
a small mutable record with explicit movement/snapping methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.point import Point
from repro.geometry.square import Square
from repro.grid.topology import CellId, Direction


@dataclass
class Entity:
    """A single entity: unique id, center position, and bookkeeping.

    ``birth_round`` records when the source created the entity, enabling
    transit-latency metrics; it plays no role in the protocol itself.
    """

    uid: int
    x: float
    y: float
    birth_round: int = 0
    side: float = field(default=0.0, repr=False)

    @property
    def center(self) -> Point:
        return Point(self.x, self.y)

    def footprint(self, side: float) -> Square:
        """The ``side x side`` square the entity occupies."""
        return Square(self.center, side)

    def translate(self, direction: Direction, distance: float) -> None:
        """Move the center ``distance`` along ``direction`` (in place)."""
        self.x += direction.di * distance
        self.y += direction.dj * distance

    def snap_to_entry_edge(
        self, cell: CellId, direction: Direction, half_l: float
    ) -> None:
        """Place the entity just inside ``cell``, flush against the edge it
        entered through.

        ``direction`` is the travel direction of the transfer. Following the
        paper's Move function (lines 13-20, with the ``l/2`` reading): an
        entity entering cell ``<m, n>`` moving east gets ``px := m + l/2``
        (trailing edge on the boundary ``x = m``), and symmetrically for the
        other directions. The perpendicular coordinate is untouched.
        """
        m, n = cell
        if direction is Direction.EAST:
            self.x = m + half_l
        elif direction is Direction.WEST:
            self.x = (m + 1) - half_l
        elif direction is Direction.NORTH:
            self.y = n + half_l
        else:  # SOUTH
            self.y = (n + 1) - half_l

    def clone(self) -> "Entity":
        """An independent copy (used by state snapshots and the explorer)."""
        return Entity(
            uid=self.uid,
            x=self.x,
            y=self.y,
            birth_round=self.birth_round,
            side=self.side,
        )

    def position_key(self, quantum: float = 1e-9) -> tuple:
        """A hashable, quantized representation of the entity state.

        Used by the exhaustive explorer to canonicalize states; two states
        whose positions differ by less than ``quantum`` are identified.
        """
        return (self.uid, round(self.x / quantum), round(self.y / quantum))
