"""Figure 9 — throughput under random failure and recovery.

Paper setup: 8x8 grid, ``rs = 0.05``, ``l = 0.2``, ``v = 0.2``,
``K = 20000`` rounds, source ``<1,0>``, target ``<1,7>`` (an initial path
of length 8 on an otherwise fully alive grid). Every round, each live
cell fails with probability ``pf`` and each failed cell recovers with
probability ``pr`` (recovery of the target resets ``dist = 0``). One
curve per ``pr`` in {0.05, 0.1, 0.15, 0.2}; ``pf`` sweeps 0.01..0.05.

Paper findings: throughput decreases in ``pf``, increases in ``pr``, with
*diminishing returns* — successive increases of ``pr`` buy progressively
smaller throughput gains.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.params import Parameters
from repro.grid.paths import straight_path
from repro.grid.topology import Direction
from repro.sim.config import FaultSpec, SimulationConfig
from repro.sim.results import SweepResult
from repro.sim.sweep import Sweep

GRID_N = 8
ROUNDS = 20000
PARAMS = Parameters(l=0.2, rs=0.05, v=0.2)
FAIL_PROBS: Tuple[float, ...] = tuple(round(0.01 + 0.005 * k, 3) for k in range(9))
RECOVER_PROBS: Tuple[float, ...] = (0.05, 0.1, 0.15, 0.2)

PATH = straight_path((1, 0), Direction.NORTH, 8)


def build_sweep(
    rounds: Optional[int] = None,
    fail_probs: Sequence[float] = FAIL_PROBS,
    recover_probs: Sequence[float] = RECOVER_PROBS,
    seed: int = 9,
    monitors: bool = True,
) -> Sweep:
    """The figure's full parameter grid as a sweep.

    The whole grid stays alive initially (``fail_complement=False``): the
    corridor is only the *initial* route; churn forces re-routing through
    the rest of the grid, which is the point of the experiment.
    """
    horizon = ROUNDS if rounds is None else rounds
    sweep = Sweep(name="fig9")
    for pr in recover_probs:
        for pf in fail_probs:
            config = SimulationConfig(
                grid_width=GRID_N,
                params=PARAMS,
                rounds=horizon,
                path=PATH.cells,
                fail_complement=False,
                fault=FaultSpec(pf=pf, pr=pr),
                seed=seed,
                monitors=monitors,
            )
            sweep.add(f"pr={pr},pf={pf}", config, pr=pr, pf=pf)
    return sweep


def run(
    rounds: Optional[int] = None,
    fail_probs: Sequence[float] = FAIL_PROBS,
    recover_probs: Sequence[float] = RECOVER_PROBS,
    seed: int = 9,
    monitors: bool = True,
    progress=lambda message: None,
    workers: int = 1,
    checkpoint=None,
    resume: bool = False,
    point_timeout: Optional[float] = None,
    max_retries: int = 2,
    strict: bool = False,
) -> SweepResult:
    """Execute the Figure 9 sweep (optionally over ``workers`` processes).

    Execution is supervised (retries / per-point timeout / worker-death
    recovery — see :mod:`repro.sim.supervisor`); exhausted points land
    on ``SweepResult.failures`` unless ``strict`` restores fail-fast.
    """
    return build_sweep(
        rounds=rounds,
        fail_probs=fail_probs,
        recover_probs=recover_probs,
        seed=seed,
        monitors=monitors,
    ).run(
        progress,
        workers=workers,
        checkpoint=checkpoint,
        resume=resume,
        point_timeout=point_timeout,
        max_retries=max_retries,
        strict=strict,
    )


def series(result: SweepResult) -> Dict[float, List[Tuple[float, float]]]:
    """Reshape into the figure's series: ``pr -> [(pf, throughput), ...]``."""
    curves: Dict[float, List[Tuple[float, float]]] = {}
    for run_result in result.runs:
        pr = run_result.extras["pr"]
        pf = run_result.extras["pf"]
        curves.setdefault(pr, []).append((pf, run_result.throughput))
    for points in curves.values():
        points.sort()
    return curves


def stationary_collapse(result: SweepResult) -> List[Tuple[float, float, float]]:
    """Group the sweep by the stationary failed fraction ``pf/(pf+pr)``.

    The fail/recover coins form a two-state Markov chain per cell with
    stationary failed fraction ``pf / (pf + pr)`` (DeVille & Mitra, SSS
    2009 — the paper's reference [25]). If throughput were a function of
    the *fraction of dead cells alone*, the four Figure 9 curves would
    collapse onto a single curve in this coordinate. Returns
    ``(fraction, mean_throughput, spread)`` rows, where spread is the
    max-min throughput within the group — small spreads mean the
    collapse (approximately) holds and churn *speed* is second-order.
    """
    groups: Dict[float, List[float]] = {}
    for run_result in result.runs:
        pf = run_result.extras["pf"]
        pr = run_result.extras["pr"]
        fraction = round(pf / (pf + pr), 4)
        groups.setdefault(fraction, []).append(run_result.throughput)
    rows = []
    for fraction in sorted(groups):
        values = groups[fraction]
        rows.append(
            (fraction, sum(values) / len(values), max(values) - min(values))
        )
    return rows


def shape_checks(result: SweepResult) -> Dict[str, bool]:
    """The paper's qualitative findings as boolean checks.

    * ``pf_hurts`` — each curve's throughput at the smallest ``pf`` exceeds
      its throughput at the largest ``pf``.
    * ``pr_helps`` — averaged over ``pf``, higher recovery rates never do
      (noticeably) worse.
    * ``diminishing_returns`` — the average gain from the first ``pr``
      increment is at least the gain from the last increment.
    """
    curves = series(result)
    tolerance = 0.003
    checks: Dict[str, bool] = {}
    checks["pf_hurts"] = all(
        points[0][1] > points[-1][1] - tolerance for points in curves.values()
    )
    order = sorted(curves)
    means = [sum(v for _, v in curves[pr]) / len(curves[pr]) for pr in order]
    checks["pr_helps"] = all(
        later >= earlier - tolerance for earlier, later in zip(means, means[1:])
    )
    if len(means) >= 3:
        first_gain = means[1] - means[0]
        last_gain = means[-1] - means[-2]
        checks["diminishing_returns"] = first_gain >= last_gain - tolerance
    return checks
