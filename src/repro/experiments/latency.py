"""Transit-latency experiment (this reproduction's addition).

The paper reports throughput only. Latency — rounds from production to
consumption — is the complementary service metric, and its behavior is
not implied by the throughput curves: as ``rs`` grows, *throughput*
falls (Figure 7) while per-entity latency stays nearly flat (fewer
entities in flight, same pipeline speed); as *turns* are added at fixed
``rs``, latency grows sharply (corner blocking holds entities in
mid-path cells). This experiment measures both sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.params import Parameters
from repro.core.system import build_corridor_system
from repro.grid.paths import straight_path, turns_path
from repro.grid.topology import Direction, Grid
from repro.metrics.latency import LatencyStats, latency_stats
from repro.monitors.recorder import MonitorSuite
from repro.sim.simulator import Simulator

ROUNDS = 2000
GRID_N = 8


@dataclass(frozen=True)
class LatencyPoint:
    """One configuration's latency summary plus its throughput."""

    label: str
    x: float
    throughput: float
    stats: LatencyStats


def _run(path_cells, params: Parameters, label: str, x: float, rounds: int,
         seed: int) -> LatencyPoint:
    system = build_corridor_system(
        Grid(GRID_N), params, path_cells, rng=random.Random(seed)
    )
    simulator = Simulator(system=system, rounds=rounds, monitors=MonitorSuite())
    result = simulator.run()
    latencies = simulator.tracker.latencies()
    if not latencies:
        raise RuntimeError(f"no deliveries at point {label}")
    return LatencyPoint(
        label=label,
        x=x,
        throughput=result.throughput,
        stats=latency_stats(latencies),
    )


def sweep_rs(
    spacings: Sequence[float] = (0.05, 0.2, 0.4, 0.6),
    rounds: int = ROUNDS,
    seed: int = 21,
) -> List[LatencyPoint]:
    """Latency vs safety spacing on the straight Figure 7 corridor."""
    path = straight_path((1, 0), Direction.NORTH, 8)
    return [
        _run(
            path.cells,
            Parameters(l=0.25, rs=rs, v=0.2),
            label=f"rs={rs}",
            x=rs,
            rounds=rounds,
            seed=seed,
        )
        for rs in spacings
    ]


def sweep_turns(
    turn_counts: Sequence[int] = (0, 2, 4, 6),
    rounds: int = ROUNDS,
    seed: int = 22,
) -> List[LatencyPoint]:
    """Latency vs path complexity at fixed rs (the Figure 8 family)."""
    return [
        _run(
            turns_path((0, 0), 8, turns).cells,
            Parameters(l=0.2, rs=0.05, v=0.2),
            label=f"turns={turns}",
            x=float(turns),
            rounds=rounds,
            seed=seed,
        )
        for turns in turn_counts
    ]
