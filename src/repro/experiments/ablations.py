"""Ablation experiments for the design choices DESIGN.md calls out.

Each ablation isolates one mechanism of the protocol and measures what
breaks (or what is gained) without it:

* **Token fairness** (:func:`token_policy_ablation`) — on a Y-shaped merge
  topology, compare round-robin rotation (the paper's mechanism, needed
  for Lemma 9) against a sticky token and a random token. The sticky
  token starves one branch; round-robin shares the junction.
* **Signal gap** (:func:`unsafe_ablation`) — remove the Signal permission
  entirely (greedy movement). Throughput improves, but the monitors count
  separation violations: the safety cost of dropping the mechanism.
* **Centralized coordination** (:func:`centralized_ablation`) — a periodic
  global coordinator versus the distributed protocol, both under cell
  churn plus (for the coordinator) its own crash/recovery process.
* **Source policy** (:func:`source_policy_ablation`) — delivered
  throughput as a function of offered load (Bernoulli arrival rates vs
  the saturating eager source).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.baselines.centralized import CentralizedSystem, CoordinatorSpec
from repro.baselines.unsafe import UnsafeSystem
from repro.core.params import Parameters
from repro.core.policies import (
    RandomTokenPolicy,
    RoundRobinTokenPolicy,
    StickyTokenPolicy,
    TokenPolicy,
)
from repro.core.sources import EagerSource
from repro.core.system import System, build_corridor_system
from repro.faults.injector import FaultInjector
from repro.faults.model import BernoulliFaultModel
from repro.grid.paths import straight_path
from repro.grid.topology import CellId, Direction, Grid
from repro.monitors.recorder import MonitorSuite
from repro.sim.config import FaultSpec, SimulationConfig
from repro.sim.seeding import derive_rng
from repro.sim.simulator import Simulator, build_simulation

DEFAULT_ROUNDS = 2500
MERGE_PARAMS = Parameters(l=0.2, rs=0.05, v=0.2)


# ----------------------------------------------------------------------
# Token fairness
# ----------------------------------------------------------------------

@dataclass
class TokenAblationRow:
    """Outcome of one token policy on the merge topology."""

    policy: str
    throughput: float
    per_source_consumed: Dict[CellId, int]

    @property
    def fairness(self) -> float:
        """Min/max delivered ratio across sources (1 = perfectly fair)."""
        counts = list(self.per_source_consumed.values())
        if not counts or max(counts) == 0:
            return 0.0
        return min(counts) / max(counts)


def _merge_system(policy: TokenPolicy, seed: int) -> System:
    """Y topology: two branches merging at a junction before the target.

    Alive cells: branch A ``(0,2)->(1,2)``, branch B ``(2,0)->(2,1)``,
    junction ``(2,2)``, stem ``(2,3)``, target ``(2,4)``. Sources at the
    branch tips.
    """
    grid = Grid(5)
    alive = {(0, 2), (1, 2), (2, 0), (2, 1), (2, 2), (2, 3), (2, 4)}
    system = System(
        grid=grid,
        params=MERGE_PARAMS,
        tid=(2, 4),
        sources={(0, 2): EagerSource(), (2, 0): EagerSource()},
        token_policy=policy,
        rng=random.Random(seed),
    )
    for cid in grid.cells():
        if cid not in alive:
            system.fail(cid)
    return system


def token_policy_ablation(
    rounds: int = DEFAULT_ROUNDS, seed: int = 11
) -> List[TokenAblationRow]:
    """Run the merge workload under each token policy."""
    policies: List[Tuple[str, TokenPolicy]] = [
        ("round-robin", RoundRobinTokenPolicy()),
        ("random", RandomTokenPolicy(random.Random(seed))),
        ("sticky", StickyTokenPolicy()),
    ]
    rows: List[TokenAblationRow] = []
    for name, policy in policies:
        system = _merge_system(policy, seed)
        simulator = Simulator(
            system=system, rounds=rounds, monitors=MonitorSuite()
        )
        result = simulator.run()
        per_source: Dict[CellId, int] = {(0, 2): 0, (2, 0): 0}
        for record in simulator.tracker.consumed():
            per_source[record.source] = per_source.get(record.source, 0) + 1
        rows.append(
            TokenAblationRow(
                policy=name,
                throughput=result.throughput,
                per_source_consumed=per_source,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Signal gap (unsafe baseline)
# ----------------------------------------------------------------------

@dataclass
class UnsafeAblationRow:
    """Safe protocol vs greedy baseline on the same corridor."""

    variant: str
    throughput: float
    safety_violations: int


def unsafe_ablation(
    rounds: int = DEFAULT_ROUNDS, seed: int = 12
) -> List[UnsafeAblationRow]:
    """Compare the paper's protocol with the signal-free greedy variant.

    The workload is the Y merge (where greedy's simultaneous inbound
    transfers break separation; a lone straight corridor happens to stay
    safe by quantization — see tests/test_baselines.py). The spacing is
    ``rs = 0.3`` so that ``d = 0.5`` exceeds the 0.375 offset between the
    junction's two entry points — with smaller ``d`` the simultaneous
    entries are geometrically (accidentally) safe.
    """
    grid = Grid(5)
    merge_params = Parameters(l=0.2, rs=0.3, v=0.2)
    alive = {(0, 2), (1, 2), (2, 0), (2, 1), (2, 2), (2, 3), (2, 4)}
    rows: List[UnsafeAblationRow] = []
    for name, cls in (("signaled (paper)", System), ("greedy (no signal)", UnsafeSystem)):
        system = cls(
            grid=grid,
            params=merge_params,
            tid=(2, 4),
            sources={(0, 2): EagerSource(), (2, 0): EagerSource()},
            rng=random.Random(seed),
        )
        for cid in grid.cells():
            if cid not in alive:
                system.fail(cid)
        monitors = MonitorSuite(strict=False, check_h_predicate=False, check_lemma_4=False)
        result = Simulator(system=system, rounds=rounds, monitors=monitors).run()
        safety_count = monitors.violation_counts().get("Safe (Theorem 5)", 0)
        rows.append(
            UnsafeAblationRow(
                variant=name,
                throughput=result.throughput,
                safety_violations=safety_count,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Centralized vs distributed
# ----------------------------------------------------------------------

@dataclass
class CentralizedAblationRow:
    """One coordination scheme under the same cell churn."""

    variant: str
    throughput: float
    outage_rounds: int


def centralized_ablation(
    rounds: int = DEFAULT_ROUNDS,
    pf: float = 0.01,
    pr: float = 0.1,
    period: int = 10,
    seed: int = 13,
) -> List[CentralizedAblationRow]:
    """Distributed protocol vs centralized coordinator under churn.

    The coordinator suffers the same per-round crash/recovery coins as an
    individual cell — the fairest reading of "single point of failure".
    """
    grid = Grid(8)
    path = straight_path((1, 0), Direction.NORTH, 8)
    params = Parameters(l=0.2, rs=0.05, v=0.2)
    rows: List[CentralizedAblationRow] = []

    distributed = System(
        grid=grid,
        params=params,
        tid=path.target,
        sources={path.source: EagerSource()},
        rng=random.Random(seed),
    )
    injector = FaultInjector(
        BernoulliFaultModel(pf=pf, pr=pr), rng=derive_rng(seed, "faults-dist")
    )
    result = Simulator(
        system=distributed, rounds=rounds, injector=injector, monitors=MonitorSuite()
    ).run()
    rows.append(
        CentralizedAblationRow(
            variant="distributed (paper)",
            throughput=result.throughput,
            outage_rounds=0,
        )
    )

    centralized = CentralizedSystem(
        grid=grid,
        params=params,
        tid=path.target,
        sources={path.source: EagerSource()},
        rng=random.Random(seed),
        coordinator=CoordinatorSpec(period=period, pf=pf, pr=pr),
    )
    injector = FaultInjector(
        BernoulliFaultModel(pf=pf, pr=pr), rng=derive_rng(seed, "faults-cent")
    )
    result = Simulator(
        system=centralized, rounds=rounds, injector=injector, monitors=MonitorSuite()
    ).run()
    rows.append(
        CentralizedAblationRow(
            variant=f"centralized (period={period})",
            throughput=result.throughput,
            outage_rounds=centralized.coordinator_outage_rounds,
        )
    )
    return rows


# ----------------------------------------------------------------------
# Source policy
# ----------------------------------------------------------------------

@dataclass
class SourceAblationRow:
    """Delivered throughput at one offered load."""

    policy: str
    offered: float
    produced: int
    throughput: float


def source_policy_ablation(
    rounds: int = DEFAULT_ROUNDS, seed: int = 14
) -> List[SourceAblationRow]:
    """Offered-load sweep: Bernoulli arrivals approach the eager ceiling."""
    path = straight_path((1, 0), Direction.NORTH, 8)
    rows: List[SourceAblationRow] = []
    for rate in (0.02, 0.05, 0.1, 0.2, 0.5):
        config = SimulationConfig(
            grid_width=8,
            params=Parameters(l=0.25, rs=0.05, v=0.2),
            rounds=rounds,
            path=path.cells,
            source_policy=f"bernoulli:{rate}",
            seed=seed,
        )
        result = build_simulation(config).run()
        rows.append(
            SourceAblationRow(
                policy=f"bernoulli:{rate}",
                offered=rate,
                produced=result.produced,
                throughput=result.throughput,
            )
        )
    config = SimulationConfig(
        grid_width=8,
        params=Parameters(l=0.25, rs=0.05, v=0.2),
        rounds=rounds,
        path=path.cells,
        source_policy="eager",
        seed=seed,
    )
    result = build_simulation(config).run()
    rows.append(
        SourceAblationRow(
            policy="eager",
            offered=1.0,
            produced=result.produced,
            throughput=result.throughput,
        )
    )
    return rows
