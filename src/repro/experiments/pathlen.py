"""Path-length experiment (paper Section IV prose, no figure).

The paper states: "For a sufficiently large K, throughput is independent
of the length of the path." This experiment makes that claim a measured
series: straight corridors of increasing length, same parameters, same
horizon — the curve should be flat (longer paths add latency, not rate,
once the pipeline fills).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.params import Parameters
from repro.grid.paths import straight_path
from repro.grid.topology import Direction
from repro.sim.config import SimulationConfig
from repro.sim.results import SweepResult
from repro.sim.sweep import Sweep

ROUNDS = 2500
PARAMS = Parameters(l=0.25, rs=0.05, v=0.2)
#: Shortest length is 4: a length-3 corridor (source -> relay -> target)
#: has no pipeline interior and runs ~1.5x faster — the paper's claim is
#: about paths long enough to pipeline.
LENGTHS: Tuple[int, ...] = (4, 5, 6, 8, 10, 12, 16)


def build_sweep(
    rounds: Optional[int] = None,
    lengths: Sequence[int] = LENGTHS,
    seed: int = 15,
) -> Sweep:
    """The path-length sweep as declarative configs."""
    horizon = ROUNDS if rounds is None else rounds
    sweep = Sweep(name="pathlen")
    for length in lengths:
        path = straight_path((1, 0), Direction.NORTH, length)
        config = SimulationConfig(
            grid_width=max(8, length),
            params=PARAMS,
            rounds=horizon,
            path=path.cells,
            seed=seed,
            warmup=min(horizon // 5, 10 * length),
        )
        sweep.add(f"length={length}", config, length=length)
    return sweep


def run(
    rounds: Optional[int] = None,
    lengths: Sequence[int] = LENGTHS,
    seed: int = 15,
    progress=lambda message: None,
    workers: int = 1,
    checkpoint=None,
    resume: bool = False,
    point_timeout: Optional[float] = None,
    max_retries: int = 2,
    strict: bool = False,
) -> SweepResult:
    """Execute the path-length sweep (optionally over ``workers`` processes).

    Execution is supervised (retries / per-point timeout / worker-death
    recovery — see :mod:`repro.sim.supervisor`); exhausted points land
    on ``SweepResult.failures`` unless ``strict`` restores fail-fast.
    """
    return build_sweep(rounds=rounds, lengths=lengths, seed=seed).run(
        progress,
        workers=workers,
        checkpoint=checkpoint,
        resume=resume,
        point_timeout=point_timeout,
        max_retries=max_retries,
        strict=strict,
    )


def series(result: SweepResult) -> Dict[str, List[Tuple[int, float]]]:
    """Reshape into one series: ``{"throughput": [(length, thr), ...]}``."""
    points = sorted(
        (run_result.extras["length"], run_result.throughput)
        for run_result in result.runs
    )
    return {"throughput": points}


def shape_checks(result: SweepResult) -> Dict[str, bool]:
    """The paper's prose claim as a boolean check: the curve is flat."""
    return {"independent_of_length": flatness(result) < 0.15}


def flatness(result: SweepResult) -> float:
    """Max relative deviation from the mean throughput across lengths."""
    values = [run_result.throughput for run_result in result.runs]
    mean = sum(values) / len(values)
    if mean == 0:
        return float("inf")
    return max(abs(value - mean) / mean for value in values)
