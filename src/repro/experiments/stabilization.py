"""Stabilization-time experiment (Corollary 7, measured).

Corollary 7 promises that within ``O(N^2)`` rounds of the last failure,
every target-connected cell has its route fixed. This experiment
measures the actual count: inject a burst of crashes (various sizes) on
an ``N x N`` grid with converged routing, stop the faults, and count the
rounds until ``dist``/``next`` match the BFS ground truth again.

The measured values should sit far below the ``N^2`` bound — the true
cost is one round per hop of the longest re-routed path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.params import Parameters
from repro.core.system import System
from repro.grid.topology import Grid
from repro.monitors.progress import routing_stabilization_round

PARAMS = Parameters(l=0.25, rs=0.05, v=0.2)


@dataclass(frozen=True)
class StabilizationPoint:
    """One measurement: crash-burst size -> rounds to re-stabilize."""

    grid_n: int
    crashes: int
    rounds_to_stabilize: int
    bound: int

    @property
    def within_bound(self) -> bool:
        return self.rounds_to_stabilize <= self.bound


def measure(
    grid_n: int = 8,
    crash_counts: Sequence[int] = (1, 2, 4, 8, 16, 24),
    trials: int = 5,
    seed: int = 16,
) -> List[StabilizationPoint]:
    """Measure worst-of-``trials`` stabilization rounds per burst size."""
    points: List[StabilizationPoint] = []
    bound = grid_n * grid_n
    for crashes in crash_counts:
        worst = 0
        for trial in range(trials):
            rng = random.Random(seed + 1000 * crashes + trial)
            system = System(grid=Grid(grid_n), params=PARAMS, tid=(grid_n - 1, grid_n - 1))
            converged = routing_stabilization_round(system, max_rounds=bound)
            assert converged is not None
            candidates = [
                cid for cid in system.grid.cells() if cid != system.tid
            ]
            for victim in rng.sample(candidates, crashes):
                system.fail(victim)
            rounds = routing_stabilization_round(system, max_rounds=2 * bound)
            if rounds is None:
                rounds = 2 * bound + 1  # should never happen; visible if it does
            worst = max(worst, rounds)
        points.append(
            StabilizationPoint(
                grid_n=grid_n,
                crashes=crashes,
                rounds_to_stabilize=worst,
                bound=bound,
            )
        )
    return points
