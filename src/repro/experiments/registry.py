"""Experiment registry: experiment ids -> entry points.

Used by the CLI (``python -m repro experiment <id>``) and by the
benchmark harness, so both always run the same definitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.experiments import fig7, fig8, fig9, pathlen
from repro.sim.results import SweepResult


@dataclass(frozen=True)
class Experiment:
    """One registered experiment."""

    name: str
    description: str
    paper_rounds: int
    run: Callable[..., SweepResult]
    """Executes the sweep. Every registered runner accepts ``rounds``,
    ``progress``, the parallel-engine keywords ``workers`` /
    ``checkpoint`` / ``resume`` (see :mod:`repro.sim.parallel`), and the
    supervision keywords ``point_timeout`` / ``max_retries`` / ``strict``
    (see :mod:`repro.sim.supervisor`). Unless ``strict``, a returned
    :class:`SweepResult` may carry ``failures`` for points that exhausted
    their retry budget."""
    series: Callable[[SweepResult], dict]
    shape_checks: Callable[[SweepResult], Dict[str, bool]]


EXPERIMENTS: Dict[str, Experiment] = {
    "fig7": Experiment(
        name="fig7",
        description="Throughput vs safety spacing rs, one curve per velocity v "
        "(8x8, l=0.25, straight length-8 path, K=2500)",
        paper_rounds=fig7.ROUNDS,
        run=fig7.run,
        series=fig7.series,
        shape_checks=fig7.shape_checks,
    ),
    "fig8": Experiment(
        name="fig8",
        description="Throughput vs number of turns on a length-8 path, one curve "
        "per (v,l) combo (8x8, rs=0.05, K=2500)",
        paper_rounds=fig8.ROUNDS,
        run=fig8.run,
        series=fig8.series,
        shape_checks=fig8.shape_checks,
    ),
    "fig9": Experiment(
        name="fig9",
        description="Throughput vs failure probability pf, one curve per recovery "
        "probability pr (8x8, rs=0.05, l=0.2, v=0.2, K=20000)",
        paper_rounds=fig9.ROUNDS,
        run=fig9.run,
        series=fig9.series,
        shape_checks=fig9.shape_checks,
    ),
    "pathlen": Experiment(
        name="pathlen",
        description="Throughput vs straight-path length — the paper's prose "
        "claim that throughput is length-independent for large K "
        "(8x8+, l=0.25, rs=0.05, v=0.2, K=2500)",
        paper_rounds=pathlen.ROUNDS,
        run=pathlen.run,
        series=pathlen.series,
        shape_checks=pathlen.shape_checks,
    ),
}


def get_experiment(name: str) -> Experiment:
    """Look up an experiment id; raises ``KeyError`` with the known ids."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
