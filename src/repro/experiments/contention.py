"""Target-contention scaling experiment (this reproduction's addition).

The paper studies one source feeding one target. A natural capacity
question it leaves open: with the *whole boundary* producing, how does
delivered throughput scale with grid size?

Measured answer: it *decays toward an asymptotic floor*. On a small
grid the boundary sits next to the target and its four feeder cells are
kept saturated almost directly; as the grid grows, the feeders are
supplied through longer merging streets whose turn/merge blocking slows
the sustainable feed rate, converging to the four-street service floor
(~0.34 entities/round at the default parameters). Offered load grows
linearly with the boundary (4N-4 sources), so the excess piles up as an
in-flight queue — delivery saturates from above while the population
and the blocked-cell count keep climbing. The Signal mutual exclusion
at the target is what pins the ceiling; the streets are what pin the
floor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.params import Parameters
from repro.core.sources import EagerSource
from repro.core.system import System
from repro.grid.topology import Grid
from repro.metrics.occupancy import OccupancyProbe
from repro.monitors.recorder import MonitorSuite
from repro.sim.simulator import Simulator

PARAMS = Parameters(l=0.2, rs=0.05, v=0.2)
GRID_SIZES = (4, 6, 8, 10, 12)
ROUNDS = 1500


@dataclass(frozen=True)
class ContentionPoint:
    """One grid size's outcome under all-boundary load."""

    grid_n: int
    sources: int
    throughput: float
    mean_in_flight: float
    mean_blocked: float


def run_point(grid_n: int, rounds: int = ROUNDS, seed: int = 17) -> ContentionPoint:
    """Run the all-boundary workload at one grid size."""
    grid = Grid(grid_n)
    target = (grid_n // 2, grid_n // 2)
    sources = {
        cid: EagerSource() for cid in grid.boundary_cells() if cid != target
    }
    system = System(
        grid=grid,
        params=PARAMS,
        tid=target,
        sources=sources,
        rng=random.Random(seed),
    )
    simulator = Simulator(system=system, rounds=rounds, monitors=MonitorSuite())
    result = simulator.run()
    return ContentionPoint(
        grid_n=grid_n,
        sources=len(sources),
        throughput=result.throughput,
        mean_in_flight=simulator.occupancy.mean_entities(),
        mean_blocked=simulator.occupancy.mean_blocked(),
    )


def measure(
    grid_sizes: Sequence[int] = GRID_SIZES,
    rounds: int = ROUNDS,
    seed: int = 17,
) -> List[ContentionPoint]:
    """The full scaling sweep."""
    return [run_point(n, rounds=rounds, seed=seed) for n in grid_sizes]


def floor_ratio(points: Sequence[ContentionPoint]) -> float:
    """Last-size throughput over the previous size's (~1 = asymptote hit)."""
    if len(points) < 2:
        raise ValueError("need at least two points")
    previous = points[-2].throughput
    if previous == 0:
        return 0.0
    return points[-1].throughput / previous
