"""Figure 7 — throughput versus safety spacing ``rs`` for several velocities.

Paper setup: 8x8 grid, ``l = 0.25``, ``SID = {<1,0>}``, ``tid = <1,7>``,
``K = 2500`` rounds, entities moving along the straight length-8 path
``<1,0> ... <1,7>``. One curve per ``v`` in {0.05, 0.1, 0.2, 0.25};
``rs`` sweeps the x-axis.

Paper findings the reproduction must exhibit:

* throughput decreases with ``rs`` (more spacing, fewer entities),
* throughput (mostly) increases with ``v``,
* at very small ``rs``, a *lower* velocity can beat a higher one,
* the curves saturate around ``rs ~ 0.55`` (one entity per cell).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.params import Parameters
from repro.grid.paths import straight_path
from repro.grid.topology import Direction
from repro.sim.config import SimulationConfig
from repro.sim.results import SweepResult
from repro.sim.sweep import Sweep

GRID_N = 8
ENTITY_LENGTH = 0.25
ROUNDS = 2500
VELOCITIES: Tuple[float, ...] = (0.05, 0.1, 0.2, 0.25)
#: rs sweep; rs + l < 1 caps it below 0.75 for l = 0.25.
SPACINGS: Tuple[float, ...] = tuple(round(0.05 * k, 2) for k in range(1, 15))

PATH = straight_path((1, 0), Direction.NORTH, 8)


def build_sweep(
    rounds: Optional[int] = None,
    velocities: Sequence[float] = VELOCITIES,
    spacings: Sequence[float] = SPACINGS,
    seed: int = 7,
    monitors: bool = True,
) -> Sweep:
    """The figure's full parameter grid as a sweep."""
    horizon = ROUNDS if rounds is None else rounds
    sweep = Sweep(name="fig7")
    for v in velocities:
        for rs in spacings:
            config = SimulationConfig(
                grid_width=GRID_N,
                params=Parameters(l=ENTITY_LENGTH, rs=rs, v=v),
                rounds=horizon,
                path=PATH.cells,
                seed=seed,
                monitors=monitors,
            )
            sweep.add(f"v={v},rs={rs}", config, v=v, rs=rs)
    return sweep


def run(
    rounds: Optional[int] = None,
    velocities: Sequence[float] = VELOCITIES,
    spacings: Sequence[float] = SPACINGS,
    seed: int = 7,
    monitors: bool = True,
    progress=lambda message: None,
    workers: int = 1,
    checkpoint=None,
    resume: bool = False,
    point_timeout: Optional[float] = None,
    max_retries: int = 2,
    strict: bool = False,
) -> SweepResult:
    """Execute the Figure 7 sweep (optionally over ``workers`` processes).

    Execution is supervised (retries / per-point timeout / worker-death
    recovery — see :mod:`repro.sim.supervisor`); exhausted points land
    on ``SweepResult.failures`` unless ``strict`` restores fail-fast.
    """
    return build_sweep(
        rounds=rounds,
        velocities=velocities,
        spacings=spacings,
        seed=seed,
        monitors=monitors,
    ).run(
        progress,
        workers=workers,
        checkpoint=checkpoint,
        resume=resume,
        point_timeout=point_timeout,
        max_retries=max_retries,
        strict=strict,
    )


def series(result: SweepResult) -> Dict[float, List[Tuple[float, float]]]:
    """Reshape into the figure's series: ``v -> [(rs, throughput), ...]``."""
    curves: Dict[float, List[Tuple[float, float]]] = {}
    for run_result in result.runs:
        v = run_result.extras["v"]
        rs = run_result.extras["rs"]
        curves.setdefault(v, []).append((rs, run_result.throughput))
    for points in curves.values():
        points.sort()
    return curves


def shape_checks(result: SweepResult) -> Dict[str, bool]:
    """The paper's qualitative findings as boolean checks.

    * ``monotone_rs`` — along each curve, throughput never increases by
      more than measurement noise as ``rs`` grows.
    * ``velocity_order_at_mid_rs`` — at a mid-range spacing, faster cells
      deliver at least as much as slower ones.
    * ``saturation`` — the largest two spacings of each curve differ by
      less than 10% (the rs ~ 0.55 plateau).
    """
    curves = series(result)
    checks: Dict[str, bool] = {}
    tolerance = 0.005
    checks["monotone_rs"] = all(
        all(b[1] <= a[1] + tolerance for a, b in zip(points, points[1:]))
        for points in curves.values()
    )
    mid_rs = _closest_spacing(curves, 0.3)
    order = sorted(curves)
    mid_values = [dict(curves[v])[mid_rs] for v in order]
    checks["velocity_order_at_mid_rs"] = all(
        later >= earlier - tolerance
        for earlier, later in zip(mid_values, mid_values[1:])
    )
    saturated = []
    for points in curves.values():
        tail = [value for _, value in points[-2:]]
        saturated.append(abs(tail[1] - tail[0]) <= max(0.1 * max(tail), tolerance))
    checks["saturation"] = all(saturated)
    return checks


def _closest_spacing(curves: Dict[float, List[Tuple[float, float]]], target: float) -> float:
    spacings = sorted({rs for points in curves.values() for rs, _ in points})
    return min(spacings, key=lambda rs: abs(rs - target))
