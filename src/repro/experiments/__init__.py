"""Experiment definitions: one module per paper figure, plus ablations.

Each module exposes

* ``build_sweep(rounds=None, ...)`` — the exact parameter grid of the
  figure (``rounds=None`` uses the paper's horizon),
* ``run(...)`` — execute and return a
  :class:`~repro.sim.results.SweepResult`,
* ``series(result)`` — reshape the runs into the figure's named series
  (x values and throughputs), ready for tabulation or plotting.

The registry maps experiment ids (``fig7``, ``fig8``, ``fig9``,
``ablations``) to these entry points for the CLI and benchmarks.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment

__all__ = ["EXPERIMENTS", "get_experiment"]
