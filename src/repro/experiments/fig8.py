"""Figure 8 — throughput versus number of turns along a length-8 path.

Paper setup: 8x8 grid, ``rs = 0.05``, ``K = 2500``, length-8 corridor
paths with a varying number of turns, four ``(v, l)`` combinations:

    (v=0.2,  l=0.2), (v=0.1, l=0.2), (v=0.1, l=0.1), (v=0.05, l=0.1)

Paper findings: throughput decreases as turns increase, then the decrease
saturates (signaling leaves roughly one entity per cell).

A length-8 path has 7 hops, so the number of turns ranges over 0..6. The
paths are staircases from :func:`repro.grid.paths.turns_path`, anchored
at ``(0, 0)`` so every variant fits the 8x8 grid.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.params import Parameters
from repro.grid.paths import Path, turns_path
from repro.sim.config import SimulationConfig
from repro.sim.results import SweepResult
from repro.sim.sweep import Sweep

GRID_N = 8
ROUNDS = 2500
SAFETY_SPACING = 0.05
PATH_LENGTH = 8
TURN_COUNTS: Tuple[int, ...] = tuple(range(0, PATH_LENGTH - 1))
COMBOS: Tuple[Tuple[float, float], ...] = (
    (0.2, 0.2),
    (0.1, 0.2),
    (0.1, 0.1),
    (0.05, 0.1),
)
"""(v, l) pairs, in the paper's legend order."""


def path_with_turns(turns: int, length: int = PATH_LENGTH) -> Path:
    """The corridor path used for a given turn count."""
    return turns_path((0, 0), length, turns)


def build_sweep(
    rounds: Optional[int] = None,
    combos: Sequence[Tuple[float, float]] = COMBOS,
    turn_counts: Sequence[int] = TURN_COUNTS,
    seed: int = 8,
    monitors: bool = True,
) -> Sweep:
    """The figure's full parameter grid as a sweep."""
    horizon = ROUNDS if rounds is None else rounds
    sweep = Sweep(name="fig8")
    for v, l in combos:
        for turns in turn_counts:
            path = path_with_turns(turns)
            config = SimulationConfig(
                grid_width=GRID_N,
                params=Parameters(l=l, rs=SAFETY_SPACING, v=v),
                rounds=horizon,
                path=path.cells,
                seed=seed,
                monitors=monitors,
            )
            sweep.add(f"v={v},l={l},turns={turns}", config, v=v, l=l, turns=turns)
    return sweep


def run(
    rounds: Optional[int] = None,
    combos: Sequence[Tuple[float, float]] = COMBOS,
    turn_counts: Sequence[int] = TURN_COUNTS,
    seed: int = 8,
    monitors: bool = True,
    progress=lambda message: None,
    workers: int = 1,
    checkpoint=None,
    resume: bool = False,
    point_timeout: Optional[float] = None,
    max_retries: int = 2,
    strict: bool = False,
) -> SweepResult:
    """Execute the Figure 8 sweep (optionally over ``workers`` processes).

    Execution is supervised (retries / per-point timeout / worker-death
    recovery — see :mod:`repro.sim.supervisor`); exhausted points land
    on ``SweepResult.failures`` unless ``strict`` restores fail-fast.
    """
    return build_sweep(
        rounds=rounds,
        combos=combos,
        turn_counts=turn_counts,
        seed=seed,
        monitors=monitors,
    ).run(
        progress,
        workers=workers,
        checkpoint=checkpoint,
        resume=resume,
        point_timeout=point_timeout,
        max_retries=max_retries,
        strict=strict,
    )


def series(
    result: SweepResult,
) -> Dict[Tuple[float, float], List[Tuple[int, float]]]:
    """Reshape into the figure's series: ``(v, l) -> [(turns, thr), ...]``."""
    curves: Dict[Tuple[float, float], List[Tuple[int, float]]] = {}
    for run_result in result.runs:
        key = (run_result.extras["v"], run_result.extras["l"])
        curves.setdefault(key, []).append(
            (run_result.extras["turns"], run_result.throughput)
        )
    for points in curves.values():
        points.sort()
    return curves


def shape_checks(result: SweepResult) -> Dict[str, bool]:
    """The paper's qualitative findings as boolean checks.

    * ``turns_hurt`` — every curve's zero-turn throughput is at least its
      max-turn throughput.
    * ``saturation`` — the last two turn counts differ by less than 15%
      (the decrease levels off).
    """
    curves = series(result)
    tolerance = 0.005
    checks: Dict[str, bool] = {}
    checks["turns_hurt"] = all(
        points[0][1] >= points[-1][1] - tolerance for points in curves.values()
    )
    saturated = []
    for points in curves.values():
        tail = [value for _, value in points[-2:]]
        saturated.append(abs(tail[1] - tail[0]) <= max(0.15 * max(tail), tolerance))
    checks["saturation"] = all(saturated)
    return checks
