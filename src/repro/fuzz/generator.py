"""Seed-to-scenario generation: one integer determines everything.

:func:`generate_scenario` maps a seed to a complete, *valid*
:class:`Scenario`: a :class:`~repro.sim.config.SimulationConfig` (grid,
parameters, workload, source/token policies, fault schedule, engine
choice, horizon) plus a :class:`NetSpec` with the message-passing
adversary knobs (advert loss, latency jitter). Parameters are sampled
*near their admissibility boundaries* — ``v`` up to ``l`` and
``rs + l`` close to 1 — because the paper's safety margins are thinnest
exactly there (the Safe predicate separates entities by ``l + rs``, and
Lemma 4's gap argument consumes the whole ``1 - l - rs`` slack).

The generator never emits an invalid configuration: every constraint
the config layer enforces (``v <= l``, ``rs + l < 1``, corridor +
recovery-fault exclusivity) is respected by construction, so every
violation an oracle reports is a real protocol/implementation finding,
not a malformed input. Scenarios serialize to/from plain dicts — the
shrinker's repro artifacts embed them — and carry a stable fingerprint
for campaign bookkeeping.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass, field
from typing import Dict

from repro.core.params import Parameters
from repro.grid.paths import straight_path, turns_path
from repro.grid.topology import Direction
from repro.multiflow.commodities import Commodity
from repro.multiflow.workload import WORKLOAD_PROFILES
from repro.sim.config import FaultSpec, SimulationConfig

#: Scenario-space version: bump when the sampling distribution changes,
#: so committed corpus entries and nightly seed ranges can detect that
#: seed N no longer means the same scenario. Version 2 added
#: ``"vectorized"`` to the engine pins (which shifts every draw after
#: the engine choice, remapping the whole seed space). Version 3 added
#: ``"sharded"`` with a pinned district count (and forces the
#: round-robin token policy for sharded pins — the random policy's
#: shared RNG stream cannot be split across district processes).
#: Version 4 reserves the *first* draw for a multi-commodity branch
#: (~25% of seeds): those scenarios carry ``commodities=`` + a workload
#: profile instead of a corridor/free-form layout, pin only the engines
#: that support multi-commodity systems (reference/incremental), and
#: disable the network legs (the netsim oracle models the single-flow
#: advert protocol). The leading draw remaps the whole seed space.
#: Version 5 splits the first draw three ways: < 0.25 stays the
#: multi-commodity arm, [0.25, 0.55) is the *adversary* arm (~30% of
#: seeds draw a named campaign class from
#: ``repro.adversary.scripts.ADVERSARIES`` — regional failure waves,
#: healing partitions, rotating targets, stabilization-frequency
#: oscillators, token-spacing pressure, asynchronous timed-round
#: jitter), and the rest is the unchanged standard arm. The new
#: ``adversary``/``jitter`` config fields also change every config
#: serialization, so all corpus fingerprints migrate.
GENERATOR_VERSION = 5

#: Mixed into the seed so the generator's stream is independent of the
#: simulation streams derived from ``config.seed`` (which equals the
#: scenario seed — scenarios must be reproducible from one integer).
_SALT = 0xF022


@dataclass(frozen=True)
class NetSpec:
    """Message-passing adversary knobs for the ``netsim`` oracle.

    ``drop`` is the per-advert loss probability of a
    :class:`~repro.netsim.lossy.LossyNetwork`; ``jitter`` the upper
    bound of a uniform per-message latency (in round periods) driven by
    the timed-round synchronizer. Both default to off (``0.0``), which
    makes the netsim oracle a no-op — the shrinker exploits that to
    discard the network leg when it is not load-bearing.
    """

    drop: float = 0.0
    jitter: float = 0.0
    rounds: int = 60
    """Horizon for the network legs (decoupled from ``config.rounds``
    because the lossy leg needs enough rounds to see deliveries even at
    high drop rates)."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop <= 1.0:
            raise ValueError(f"drop must be in [0, 1], got {self.drop}")
        if self.jitter < 0.0:
            raise ValueError(f"jitter must be nonnegative, got {self.jitter}")
        if self.rounds < 0:
            raise ValueError(f"net rounds must be nonnegative, got {self.rounds}")

    @property
    def enabled(self) -> bool:
        return self.rounds > 0 and (self.drop > 0.0 or self.jitter > 0.0)

    def to_dict(self) -> Dict:
        """JSON-ready form; inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "NetSpec":
        return cls(**data)


@dataclass(frozen=True)
class Scenario:
    """One fuzz input: a simulation config plus network adversary knobs."""

    seed: int
    config: SimulationConfig
    net: NetSpec = field(default_factory=NetSpec)

    def to_dict(self) -> Dict:
        """JSON-ready form (stamps ``generator_version``); inverse of
        :meth:`from_dict`."""
        return {
            "generator_version": GENERATOR_VERSION,
            "seed": self.seed,
            "config": self.config.to_dict(),
            "net": self.net.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Scenario":
        return cls(
            seed=data["seed"],
            config=SimulationConfig.from_dict(data["config"]),
            net=NetSpec.from_dict(data.get("net", {})),
        )

    def fingerprint(self) -> str:
        """Stable 16-hex digest over the canonical dict form."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _sample_params(rng: random.Random) -> Parameters:
    """Admissible parameters biased toward the boundaries.

    ``l`` spans coarse to fine; ``rs`` eats a sampled fraction of the
    remaining ``1 - l`` slack (up to 90% — near the ``rs + l < 1``
    boundary); ``v`` is a fraction of ``l`` including the paper's
    ``v = l`` extreme. Values are rounded so scenario dicts stay
    readable and float round-trips exact.
    """
    l = rng.choice([0.2, 0.25, 0.4, 0.5])
    slack_fraction = rng.choice([0.1, 0.25, 0.5, 0.75, 0.9])
    rs = round((1.0 - l) * slack_fraction * 0.2, 4)
    if rng.random() < 0.25:  # push toward the rs + l < 1 boundary
        rs = round((1.0 - l) * 0.9, 4)
    v = round(l * rng.choice([0.4, 0.6, 0.8, 1.0]), 4)
    return Parameters(l=l, rs=rs, v=v)


def _sample_source_policy(rng: random.Random) -> str:
    return rng.choice(
        [
            "eager",
            "eager",
            "eager",
            "silent",
            f"bernoulli:{rng.choice(['0.2', '0.5', '0.8'])}",
            f"capped:{rng.randint(1, 10)}",
        ]
    )


def _sample_token_policy(rng: random.Random) -> str:
    return rng.choice(["roundrobin", "roundrobin", "random", "sticky"])


def _sample_commodities(rng: random.Random, n: int) -> tuple:
    """2-3 commodities with pairwise-distinct targets and 1-2 sources each.

    Sources are drawn from the non-target cells, so every commodity is
    valid by construction (``target not in sources``); sources *may*
    overlap between commodities — the residency rule arbitrates those
    contended injection points at runtime.
    """
    cells = [(i, j) for i in range(n) for j in range(n)]
    count = rng.randint(2, 3)
    targets = rng.sample(cells, count)
    others = [cell for cell in cells if cell not in targets]
    return tuple(
        Commodity(
            name=f"c{index}",
            target=target,
            sources=tuple(rng.sample(others, rng.randint(1, 2))),
        )
        for index, target in enumerate(targets)
    )


def _generate_multiflow_scenario(seed: int, rng: random.Random) -> Scenario:
    """The multi-commodity arm of the v4 scenario space.

    Samples a :class:`~repro.multiflow.commodities.Commodity` table plus
    a workload profile, pins the engines that support multi-commodity
    systems (``None``/reference/incremental), and leaves the network
    legs disabled — the netsim oracle models single-flow adverts.
    """
    n = rng.randint(4, 6)
    params = _sample_params(rng)
    rounds = rng.randint(40, 100)
    commodities = _sample_commodities(rng, n)
    workload = rng.choice(sorted(WORKLOAD_PROFILES))
    token_policy = _sample_token_policy(rng)
    engine = rng.choice([None, "reference", "incremental"])
    faulting = rng.random() < 0.45
    fault = (
        FaultSpec(
            pf=round(rng.uniform(0.01, 0.08), 4),
            pr=round(rng.uniform(0.05, 0.4), 4),
            protect_target=rng.random() < 0.7,
        )
        if faulting
        else FaultSpec()
    )
    config = SimulationConfig(
        grid_width=n,
        params=params,
        rounds=rounds,
        commodities=commodities,
        workload=workload,
        token_policy=token_policy,
        fault=fault,
        seed=seed,
        engine=engine,
    )
    return Scenario(seed=seed, config=config, net=NetSpec())


def _generate_adversary_scenario(
    seed: int, rng: random.Random, forced: str = None
) -> Scenario:
    """The adversary arm of the v5 scenario space.

    Draws a named campaign class (or uses ``forced``, the
    ``fuzz run --adversary`` path), asks the class for a canonical
    parameter spec, and lets it shape the workload (``token_starvation``
    rings the merge cell with eager sources), pin config fields
    (``async_jitter`` pins ``engine="timed"`` + a jitter bound), and
    restrict the engine choice (``rotating_target`` excludes the
    array/sharded engines, whose target is baked into their layouts).
    Background Bernoulli churn stays off — the ``stabilization-bound``
    oracle needs the *scripted* perturbation to be the last one — and
    the network legs stay disabled, as in the multi-commodity arm.
    """
    from repro.adversary.scripts import ADVERSARIES, parse_adversary_spec

    name = forced if forced is not None else rng.choice(sorted(ADVERSARIES))
    script = ADVERSARIES[name]
    spec = script.sample_spec(rng)
    _, spec_params = parse_adversary_spec(spec)
    n = rng.randint(4, 6)
    params = _sample_params(rng)
    rounds = rng.randint(40, 90)
    source_policy = _sample_source_policy(rng)
    token_policy = _sample_token_policy(rng)
    engine = script.engine_pins(rng)
    overrides = script.config_overrides(rng)
    workload = script.shape_workload(rng, n, n, spec_params)
    if workload is None:
        cells = [(i, j) for i in range(n) for j in range(n)]
        tid = rng.choice(cells)
        others = [cell for cell in cells if cell != tid]
        workload = {"tid": tid, "sources": tuple(rng.sample(others, rng.randint(1, 3)))}
    fields = dict(
        grid_width=n,
        params=params,
        rounds=rounds,
        tid=workload["tid"],
        sources=workload["sources"],
        source_policy=source_policy,
        token_policy=token_policy,
        fault=FaultSpec(),
        seed=seed,
        engine=engine,
        adversary=spec,
    )
    fields.update(overrides)
    return Scenario(seed=seed, config=SimulationConfig(**fields), net=NetSpec())


def generate_scenario(seed: int, adversary: str = None) -> Scenario:
    """The deterministic seed → scenario map (total: every seed is valid).

    ``adversary`` forces the adversary arm with the given class name
    (the ``fuzz run --adversary <class>`` campaign mode); the default
    ``None`` samples the full v5 space.
    """
    rng = random.Random((seed & 0xFFFFFFFF) ^ _SALT)
    roll = rng.random()
    if adversary is not None:
        return _generate_adversary_scenario(seed, rng, adversary)
    if roll < 0.25:  # v4: the multi-commodity arm
        return _generate_multiflow_scenario(seed, rng)
    if roll < 0.55:  # v5: the adversary arm
        return _generate_adversary_scenario(seed, rng)
    n = rng.randint(3, 6)
    params = _sample_params(rng)
    rounds = rng.randint(20, 80)
    source_policy = _sample_source_policy(rng)
    token_policy = _sample_token_policy(rng)
    engine = rng.choice([None, "reference", "incremental", "vectorized", "sharded"])
    shards = None
    if engine == "sharded":
        # Pin the district count explicitly (row-band partitioning needs
        # shards <= grid height) so the scenario is self-contained; the
        # random token policy is invalid for sharded runs by construction.
        shards = rng.randint(1, min(4, n))
        if token_policy == "random":
            token_policy = "roundrobin"
    faulting = rng.random() < 0.5
    fault = (
        FaultSpec(
            pf=round(rng.uniform(0.01, 0.1), 4),
            pr=round(rng.uniform(0.05, 0.4), 4),
            protect_target=rng.random() < 0.3,
        )
        if faulting
        else FaultSpec()
    )
    net = (
        NetSpec(
            drop=round(rng.choice([0.1, 0.3, 0.6, 0.9]), 4),
            jitter=rng.choice([0.0, 0.0, 0.4, 0.9]),
            rounds=rng.randint(30, 80),
        )
        if rng.random() < 0.4
        else NetSpec()
    )

    if rng.random() < 0.6:  # corridor workload
        turns = min(rng.choice([0, 0, 1, 2]), n - 2)
        if turns:
            path = turns_path((0, 0), n, turns)
        else:
            path = straight_path((rng.randrange(n), 0), Direction.NORTH, n)
        config = SimulationConfig(
            grid_width=n,
            params=params,
            rounds=rounds,
            path=path.cells,
            source_policy=source_policy,
            token_policy=token_policy,
            fault=fault,
            seed=seed,
            engine=engine,
            shards=shards,
            # A recovery model resurrects failed cells, which config
            # validation rejects for a pre-failed complement.
            fail_complement=(not faulting) and rng.random() < 0.5,
        )
    else:  # free-form workload: random target, 1-3 sources
        cells = [(i, j) for i in range(n) for j in range(n)]
        tid = rng.choice(cells)
        others = [cell for cell in cells if cell != tid]
        sources = tuple(rng.sample(others, rng.randint(1, 3)))
        config = SimulationConfig(
            grid_width=n,
            params=params,
            rounds=rounds,
            tid=tid,
            sources=sources,
            source_policy=source_policy,
            token_policy=token_policy,
            fault=fault,
            seed=seed,
            engine=engine,
            shards=shards,
        )
    return Scenario(seed=seed, config=config, net=net)
