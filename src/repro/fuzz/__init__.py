"""Deterministic scenario fuzzing: generate, check, campaign, shrink.

The fuzzer turns the repo's verification machinery — the monitor suite,
the reference-vs-incremental differential harness, trace replay, and
the netsim degradation checks — into an automated search for violating
scenarios:

* :mod:`repro.fuzz.generator` samples a complete, valid
  :class:`~repro.fuzz.generator.Scenario` from one integer seed;
* :mod:`repro.fuzz.oracles` runs a scenario through a registry of
  uniform :class:`~repro.fuzz.oracles.Oracle` checks, each returning
  structured :class:`~repro.fuzz.oracles.Violation` records;
* :mod:`repro.fuzz.campaign` fans seed ranges out over the supervised
  parallel sweep infrastructure and collects byte-stable summaries;
* :mod:`repro.fuzz.shrink` delta-debugs any failing scenario down to a
  minimal replayable repro (JSON artifact + generated pytest snippet).

Everything is deterministic: a seed fully determines its scenario, a
scenario fully determines its violations, so campaigns re-run
byte-identically and repros replay forever. The CLI surface is
``cellularflows fuzz run|shrink|replay``; ``docs/fuzzing.md`` documents
the oracle table (CI-diffed against :data:`repro.fuzz.oracles.ORACLES`).
"""

from repro.fuzz.generator import NetSpec, Scenario, generate_scenario
from repro.fuzz.oracles import ORACLES, Oracle, Violation, check_scenario
from repro.fuzz.campaign import CampaignResult, SeedOutcome, run_campaign
from repro.fuzz.shrink import (
    ShrinkResult,
    pytest_snippet,
    replay_repro,
    shrink_scenario,
    write_repro,
)

__all__ = [
    "CampaignResult",
    "NetSpec",
    "ORACLES",
    "Oracle",
    "Scenario",
    "SeedOutcome",
    "ShrinkResult",
    "Violation",
    "check_scenario",
    "generate_scenario",
    "pytest_snippet",
    "replay_repro",
    "run_campaign",
    "shrink_scenario",
    "write_repro",
]
