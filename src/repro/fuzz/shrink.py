"""Counterexample shrinking: delta-debug a failing scenario to a repro.

Given a scenario some oracle rejects, :func:`shrink_scenario` greedily
applies reduction passes — truncate the horizon to the first violating
round, drop the adversary script / fault schedule / network adversary,
weaken a surviving adversary (fewer waves, smaller region, lower
frequency, halved jitter), shorten the corridor / drop sources, pull
the source next to the target, remap the workload onto its bounding box
(smaller grid), canonicalize parameters, policies, and net knobs —
re-checking the oracles after every candidate and
keeping a reduction only when the violation *persists* (at least one of
the originally firing oracles still fires). The loop runs to a fixed point, so
the result is locally minimal: no single pass can shrink it further.

The output is a replayable artifact: :func:`write_repro` emits a JSON
file embedding the minimal scenario, its violations, and the accepted
reduction steps, plus a generated pytest snippet
(:func:`pytest_snippet`) that re-asserts the exact violations.
:func:`replay_repro` is the inverse — load the artifact, re-run the
oracles, and hand back recorded-vs-recomputed for comparison (the
``repro fuzz replay`` CLI exits nonzero when they differ, i.e. when the
bug stopped reproducing).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.params import Parameters
from repro.fuzz.generator import GENERATOR_VERSION, NetSpec, Scenario
from repro.fuzz.oracles import Violation, check_scenario
from repro.sim.config import FaultSpec, SimulationConfig

#: The oracles that fired — the identity of a finding for persistence
#: checks while shrinking. Deliberately coarser than (oracle, property):
#: the *property* legitimately drifts while a scenario shrinks (a
#: differential mismatch moves from ``signal.granted`` to ``state``, a
#: monitor finding from ``Safe`` to ``Invariant 1``) without the finding
#: becoming a different bug; requiring property equality would wedge the
#: reduction loop at a larger-than-minimal scenario.
Signature = Set[str]

#: Artifact schema; bump on shape changes so replays of old files fail
#: loudly instead of misparsing.
REPRO_SCHEMA = 1


def _signature(violations: Sequence[Violation]) -> Signature:
    return {v.oracle for v in violations}


@dataclass
class ShrinkResult:
    """A locally minimal violating scenario plus its provenance."""

    original: Scenario
    scenario: Scenario
    violations: List[Violation]
    steps: List[str]
    checks: int = 0
    """Oracle evaluations spent (candidates tried, accepted or not)."""


# ----------------------------------------------------------------------
# Reduction passes. Each yields (candidate, description) in most- to
# least-aggressive order; the first candidate whose violation persists
# is accepted and the pass loop restarts.
# ----------------------------------------------------------------------


def _with_config(scenario: Scenario, **changes) -> Scenario:
    return replace(scenario, config=replace(scenario.config, **changes))


def _try_config(scenario: Scenario, **changes) -> Optional[Scenario]:
    """Like :func:`_with_config`, but None when validation rejects it.

    Reduction passes run *outside* the shrink loop's oracle try/except,
    so a candidate that ``SimulationConfig.__post_init__`` rejects (e.g.
    un-pinning the engine while ``jitter > 0`` requires the timed one,
    or swapping the token policy out from under ``token_starvation``)
    must be skipped at construction, not raised.
    """
    try:
        return _with_config(scenario, **changes)
    except ValueError:
        return None


def _truncate_to_violation(
    scenario: Scenario, violations: Sequence[Violation]
) -> Iterator[Tuple[Scenario, str]]:
    """Cut each horizon to just past its earliest violating round."""
    config_rounds = [
        v.round_index
        for v in violations
        if v.round_index is not None and v.oracle != "netsim"
    ]
    if config_rounds:
        wanted = min(config_rounds) + 1
        if wanted < scenario.config.rounds:
            yield (
                _with_config(scenario, rounds=wanted, warmup=0),
                f"truncate rounds {scenario.config.rounds} -> {wanted}",
            )
    net_rounds = [
        v.round_index
        for v in violations
        if v.round_index is not None and v.oracle == "netsim"
    ]
    if net_rounds:
        wanted = min(net_rounds) + 1
        if wanted < scenario.net.rounds:
            yield (
                replace(scenario, net=replace(scenario.net, rounds=wanted)),
                f"truncate net rounds {scenario.net.rounds} -> {wanted}",
            )


def _drop_adversaries(
    scenario: Scenario, violations: Sequence[Violation]
) -> Iterator[Tuple[Scenario, str]]:
    """Remove the adversary script, fault schedule, network adversary."""
    if scenario.config.adversary is not None:
        candidate = _try_config(scenario, adversary=None)
        if candidate is not None:
            yield candidate, f"drop adversary {scenario.config.adversary}"
    if scenario.config.fault.enabled:
        yield _with_config(scenario, fault=FaultSpec()), "drop fault schedule"
    if scenario.net.enabled:
        yield replace(scenario, net=NetSpec()), "drop network adversary"


def _shrink_adversary(
    scenario: Scenario, violations: Sequence[Violation]
) -> Iterator[Tuple[Scenario, str]]:
    """Weaken a surviving adversary: fewer waves / smaller region /
    fewer relocations / lower oscillation frequency / less pressure, and
    halve timed-engine jitter (floor 0.25 periods)."""
    config = scenario.config
    if config.adversary is not None:
        from repro.adversary.scripts import (
            ADVERSARIES,
            format_adversary_spec,
            parse_adversary_spec,
        )

        name, params = parse_adversary_spec(config.adversary)
        for reduced, description in ADVERSARIES[name].shrink_specs(params):
            candidate = _try_config(
                scenario, adversary=format_adversary_spec(name, reduced)
            )
            if candidate is not None:
                yield candidate, f"adversary {name}: {description}"
    if config.jitter > 0.25:
        halved = round(config.jitter / 2, 4)
        yield (
            _with_config(scenario, jitter=halved),
            f"halve jitter {config.jitter} -> {halved}",
        )


def _shrink_workload(
    scenario: Scenario, violations: Sequence[Violation]
) -> Iterator[Tuple[Scenario, str]]:
    """Fewer cells in play: shorter corridor, or fewer sources."""
    config = scenario.config
    if config.path is not None:
        for keep in range(2, len(config.path)):
            yield (
                _with_config(scenario, path=config.path[-keep:]),
                f"shorten path {len(config.path)} -> {keep} cells",
            )
    elif len(config.sources) > 1:
        for index in range(len(config.sources)):
            remaining = config.sources[:index] + config.sources[index + 1 :]
            yield (
                _with_config(scenario, sources=remaining),
                f"drop source {config.sources[index]}",
            )


def _move_source_to_target(
    scenario: Scenario, violations: Sequence[Violation]
) -> Iterator[Tuple[Scenario, str]]:
    """Free-form: relocate a lone distant source adjacent to the target."""
    config = scenario.config
    if config.path is not None or len(config.sources) != 1 or config.tid is None:
        return
    (source,) = config.sources
    ti, tj = config.tid
    if abs(source[0] - ti) + abs(source[1] - tj) <= 1:
        return
    width = config.grid_width
    height = config.grid_height or width
    for ni, nj in ((ti + 1, tj), (ti - 1, tj), (ti, tj + 1), (ti, tj - 1)):
        if 0 <= ni < width and 0 <= nj < height:
            yield (
                _with_config(scenario, sources=((ni, nj),)),
                f"move source {source} -> {(ni, nj)}",
            )


def _shrink_grid(
    scenario: Scenario, violations: Sequence[Violation]
) -> Iterator[Tuple[Scenario, str]]:
    """Translate the workload to the origin and crop the grid around it."""
    config = scenario.config
    used = list(config.path) if config.path is not None else [config.tid, *config.sources]
    min_i = min(cell[0] for cell in used)
    min_j = min(cell[1] for cell in used)
    width = max(cell[0] for cell in used) - min_i + 1
    height = max(cell[1] for cell in used) - min_j + 1
    old_height = config.grid_height or config.grid_width
    if (width, height) == (config.grid_width, old_height):
        return

    def shift(cell):
        return (cell[0] - min_i, cell[1] - min_j)

    changes: Dict = {
        "grid_width": width,
        "grid_height": None if height == width else height,
    }
    if config.path is not None:
        changes["path"] = tuple(shift(cell) for cell in config.path)
    else:
        changes["tid"] = shift(config.tid)
        changes["sources"] = tuple(shift(cell) for cell in config.sources)
    yield (
        _with_config(scenario, **changes),
        f"crop grid {config.grid_width}x{old_height} -> {width}x{height}",
    )


#: Fast canonical parameter points, most aggressive first: with
#: ``v = l`` and a wide ``l`` an entity crosses a cell interior
#: (``1 - l``) in one round, pulling any movement-dependent violation
#: to the earliest possible round.
_CANONICAL_PARAMS = (
    Parameters(l=0.5, rs=0.05, v=0.5),
    Parameters(l=0.25, rs=0.05, v=0.25),
)


def _canonicalize(
    scenario: Scenario, violations: Sequence[Violation]
) -> Iterator[Tuple[Scenario, str]]:
    """Swap sampled params/policies/engine/net knobs for fast defaults.

    Candidates that config validation rejects for the scenario at hand
    (an adversary class pinning its engine or token policy, ``jitter >
    0`` requiring the timed engine) are skipped, not raised.
    """
    config = scenario.config
    candidates: List[Tuple[Optional[Scenario], str]] = []
    # Progress through the canonical points monotonically: once the
    # scenario sits on point k, only points after k are candidates —
    # otherwise a violation insensitive to the parameters makes the
    # loop oscillate between the points until max_checks runs out.
    try:
        start = _CANONICAL_PARAMS.index(config.params) + 1
    except ValueError:
        start = 0
    for params in _CANONICAL_PARAMS[start:]:
        if config.params != params:
            candidates.append(
                (
                    _try_config(scenario, params=params),
                    f"canonicalize params -> l={params.l}, rs={params.rs}, "
                    f"v={params.v}",
                )
            )
    if config.source_policy != "eager":
        candidates.append(
            (
                _try_config(scenario, source_policy="eager"),
                f"source policy {config.source_policy} -> eager",
            )
        )
    if config.token_policy != "roundrobin":
        candidates.append(
            (
                _try_config(scenario, token_policy="roundrobin"),
                f"token policy {config.token_policy} -> roundrobin",
            )
        )
    if config.engine is not None:
        candidates.append(
            (_try_config(scenario, engine=None), "engine pin -> default")
        )
    if config.shards is not None:
        candidates.append(
            (_try_config(scenario, shards=None), "shards pin -> default")
        )
    if config.warmup:
        candidates.append((_try_config(scenario, warmup=0), "warmup -> 0"))
    for candidate, description in candidates:
        if candidate is not None:
            yield candidate, description
    # Netsim knobs are part of the scenario too: a violation that
    # survives with the jitter or drop knob zeroed is a smaller repro
    # (and a drop-only repro replays faster than a jittery one).
    net = scenario.net
    if net.enabled and net.jitter > 0.0:
        yield (
            replace(scenario, net=replace(net, jitter=0.0)),
            f"net jitter {net.jitter} -> 0",
        )
    if net.enabled and net.drop > 0.0:
        yield (
            replace(scenario, net=replace(net, drop=0.0)),
            f"net drop {net.drop} -> 0",
        )


def _shrink_rounds(
    scenario: Scenario, violations: Sequence[Violation]
) -> Iterator[Tuple[Scenario, str]]:
    """Halve, then decrement, the horizon."""
    rounds = scenario.config.rounds
    if rounds // 2 >= 1:
        yield (
            _with_config(scenario, rounds=rounds // 2, warmup=0),
            f"halve rounds {rounds} -> {rounds // 2}",
        )
    if rounds > 1:
        yield (
            _with_config(scenario, rounds=rounds - 1, warmup=0),
            f"decrement rounds {rounds} -> {rounds - 1}",
        )


_PASSES = (
    _truncate_to_violation,
    _drop_adversaries,
    _shrink_adversary,
    _shrink_workload,
    _move_source_to_target,
    _shrink_grid,
    _canonicalize,
    _shrink_rounds,
)


def shrink_scenario(
    scenario: Scenario,
    oracle_names: Optional[Sequence[str]] = None,
    max_checks: int = 400,
) -> ShrinkResult:
    """Greedy fixed-point reduction preserving the original finding.

    Raises :class:`ValueError` when the input scenario is not violating
    (there is nothing to shrink). ``max_checks`` bounds total oracle
    evaluations — the loop is monotone (every accepted candidate is
    strictly smaller), so this is a safety net, not a tuning knob.
    """
    violations = check_scenario(scenario, oracle_names)
    if not violations:
        raise ValueError(
            f"scenario {scenario.fingerprint()} passes all oracles; "
            f"nothing to shrink"
        )
    target = _signature(violations)
    current = scenario
    steps: List[str] = []
    checks = 1
    improved = True
    while improved and checks < max_checks:
        improved = False
        for reduction in _PASSES:
            for candidate, description in reduction(current, violations):
                if checks >= max_checks:
                    break
                try:
                    candidate_violations = check_scenario(candidate, oracle_names)
                except Exception:
                    continue  # reduction produced an invalid/crashing scenario
                finally:
                    checks += 1
                if candidate_violations and _signature(candidate_violations) & target:
                    current = candidate
                    violations = candidate_violations
                    steps.append(description)
                    improved = True
                    break
            if improved:
                break
    return ShrinkResult(
        original=scenario,
        scenario=current,
        violations=violations,
        steps=steps,
        checks=checks,
    )


# ----------------------------------------------------------------------
# Repro artifacts
# ----------------------------------------------------------------------


def pytest_snippet(result: ShrinkResult) -> str:
    """A self-contained pytest module re-asserting the exact violations."""
    scenario_literal = json.dumps(result.scenario.to_dict(), indent=4, sort_keys=True)
    expected_literal = json.dumps(
        [v.to_dict() for v in result.violations], indent=4, sort_keys=True
    )
    seed = result.original.seed
    return (
        f'"""Minimal repro generated by `fuzz shrink` from seed {seed}.\n'
        f"\n"
        f"Replays byte-identically: the scenario below is the shrunk form\n"
        f"of generate_scenario({seed}), and the assertion pins the exact\n"
        f'violations the oracles reported at shrink time.\n"""\n'
        f"\n"
        f"from repro.fuzz.generator import Scenario\n"
        f"from repro.fuzz.oracles import check_scenario\n"
        f"\n"
        f"SCENARIO = Scenario.from_dict({scenario_literal})\n"
        f"\n"
        f"EXPECTED = {expected_literal}\n"
        f"\n"
        f"\n"
        f"def test_fuzz_repro_seed_{seed}():\n"
        f"    violations = [v.to_dict() for v in check_scenario(SCENARIO)]\n"
        f"    assert violations == EXPECTED\n"
    )


def write_repro(result: ShrinkResult, directory) -> Path:
    """Write the JSON artifact (+ pytest snippet sibling); returns the path.

    The artifact is self-contained: ``repro fuzz replay <path>`` needs
    nothing else, and the embedded scenario dict survives JSON
    round-trips with its fingerprint intact.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    artifact = {
        "schema": REPRO_SCHEMA,
        "kind": "fuzz-repro",
        "generator_version": GENERATOR_VERSION,
        "seed": result.original.seed,
        "scenario": result.scenario.to_dict(),
        "violations": [v.to_dict() for v in result.violations],
        "steps": result.steps,
    }
    stem = f"repro-seed{result.original.seed}-{result.scenario.fingerprint()}"
    path = directory / f"{stem}.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    (directory / f"{stem}_test.py").write_text(pytest_snippet(result))
    return path


def load_repro(path) -> Dict:
    """Read + validate a repro artifact; returns the raw dict."""
    data = json.loads(Path(path).read_text())
    if data.get("kind") != "fuzz-repro":
        raise ValueError(f"{path} is not a fuzz repro artifact")
    schema = data.get("schema")
    if not isinstance(schema, int) or schema > REPRO_SCHEMA:
        raise ValueError(
            f"{path} uses repro schema {schema!r}; this build reads up to "
            f"{REPRO_SCHEMA}"
        )
    return data


def replay_repro(
    path, oracle_names: Optional[Sequence[str]] = None
) -> Tuple[Dict, List[Violation]]:
    """Re-run the oracles on an artifact's scenario.

    Returns ``(artifact, recomputed_violations)``; callers compare the
    recomputed list against ``artifact["violations"]`` to decide whether
    the bug still reproduces (the CLI does exactly that).
    """
    data = load_repro(path)
    scenario = Scenario.from_dict(data["scenario"])
    return data, check_scenario(scenario, oracle_names)
