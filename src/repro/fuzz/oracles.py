"""The oracle registry: uniform checks a scenario must pass.

Every oracle implements one question — "did this scenario break a
promise?" — over the same :class:`~repro.fuzz.generator.Scenario` input
and the same structured :class:`Violation` output, so the campaign
runner, the shrinker, and the replay CLI can treat them uniformly. The
oracles lift the repo's existing verification layers rather than
re-implement them:

========== ==========================================================
oracle      promise checked
========== ==========================================================
monitors    the proved properties (Safe, Invariants 1-2, predicate-H,
            Lemma 4) hold on every round
differential the reference, incremental, and vectorized engines are
            observationally identical on this scenario
determinism two builds of the same config produce byte-identical
            per-round state digests and result records
conservation entities are never created or destroyed outside
            produce/consume, on every round
replay      a recorded trace passes offline verification and re-derives
            the run's throughput exactly
netsim      advert loss and latency jitter degrade throughput only —
            never safety, containment, disjointness, or conservation
shard-invariance
            the sharded engine is district-count invariant: 1 shard
            and 4 shards produce identical runs
stabilization-bound
            routing re-stabilizes within the Lemma 6 O(N^2) horizon
            after the adversary's last scripted perturbation
token-fairness
            roundrobin token rotation under starvation pressure never
            parks the token on a served member while others wait
async-equivalence
            a timed-round run with jitter <= one period is
            state-identical to the synchronous reference, per round
========== ==========================================================

Determinism contract: ``check(scenario)`` is a pure function of the
scenario — violations come back in a canonical order with canonical
details, so campaign summaries are byte-stable and shrunk repros replay
identically. :data:`ORACLES` is the registry the docs table
(``docs/fuzzing.md``) is CI-diffed against.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.arrays import HAVE_NUMPY
from repro.fuzz.generator import Scenario
from repro.grid.topology import Grid
from repro.monitors.invariants import check_containment, check_disjoint_membership
from repro.monitors.recorder import MonitorViolation
from repro.monitors.safety import check_safe
from repro.netsim.lossy import LossyNetwork
from repro.netsim.runtime import MessagePassingSystem
from repro.sim.seeding import derive_rng
from repro.sim.simulator import (
    _make_source_policy,
    _make_token_policy,
    build_simulation,
)
from repro.sim.trace import TraceRecorder, replay_throughput, verify_trace
from repro.testing.differential import DifferentialMismatch, run_lockstep, state_digest


@dataclass(frozen=True)
class Violation:
    """One structured oracle finding (JSON-ready, canonically ordered)."""

    oracle: str
    property_name: str
    detail: str
    round_index: Optional[int] = None

    def to_dict(self) -> Dict:
        """JSON-ready form (repro artifacts); inverse of :meth:`from_dict`."""
        return {
            "oracle": self.oracle,
            "property": self.property_name,
            "detail": self.detail,
            "round": self.round_index,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Violation":
        return cls(
            oracle=data["oracle"],
            property_name=data["property"],
            detail=data["detail"],
            round_index=data.get("round"),
        )


class Oracle:
    """Interface: one uniform scenario check.

    Subclasses set ``name`` (the registry key, referenced by CLI
    ``--oracles`` and the docs table) and ``description`` (one line,
    diffed against ``docs/fuzzing.md``), and implement :meth:`check` as
    a pure function of the scenario.
    """

    name: str = ""
    description: str = ""

    def check(self, scenario: Scenario) -> List[Violation]:
        """Run the scenario; return every violation found ([] = clean)."""
        raise NotImplementedError


class MonitorOracle(Oracle):
    """The proved properties, checked live on every round."""

    name = "monitors"
    description = (
        "Safe, Invariants 1-2, predicate-H and Lemma 4 hold on every round"
    )

    def check(self, scenario: Scenario) -> List[Violation]:
        """Run with lenient monitors; lift their violations verbatim."""
        sim = build_simulation(scenario.config)
        if sim.monitors is None:  # pragma: no cover - generator always monitors
            return []
        sim.monitors.strict = False  # record, don't raise: we collect all
        sim.run()
        return [
            Violation(self.name, v.property_name, v.detail, v.round_index)
            for v in sim.monitors.violations
        ]


class DifferentialOracle(Oracle):
    """3-way engine lockstep over the scenario's config: the reference
    is run against the incremental and the vectorized engine in turn."""

    name = "differential"
    description = (
        "reference, incremental, and vectorized engines produce identical "
        "state, reports, and results"
    )

    #: The non-reference engines checked against the reference. The
    #: vectorized leg needs numpy (a soft dependency); without it the
    #: oracle still proves the incremental leg. Multi-commodity
    #: scenarios only pin the engines that support them, so their
    #: lockstep matrix is reference vs incremental.
    def _legs(self, scenario: Scenario) -> List[str]:
        legs = ["incremental"]
        config = scenario.config
        relocating = False
        if config.adversary is not None:
            from repro.adversary.scripts import parse_adversary_spec

            relocating = parse_adversary_spec(config.adversary)[0] == (
                "rotating_target"
            )
        if HAVE_NUMPY and not config.commodities and not relocating:
            # The vectorized engine's packed arrays assume a fixed tid;
            # scheduled target relocation is only supported by the
            # reference and incremental engines (which the rotating
            # adversary pins), so that class keeps a 2-way matrix.
            legs.append("vectorized")
        return legs

    def check(self, scenario: Scenario) -> List[Violation]:
        """Lockstep each engine pair; report the first divergence."""
        # Monitors off: a safety bug shared by both engines is the
        # monitors oracle's finding; strict monitors would abort the
        # lockstep before the comparison that is this oracle's job.
        config = replace(scenario.config, monitors=False)
        for engine_b in self._legs(scenario):
            try:
                run_lockstep(config, engine_b=engine_b)
            except DifferentialMismatch as mismatch:
                return [
                    Violation(
                        self.name,
                        mismatch.aspect,
                        f"reference vs {engine_b}: {mismatch.detail}",
                        mismatch.round_index,
                    )
                ]
            except MonitorViolation as failure:  # pragma: no cover - defensive
                v = failure.violation
                return [
                    Violation(self.name, v.property_name, v.detail, v.round_index)
                ]
        return []


class DeterminismOracle(Oracle):
    """Two builds of the same config must be byte-identical."""

    name = "determinism"
    description = (
        "rebuilding and rerunning the same config reproduces identical "
        "per-round digests and results"
    )

    def check(self, scenario: Scenario) -> List[Violation]:
        """Build twice, step in parallel; report the first digest split."""
        config = replace(scenario.config, monitors=False)
        sims = (build_simulation(config), build_simulation(config))
        for round_index in range(config.rounds):
            digests = []
            for sim in sims:
                sim.step()
                digests.append(state_digest(sim.system))
            if digests[0] != digests[1]:
                return [
                    Violation(
                        self.name,
                        "state digest",
                        f"run 1 {digests[0][:16]} != run 2 {digests[1][:16]}",
                        round_index,
                    )
                ]
        outputs = [sim.summarize().simulation_outputs() for sim in sims]
        if outputs[0] != outputs[1]:
            fields = sorted(
                key
                for key in set(outputs[0]) | set(outputs[1])
                if outputs[0].get(key) != outputs[1].get(key)
            )
            return [
                Violation(
                    self.name,
                    "result record",
                    f"fields differ across reruns: {fields}",
                    config.rounds,
                )
            ]
        return []


class ConservationOracle(Oracle):
    """No entity is created or destroyed outside produce/consume."""

    name = "conservation"
    description = (
        "total produced equals total consumed plus in-flight, every round"
    )

    def check(self, scenario: Scenario) -> List[Violation]:
        """Audit produced == consumed + in-flight after every round.

        Multi-commodity runs are additionally audited per commodity:
        each commodity's ledger must balance on its own — a cross-tagged
        transfer would keep the totals intact while corrupting two
        per-commodity ledgers at once.
        """
        config = replace(scenario.config, monitors=False)
        sim = build_simulation(config)
        violations: List[Violation] = []
        for round_index in range(config.rounds):
            sim.step()
            system = sim.system
            balance = system.total_consumed + system.entity_count()
            if system.total_produced != balance:
                violations.append(
                    Violation(
                        self.name,
                        "entity conservation",
                        f"produced {system.total_produced} != consumed "
                        f"{system.total_consumed} + in-flight "
                        f"{system.entity_count()}",
                        round_index,
                    )
                )
            if getattr(system, "is_multiflow", False):
                in_flight = system.in_flight_by_commodity()
                for name in system.table.names():
                    produced = system.produced_by_commodity[name]
                    consumed = system.consumed_by_commodity[name]
                    if produced != consumed + in_flight[name]:
                        violations.append(
                            Violation(
                                self.name,
                                "commodity conservation",
                                f"{name}: produced {produced} != consumed "
                                f"{consumed} + in-flight {in_flight[name]}",
                                round_index,
                            )
                        )
        return violations


class ReplayOracle(Oracle):
    """Recorded traces verify offline and re-derive the metrics."""

    name = "replay"
    description = (
        "the recorded trace passes offline verification and replays the "
        "run's exact throughput"
    )

    def check(self, scenario: Scenario) -> List[Violation]:
        """Record a trace, verify it offline, replay the throughput."""
        if scenario.config.commodities:
            # The trace format records the single-flow per-cell routing
            # scalars; multi-commodity runs are covered by the
            # differential and conservation oracles instead.
            return []
        if scenario.config.engine == "timed":
            # The timed engine synthesizes reports with empty Route and
            # Signal observables (those phases happen message-by-message
            # inside the processes), so no offline-verifiable trace
            # exists; async-equivalence covers the timed engine instead.
            return []
        config = replace(scenario.config, monitors=False)
        sim = build_simulation(config)
        recorder = TraceRecorder.for_system(sim.system)
        for _ in range(config.rounds):
            report = sim.step()
            recorder.observe(sim.system, report)
        result = sim.summarize()
        violations: List[Violation] = []
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
            trace_path = recorder.save(Path(tmp) / "trace.jsonl")
            for v in verify_trace(trace_path):
                violations.append(
                    Violation(self.name, v.property_name, v.detail, v.round_index)
                )
            replayed = replay_throughput(trace_path, warmup=config.warmup)
            if replayed != result.throughput:
                violations.append(
                    Violation(
                        self.name,
                        "replayed throughput",
                        f"trace replays {replayed!r}, run measured "
                        f"{result.throughput!r}",
                        config.rounds,
                    )
                )
        return violations


class NetworkOracle(Oracle):
    """Loss/jitter may cost throughput, never the proved properties."""

    name = "netsim"
    description = (
        "advert loss and latency jitter never break safety, invariants, "
        "or conservation"
    )

    def check(self, scenario: Scenario) -> List[Violation]:
        """Drive the lossy and jittery network legs the net spec enables."""
        if not scenario.net.enabled or scenario.config.commodities:
            # The generator never enables the network legs for
            # multi-commodity scenarios (the message-passing runtime
            # models the single-flow advert protocol); the guard also
            # covers hand-built corpus entries.
            return []
        violations: List[Violation] = []
        if scenario.net.drop > 0.0:
            violations.extend(self._lossy_leg(scenario))
        if scenario.net.jitter > 0.0:
            violations.extend(self._jitter_leg(scenario))
        return violations

    # -- construction ------------------------------------------------

    @staticmethod
    def _workload(scenario: Scenario):
        """(grid, tid, sources, failed-cells) mirroring the config."""
        config = scenario.config
        grid = Grid(config.grid_width, config.grid_height)
        if config.path is not None:
            tid = config.path[-1]
            source_ids = (config.path[0],)
            failed = [cid for cid in grid.cells() if cid not in set(config.path)]
        else:
            tid = config.tid
            source_ids = config.sources
            failed = []
        sources = {
            cid: _make_source_policy(config.source_policy) for cid in source_ids
        }
        return grid, tid, sources, failed

    def _lossy_leg(self, scenario: Scenario) -> List[Violation]:
        config = scenario.config
        grid, tid, sources, failed = self._workload(scenario)
        system = MessagePassingSystem(
            grid=grid,
            params=config.params,
            tid=tid,
            sources=sources,
            token_policy=_make_token_policy(config.token_policy, config.seed),
            rng=derive_rng(config.seed, "net-sources"),
        )
        system.network = LossyNetwork(
            grid, scenario.net.drop, rng=derive_rng(config.seed, "net-loss")
        )
        for cid in failed:
            system.fail(cid)
        return self._degradation_rounds(scenario, system, "lossy")

    def _jitter_leg(self, scenario: Scenario) -> List[Violation]:
        from repro.asyncnet.delay import UniformDelay
        from repro.asyncnet.timed_rounds import TimedRoundSystem

        config = scenario.config
        grid, tid, sources, failed = self._workload(scenario)
        system = TimedRoundSystem(
            grid=grid,
            params=config.params,
            tid=tid,
            sources=sources,
            delay_model=UniformDelay(0.0, scenario.net.jitter),
            token_policy=_make_token_policy(config.token_policy, config.seed),
            rng=derive_rng(config.seed, "net-sources"),
            delay_rng=derive_rng(config.seed, "net-delay"),
        )
        for cid in failed:
            system.fail(cid)
        return self._degradation_rounds(scenario, system, "jitter")

    def _degradation_rounds(
        self, scenario: Scenario, system, leg: str
    ) -> List[Violation]:
        violations: List[Violation] = []

        def record(round_index: int, name: str, detail: str) -> None:
            violations.append(
                Violation(self.name, f"{name} ({leg})", detail, round_index)
            )

        for round_index in range(scenario.net.rounds):
            if hasattr(system, "run_round"):
                system.run_round()
            else:
                system.update()
            for finding in check_safe(system):
                record(round_index, "Safe", str(finding))
            for finding in check_containment(system):
                record(round_index, "Invariant 1", str(finding))
            for uid in check_disjoint_membership(system):
                record(round_index, "Invariant 2", f"entity {uid} in multiple cells")
            balance = system.total_consumed + system.entity_count()
            if system.total_produced != balance:
                record(
                    round_index,
                    "conservation",
                    f"produced {system.total_produced} != consumed "
                    f"{system.total_consumed} + in-flight {system.entity_count()}",
                )
        return violations


class ShardInvarianceOracle(Oracle):
    """District-count invariance of the multi-process sharded engine.

    Lockstep-runs the scenario under the sharded engine twice — one
    district versus four (clamped to the grid height) — comparing
    canonical state and reports after every round and the result records
    at the end. The configs differ only in the ``shards`` tuning field,
    so :func:`run_lockstep`'s ``config_b`` mode excludes the embedded
    config dicts from the final comparison and everything else must
    match exactly.
    """

    name = "shard-invariance"
    description = (
        "the sharded engine is district-count invariant: 1 shard and 4 "
        "shards produce identical runs"
    )

    #: Horizon cap: every sharded round costs three inter-process
    #: exchanges per district, so long scenarios are trimmed — shard
    #: merge bugs are order-of-operations bugs and show up early.
    max_rounds = 40

    def check(self, scenario: Scenario) -> List[Violation]:
        """Lockstep 1-shard vs 4-shard; report the first divergence."""
        config = scenario.config
        if config.commodities:
            # The sharded engine does not support multi-commodity
            # systems (config validation rejects the combination).
            return []
        if config.token_policy == "random":
            # Invalid for sharded runs by construction (the random
            # policy's shared RNG stream cannot be split across district
            # processes; config validation rejects the combination).
            return []
        if config.adversary is not None or config.engine == "timed":
            # ``replace(engine="sharded")`` would fail validation:
            # adversary classes pin their own engine matrix and
            # ``jitter > 0`` requires the timed engine. Shard invariance
            # stays proven on the standard generator arm; skipping here
            # keeps every shrink candidate buildable.
            return []
        rounds = min(config.rounds, self.max_rounds)
        if config.warmup >= rounds:  # keep warmup < rounds valid
            rounds = config.rounds
        height = config.grid_height or config.grid_width
        config_a = replace(
            config, monitors=False, engine="sharded", shards=1, rounds=rounds
        )
        config_b = replace(config_a, shards=min(4, height))
        try:
            run_lockstep(
                config_a,
                engine_a="sharded",
                engine_b="sharded",
                config_b=config_b,
            )
        except DifferentialMismatch as mismatch:
            return [
                Violation(
                    self.name,
                    mismatch.aspect,
                    f"1 shard vs {config_b.shards}: {mismatch.detail}",
                    mismatch.round_index,
                )
            ]
        return []


class StabilizationBoundOracle(Oracle):
    """The Lemma 6 re-stabilization bound, after the adversary's last blow.

    Adversarial scenarios script a known perturbation schedule, so the
    oracle knows exactly when the dust settles: it steps the run to one
    round past :attr:`CompiledAdversary.last_perturbation_round`, then
    gives routing ``grid.size + 2`` further rounds (the Lemma 6
    ``O(N^2)`` self-stabilization horizon, N = cell count, plus the
    two-round advert pipeline) to re-converge to the BFS ground truth of
    the surviving topology. Classes with no scripted events (token
    starvation) are checked from round 0 — cold-start stabilization
    under the same bound.
    """

    name = "stabilization-bound"
    description = (
        "routing re-stabilizes within grid.size + 2 rounds of the "
        "adversary's last scripted perturbation (Lemma 6)"
    )

    def check(self, scenario: Scenario) -> List[Violation]:
        """Step past the last perturbation; demand convergence in bound."""
        config = scenario.config
        if config.adversary is None or config.commodities:
            return []
        if config.fault.enabled:
            # Bernoulli churn on top of the script means there is no
            # "last perturbation" to stabilize from. The generator's
            # adversary arm never enables it; hand-built configs that do
            # are covered by the monitors oracle alone.
            return []
        from repro.adversary.scripts import compile_adversary
        from repro.monitors.progress import routing_matches_ground_truth

        compiled = compile_adversary(config)
        settle_from = compiled.last_perturbation_round + 1
        budget = Grid(config.grid_width, config.grid_height).size + 2
        sim = build_simulation(replace(config, monitors=False))
        try:
            for _ in range(settle_from):
                sim.step()
            for _ in range(budget):
                if routing_matches_ground_truth(sim.system):
                    return []
                sim.step()
            if routing_matches_ground_truth(sim.system):
                return []
            return [
                Violation(
                    self.name,
                    "stabilization bound",
                    f"routing not re-stabilized within {budget} rounds "
                    f"of the last perturbation (round "
                    f"{compiled.last_perturbation_round}) of adversary "
                    f"{config.adversary!r}",
                    settle_from + budget,
                )
            ]
        finally:
            sim.engine.close()


class TokenFairnessOracle(Oracle):
    """Round-robin token fairness under starvation pressure (Lemma 9).

    Two checks over every signal grant:

    * **parked token** — after a cell grants neighbor ``g``, the token
      must rotate off ``g`` whenever ``NEPrev`` offers an alternative
      (the fairness step of Lemma 9); a token still on ``g`` post-round
      with two or more competitors is a rotation bug, caught the round
      it happens.
    * **starvation window** — a neighbor continuously competing in
      ``NEPrev`` may watch at most :attr:`starvation_window` consecutive
      grants go elsewhere; round-robin over at most four lattice
      neighbors cycles in four, so the window only trips on genuinely
      stuck rotation that the parked check's exact form might miss.
    """

    name = "token-fairness"
    description = (
        "roundrobin token rotation never parks on a just-served member "
        "or starves a waiting competitor"
    )

    #: Consecutive grants a continuously-competing neighbor may lose
    #: before the oracle calls starvation. Honest round-robin over the
    #: <= 4 lattice neighbors serves everyone within 4 grants; 8 leaves
    #: slack for token drops on membership churn.
    starvation_window = 8

    def check(self, scenario: Scenario) -> List[Violation]:
        """Audit every grant's rotation and each competitor's wait."""
        config = scenario.config
        if (
            config.token_policy != "roundrobin"
            or config.commodities
            or config.engine == "timed"
        ):
            # The timed engine's synthesized reports carry no Signal
            # observables; its token path is covered by async-equivalence
            # (state-identity to the reference includes token state).
            return []
        sim = build_simulation(replace(config, monitors=False))
        violations: List[Violation] = []
        # (cell, competitor) -> consecutive grants lost while the
        # competitor stayed in the cell's NEPrev.
        waits: Dict[tuple, int] = {}
        try:
            for round_index in range(config.rounds):
                report = sim.step()
                for cid, granted in sorted(report.signal.granted.items()):
                    state = sim.system.cells[cid]
                    competitors = state.ne_prev
                    if state.token == granted and len(competitors) >= 2:
                        violations.append(
                            Violation(
                                self.name,
                                "parked token",
                                f"cell {cid} granted {granted} but the "
                                f"token did not rotate off it despite "
                                f"{len(competitors)} competitors",
                                round_index,
                            )
                        )
                    for other in sorted(competitors):
                        key = (cid, other)
                        if other == granted:
                            waits[key] = 0
                            continue
                        waits[key] = waits.get(key, 0) + 1
                        if waits[key] == self.starvation_window:
                            violations.append(
                                Violation(
                                    self.name,
                                    "starvation",
                                    f"cell {cid} granted "
                                    f"{self.starvation_window} times in a "
                                    f"row while competitor {other} waited "
                                    f"in NEPrev",
                                    round_index,
                                )
                            )
                    # A competitor that left NEPrev restarts its wait.
                    for key in [k for k in waits if k[0] == cid]:
                        if key[1] not in competitors:
                            del waits[key]
        finally:
            sim.engine.close()
        return violations


class AsyncEquivalenceOracle(Oracle):
    """The timed-rounds bisimulation theorem, checked per round.

    When every message's latency is at most one round period, the timed
    asynchronous execution is *state-identical* to the synchronous
    reference (no advert arrives after the round that needs it). The
    oracle runs the scenario's timed config and a synchronous twin in
    lockstep and compares :func:`state_digest` after every round; it
    also demands ``late_adverts == 0`` — a single stale advert proves
    the latency bound was violated.
    """

    name = "async-equivalence"
    description = (
        "a timed-round run with jitter <= one period is state-identical "
        "to the synchronous reference, every round"
    )

    def check(self, scenario: Scenario) -> List[Violation]:
        """Lockstep timed vs reference; report the first digest split."""
        config = scenario.config
        if config.engine != "timed" or config.jitter > 1.0:
            # Above one period the bisimulation premise fails by design
            # (the generator caps jitter at 1.0; hand-built configs
            # beyond it are covered by monitors + conservation).
            return []
        sim_t = build_simulation(replace(config, monitors=False))
        # The synchronous twin: same seed, workload, and fault schedule
        # on the reference engine. The adversary field cannot ride along
        # (async_jitter's validation pins engine="timed"), so the
        # compiled schedule is grafted onto the twin's injector instead.
        sync_config = replace(
            config, monitors=False, engine=None, jitter=0.0, adversary=None
        )
        sim_s = build_simulation(sync_config, engine="reference")
        if config.adversary is not None:
            from repro.adversary.scripts import compile_adversary
            from repro.faults.model import ComposedFaultModel, NoFaults
            from repro.faults.schedule import ScriptedFaultModel

            compiled = compile_adversary(config)
            if compiled.events:
                scripted = ScriptedFaultModel(compiled.events)
                base = sim_s.injector.model
                sim_s.injector.model = (
                    scripted
                    if isinstance(base, NoFaults)
                    else ComposedFaultModel((scripted, base))
                )
            if compiled.relocations:  # pragma: no cover - no class today
                sim_s.injector.relocations = tuple(
                    sorted(compiled.relocations)
                )
        violations: List[Violation] = []
        try:
            for round_index in range(config.rounds):
                sim_t.step()
                sim_s.step()
                digest_t = state_digest(sim_t.system)
                digest_s = state_digest(sim_s.system)
                if digest_t != digest_s:
                    violations.append(
                        Violation(
                            self.name,
                            "state digest",
                            f"timed {digest_t[:16]} != sync "
                            f"{digest_s[:16]} at jitter={config.jitter}",
                            round_index,
                        )
                    )
                    break
            late = getattr(sim_t.engine, "late_adverts", 0)
            if not violations and late:
                violations.append(
                    Violation(
                        self.name,
                        "late adverts",
                        f"{late} adverts arrived stale despite "
                        f"jitter={config.jitter} <= 1 period",
                        config.rounds,
                    )
                )
        finally:
            sim_t.engine.close()
            sim_s.engine.close()
        return violations


#: The oracle registry, in canonical (cheap-to-expensive-ish) check
#: order. Keys are the CLI/docs names; ``docs/fuzzing.md`` carries a
#: table CI-diffed against this dict by ``tests/test_docs.py``.
ORACLES: Dict[str, Oracle] = {
    oracle.name: oracle
    for oracle in (
        MonitorOracle(),
        DifferentialOracle(),
        DeterminismOracle(),
        ConservationOracle(),
        ReplayOracle(),
        NetworkOracle(),
        ShardInvarianceOracle(),
        StabilizationBoundOracle(),
        TokenFairnessOracle(),
        AsyncEquivalenceOracle(),
    )
}


def resolve_oracles(names: Optional[Sequence[str]] = None) -> List[Oracle]:
    """Registry lookups in canonical registry order (None = all)."""
    if names is None:
        return list(ORACLES.values())
    unknown = sorted(set(names) - set(ORACLES))
    if unknown:
        raise ValueError(
            f"unknown oracle(s) {unknown}; available: {sorted(ORACLES)}"
        )
    wanted = set(names)
    return [oracle for key, oracle in ORACLES.items() if key in wanted]


def check_scenario(
    scenario: Scenario, oracle_names: Optional[Sequence[str]] = None
) -> List[Violation]:
    """Run the scenario through the (selected) oracles; all findings.

    A pure function of ``(scenario, oracle_names)``: violations come
    back in registry order, then each oracle's own canonical order.
    """
    violations: List[Violation] = []
    for oracle in resolve_oracles(oracle_names):
        violations.extend(oracle.check(scenario))
    return violations
