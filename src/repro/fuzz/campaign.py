"""Campaign execution: fanning seed ranges out over the sweep infra.

A campaign is "check seeds S..S+N against the oracle registry". Each
seed is one independent unit of work — the worker regenerates the
scenario from the seed (scenarios are a pure function of it) and runs
:func:`~repro.fuzz.oracles.check_scenario` — so campaigns ride the
existing :class:`~repro.sim.parallel.ParallelSweepRunner` and inherit
its supervision for free: process fan-out, per-seed timeouts, retries
with backoff, and crashed-worker replacement. Checkpointing is *not*
used (oracle outcomes are not ``SimulationResult`` records); a campaign
is cheap enough to re-run and byte-stable when it does.

Byte-stability is the load-bearing property: :meth:`CampaignResult.
summary_json` contains no timings, hostnames, or timestamps — only
seeds, fingerprints, and violations — so re-running the same seed range
on the same tree produces the identical byte string, which CI diffs to
detect *new* violations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fuzz.generator import GENERATOR_VERSION, Scenario, generate_scenario
from repro.fuzz.oracles import Violation, check_scenario, resolve_oracles
from repro.sim.parallel import ParallelSweepRunner, PointPayload
from repro.sim.results import PointFailure


@dataclass(frozen=True)
class SeedOutcome:
    """What checking one seed produced."""

    seed: int
    fingerprint: str
    """The scenario fingerprint (ties the outcome to generator output)."""

    violations: Tuple[Violation, ...] = ()
    error: Optional[str] = None
    """Supervision failure (timeout/crash after retries), if any."""

    @property
    def ok(self) -> bool:
        return not self.violations and self.error is None

    def to_dict(self) -> Dict:
        """Summary-ready form: clean outcomes carry no violation/error keys."""
        record: Dict = {"seed": self.seed, "fingerprint": self.fingerprint}
        if self.violations:
            record["violations"] = [v.to_dict() for v in self.violations]
        if self.error is not None:
            record["error"] = self.error
        return record


@dataclass
class CampaignResult:
    """All outcomes of one campaign, in seed order."""

    oracle_names: List[str]
    outcomes: List[SeedOutcome] = field(default_factory=list)
    adversary: Optional[str] = None
    """Forced adversary class (``--adversary``), or None for the open mix."""

    @property
    def failures(self) -> List[SeedOutcome]:
        """Outcomes with at least one violation (supervision errors aside)."""
        return [outcome for outcome in self.outcomes if outcome.violations]

    @property
    def errors(self) -> List[SeedOutcome]:
        return [outcome for outcome in self.outcomes if outcome.error is not None]

    @property
    def total_violations(self) -> int:
        return sum(len(outcome.violations) for outcome in self.outcomes)

    def summary(self) -> Dict:
        """JSON-ready, timing-free campaign record."""
        return {
            "generator_version": GENERATOR_VERSION,
            "oracles": list(self.oracle_names),
            "adversary": self.adversary,
            "seeds": [outcome.seed for outcome in self.outcomes],
            "checked": len(self.outcomes),
            "violations": self.total_violations,
            "failures": [outcome.to_dict() for outcome in self.failures],
            "errors": [outcome.to_dict() for outcome in self.errors],
        }

    def summary_json(self) -> str:
        """Canonical byte-stable serialization (CI diffs these)."""
        return (
            json.dumps(self.summary(), sort_keys=True, separators=(",", ":"))
            + "\n"
        )


def _fuzz_point(payload: PointPayload) -> Tuple[int, Dict]:
    """Worker entry: check one seed (module-level: picklable).

    Regenerates the scenario from the seed inside the worker — the
    config in the payload exists for the supervisor's labels — and
    returns a plain dict (workers may be separate processes; keep the
    wire format primitive).
    """
    index, _label, _config, extras = payload
    seed = extras["seed"]
    scenario = generate_scenario(seed, adversary=extras.get("adversary"))
    violations = check_scenario(scenario, extras["oracles"])
    return index, {
        "seed": seed,
        "fingerprint": scenario.fingerprint(),
        "violations": [violation.to_dict() for violation in violations],
    }


def run_campaign(
    seeds: Sequence[int],
    oracle_names: Optional[Sequence[str]] = None,
    workers: int = 1,
    point_timeout: Optional[float] = None,
    max_retries: int = 1,
    mp_context: Optional[str] = None,
    progress: Callable[[str], None] = lambda message: None,
    adversary: Optional[str] = None,
) -> CampaignResult:
    """Check every seed; never raises on violations (they are the data).

    ``workers=1`` with no ``point_timeout`` runs in-process — required
    by the mutation tests, whose monkeypatched engines exist only in
    the current process. Timeouts/retries follow the sweep supervisor's
    semantics; a seed that exhausts its budget surfaces as a
    :class:`SeedOutcome` with ``error`` set (and is counted separately
    from violations).

    ``adversary`` forces every seed through the named adversary class
    (the generator's forced arm); None keeps the open v5 mix.
    """
    names = [oracle.name for oracle in resolve_oracles(oracle_names)]
    points = []
    for seed in seeds:
        scenario = generate_scenario(seed, adversary=adversary)
        points.append(
            (
                f"seed-{seed}",
                scenario.config,
                {"seed": seed, "oracles": names, "adversary": adversary},
            )
        )
    runner = ParallelSweepRunner(
        workers=workers,
        point_timeout=point_timeout,
        max_retries=max_retries,
        mp_context=mp_context,
        progress=progress,
        work=_fuzz_point,
    )
    result = CampaignResult(oracle_names=names, adversary=adversary)
    for seed, outcome in zip(seeds, runner.run_points("fuzz", points)):
        if isinstance(outcome, PointFailure):
            result.outcomes.append(
                SeedOutcome(
                    seed=seed,
                    fingerprint=generate_scenario(
                        seed, adversary=adversary
                    ).fingerprint(),
                    error=f"{outcome.kind}: {outcome.error_type}: {outcome.message}",
                )
            )
            continue
        result.outcomes.append(
            SeedOutcome(
                seed=outcome["seed"],
                fingerprint=outcome["fingerprint"],
                violations=tuple(
                    Violation.from_dict(v) for v in outcome["violations"]
                ),
            )
        )
    return result
