"""Runtime verification monitors.

Each proved property of the paper has an executable counterpart here:

* :mod:`repro.monitors.safety` — ``Safe`` (Theorem 5).
* :mod:`repro.monitors.invariants` — Invariant 1 (containment),
  Invariant 2 (disjoint membership), predicate ``H`` at grant points
  (Lemma 3), and the no-transfer-on-2-cycle condition (Lemma 4).
* :mod:`repro.monitors.progress` — routing-stabilization detection
  (Lemma 6 / Corollary 7) and per-entity progress tracking (Theorem 10).
* :mod:`repro.monitors.recorder` — a suite that runs selected monitors
  every round of a simulation and raises or records violations.
"""

from repro.monitors.invariants import (
    check_containment,
    check_disjoint_membership,
    check_signal_gap,
    containment_violations,
    signal_gap_violations,
)
from repro.monitors.progress import (
    EntityTracker,
    routing_matches_ground_truth,
    routing_stabilization_round,
)
from repro.monitors.recorder import MonitorSuite, MonitorViolation, Violation
from repro.monitors.safety import check_safe, safe_cell, safety_violations

__all__ = [
    "EntityTracker",
    "MonitorSuite",
    "MonitorViolation",
    "Violation",
    "check_containment",
    "check_disjoint_membership",
    "check_safe",
    "check_signal_gap",
    "containment_violations",
    "routing_matches_ground_truth",
    "routing_stabilization_round",
    "safe_cell",
    "safety_violations",
    "signal_gap_violations",
]
