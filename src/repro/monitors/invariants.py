"""Structural invariants and the signal-gap predicate.

* **Invariant 1** — every entity's footprint lies inside its cell: center
  in ``[i + l/2, i+1 - l/2] x [j + l/2, j+1 - l/2]``.
* **Invariant 2** — the ``Members`` sets are pairwise disjoint (checked
  via global uid uniqueness, which is equivalent and linear-time).
* **Predicate H** — whenever ``signal_{i,j} = <m,n>``, the depth-``d``
  strip of cell ``<i,j>`` along the edge facing ``<m,n>`` contains no
  entity. The paper proves H holds *at the point Signal computes the
  variable* (Lemma 3); it may be broken later in the same round by the
  granting cell's own movement. The recorder therefore evaluates it
  between the Signal and Move phases via the phase-hook interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.core.cell import CellState
from repro.core.params import Parameters
from repro.core.signal import gap_clear
from repro.core.system import System
from repro.geometry.tolerance import tol_ge, tol_le
from repro.grid.topology import CellId, direction_between


@dataclass(frozen=True)
class ContainmentViolation:
    """An entity sticking out of (or straddling) its cell's boundary."""

    cell: CellId
    uid: int
    x: float
    y: float

    def __str__(self) -> str:
        return (
            f"cell {self.cell}: entity {self.uid} at ({self.x:.6f}, {self.y:.6f}) "
            "extends beyond the cell boundary"
        )


def containment_violations(system: System) -> Iterator[ContainmentViolation]:
    """Invariant 1 violations in the current state."""
    half = system.params.half_l
    for cid, state in system.cells.items():
        i, j = cid
        for entity in state.entities():
            inside = (
                tol_ge(entity.x, i + half)
                and tol_le(entity.x, i + 1 - half)
                and tol_ge(entity.y, j + half)
                and tol_le(entity.y, j + 1 - half)
            )
            if not inside:
                yield ContainmentViolation(cell=cid, uid=entity.uid, x=entity.x, y=entity.y)


def check_containment(system: System) -> List[ContainmentViolation]:
    """Invariant 1 over the whole system; empty list means it holds."""
    return list(containment_violations(system))


def check_disjoint_membership(system: System) -> List[int]:
    """Invariant 2: uids appearing in more than one cell (empty = holds)."""
    seen: Dict[int, CellId] = {}
    duplicated: List[int] = []
    for cid, state in system.cells.items():
        for uid in state.members:
            if uid in seen:
                duplicated.append(uid)
            else:
                seen[uid] = cid
    return duplicated


@dataclass(frozen=True)
class SignalGapViolation:
    """A granted signal without the required clear entry strip (predicate H)."""

    cell: CellId
    granted_to: CellId

    def __str__(self) -> str:
        return (
            f"cell {self.cell}: signal granted to {self.granted_to} without a "
            "clear depth-d strip on the shared edge"
        )


def signal_gap_violations(
    cells: Dict[CellId, CellState], params: Parameters
) -> Iterator[SignalGapViolation]:
    """Predicate H violations, evaluated on a post-Signal/pre-Move state."""
    for cid, state in cells.items():
        if state.failed or state.signal is None:
            continue
        toward = direction_between(cid, state.signal)
        if not gap_clear(state, toward, params):
            yield SignalGapViolation(cell=cid, granted_to=state.signal)


def check_signal_gap(
    cells: Dict[CellId, CellState], params: Parameters
) -> List[SignalGapViolation]:
    """Predicate H over all cells; empty list means it holds."""
    return list(signal_gap_violations(cells, params))


def two_cycle_signal_pairs(system: System) -> List[tuple]:
    """Pairs of adjacent cells whose signals point at each other.

    Lemma 4 asserts that no transfer can happen between such a pair in the
    same round; the recorder cross-checks this against the Move report.
    """
    pairs = []
    for cid, state in system.cells.items():
        sig = state.signal
        if state.failed or sig is None or sig <= cid:
            continue  # count each unordered pair once
        partner = system.cells.get(sig)
        if partner is not None and not partner.failed and partner.signal == cid:
            pairs.append((cid, sig))
    return pairs
