"""The safety property ``Safe`` (paper Section III-A, Theorem 5).

A state is safe when, in every cell, any two distinct entities' centers
differ by at least ``d = rs + l`` along some axis. In a safe state the
edges of co-resident entities are separated by at least ``rs``; entities
in *adjacent* cells may be closer (their centers at least ``l`` apart),
which the paper accepts by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.core.cell import CellState
from repro.core.system import System
from repro.geometry.separation import axis_separated, min_axis_separation
from repro.grid.topology import CellId


@dataclass(frozen=True)
class SafetyViolation:
    """A pair of entities in one cell closer than ``d`` on both axes."""

    cell: CellId
    uid_a: int
    uid_b: int
    separation: float
    required: float

    def __str__(self) -> str:
        return (
            f"cell {self.cell}: entities {self.uid_a} and {self.uid_b} "
            f"separated by {self.separation:.6f} < required {self.required:.6f}"
        )


def safe_cell(state: CellState, d: float) -> bool:
    """``Safe_{i,j}(x)``: all member pairs axis-separated by ``d``."""
    entities = state.entities()
    for a in range(len(entities)):
        for b in range(a + 1, len(entities)):
            if not axis_separated(entities[a].center, entities[b].center, d):
                return False
    return True


def safety_violations(system: System) -> Iterator[SafetyViolation]:
    """Yield every violating pair in the current state."""
    d = system.params.d
    for cid, state in system.cells.items():
        entities = state.entities()
        for a in range(len(entities)):
            for b in range(a + 1, len(entities)):
                pa, pb = entities[a], entities[b]
                if not axis_separated(pa.center, pb.center, d):
                    yield SafetyViolation(
                        cell=cid,
                        uid_a=pa.uid,
                        uid_b=pb.uid,
                        separation=min_axis_separation(pa.center, pb.center),
                        required=d,
                    )


def check_safe(system: System) -> List[SafetyViolation]:
    """``Safe(x)`` over the whole system; empty list means safe."""
    return list(safety_violations(system))
