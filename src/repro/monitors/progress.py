"""Progress and stabilization monitors (paper Sections III-B and III-C).

* Routing stabilization (Lemma 6 / Corollary 7): compare each target-
  connected cell's ``dist``/``next`` against the BFS ground truth
  ``rho``; detect the round at which they coincide and stay coincident.
* Entity progress (Theorem 10): track per-entity birth, transfers, and
  consumption, exposing transit latencies and in-flight ages so tests can
  assert "every entity on a TC cell is eventually consumed".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.cell import INFINITY
from repro.core.move import MovePhaseReport
from repro.core.system import RoundReport, System
from repro.grid.topology import CellId


def routing_matches_ground_truth(system: System, strict: bool = False) -> bool:
    """Lemma 6 fixed point: for every *target-connected* cell, ``dist``
    equals the true path distance and ``next`` steps to a cell one hop
    closer.

    Cells outside ``TC`` are deliberately not constrained by default: the
    paper's Lemma 6 / Corollary 7 only claim stabilization for TC cells,
    and for good reason — a live island walled off from the target by
    failed cells exhibits count-to-infinity (its dists grow forever and
    never reach the infinity ground truth). ``strict=True`` additionally
    requires non-TC live cells to report ``dist = infinity``; that holds
    in fault-free and corridor setups where every non-TC live cell is
    isolated, but not under arbitrary crash patterns.
    """
    rho = system.path_distance()
    for cid, state in system.cells.items():
        if state.failed:
            continue
        truth = rho[cid]
        if truth == INFINITY:
            if strict and (state.dist != INFINITY or state.next_id is not None):
                return False
            continue
        if state.dist != truth:
            return False
        if cid == system.tid:
            continue
        nxt = state.next_id
        if nxt is None or rho[nxt] != truth - 1:
            return False
    return True


def routing_stabilization_round(
    system: System, max_rounds: int, require_hold: int = 1
) -> Optional[int]:
    """Run updates until routing matches ground truth and holds.

    Returns the first round index (counting from the current round) after
    which the match held for ``require_hold`` consecutive checks, or None
    if it never did within ``max_rounds``. Mutates ``system``.
    """
    held = 0
    for k in range(max_rounds + 1):
        if routing_matches_ground_truth(system):
            held += 1
            if held >= require_hold:
                return k - (require_hold - 1)
        else:
            held = 0
        system.update()
    return None


@dataclass
class EntityRecord:
    """Lifecycle of one entity as observed by the tracker."""

    uid: int
    birth_round: int
    source: CellId
    consumed_round: Optional[int] = None
    hops: int = 0

    @property
    def in_flight(self) -> bool:
        return self.consumed_round is None

    @property
    def latency(self) -> Optional[int]:
        """Rounds from production to consumption (None while in flight)."""
        if self.consumed_round is None:
            return None
        return self.consumed_round - self.birth_round


@dataclass
class EntityTracker:
    """Feed with each round's report; aggregates per-entity lifecycles."""

    records: Dict[int, EntityRecord] = field(default_factory=dict)

    def observe(self, report: RoundReport, system: System) -> None:
        """Ingest one round's report (births, hops, consumptions)."""
        for entity in report.produced:
            # Produced entities are placed in their source cell this round.
            cid = next(
                cid
                for cid, state in system.cells.items()
                if entity.uid in state.members
            )
            self.records[entity.uid] = EntityRecord(
                uid=entity.uid, birth_round=entity.birth_round, source=cid
            )
        self._observe_moves(report.move, report.round_index)

    def _observe_moves(self, move: MovePhaseReport, round_index: int) -> None:
        for transfer in move.transfers:
            record = self.records.get(transfer.uid)
            if record is None:
                # Entity predates the tracker (seeded directly); adopt it.
                record = EntityRecord(
                    uid=transfer.uid, birth_round=round_index, source=transfer.src
                )
                self.records[transfer.uid] = record
            record.hops += 1
            if transfer.consumed:
                record.consumed_round = round_index

    def consumed(self) -> List[EntityRecord]:
        """Records of entities that reached the target."""
        return [r for r in self.records.values() if not r.in_flight]

    def in_flight(self) -> List[EntityRecord]:
        """Records of entities still in the system."""
        return [r for r in self.records.values() if r.in_flight]

    def latencies(self) -> List[int]:
        """Transit latencies of all consumed entities."""
        return sorted(
            r.latency for r in self.records.values() if r.latency is not None
        )

    def oldest_in_flight_age(self, current_round: int) -> Optional[int]:
        """Age (rounds) of the oldest in-flight entity, or None."""
        ages = [current_round - r.birth_round for r in self.in_flight()]
        return max(ages) if ages else None
