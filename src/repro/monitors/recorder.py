"""The monitor suite: continuous runtime verification of a running system.

Attach a :class:`MonitorSuite` to a ``System`` (it installs itself as the
system's phase observer) and call :meth:`after_round` from the simulation
loop. Every proved property is then checked on every round of every
experiment — the reproduction does not merely *assume* Theorem 5, it
re-verifies it continuously, and any discrepancy between the paper's
claims and the implementation surfaces immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.system import RoundReport, System
from repro.monitors.invariants import (
    check_containment,
    check_disjoint_membership,
    check_signal_gap,
    two_cycle_signal_pairs,
)
from repro.monitors.safety import check_safe


@dataclass(frozen=True)
class Violation:
    """One detected property violation."""

    round_index: int
    property_name: str
    detail: str


class MonitorViolation(AssertionError):
    """Raised in strict mode when any monitored property fails."""

    def __init__(self, violation: Violation):
        super().__init__(
            f"round {violation.round_index}: {violation.property_name}: "
            f"{violation.detail}"
        )
        self.violation = violation


@dataclass
class MonitorSuite:
    """Configurable bundle of per-round property checks.

    ``strict=True`` (the default) raises on the first violation —
    appropriate for tests and for the paper-faithful protocol, which is
    proved to never violate them. ``strict=False`` records violations
    instead, which is what the *unsafe baseline* benchmarks use to count
    how often a signal-free protocol breaks separation.
    """

    check_safety: bool = True
    check_invariant_1: bool = True
    check_invariant_2: bool = True
    check_h_predicate: bool = True
    check_lemma_4: bool = True
    strict: bool = True
    violations: List[Violation] = field(default_factory=list)
    metrics: Optional[object] = None
    """Optional :class:`repro.obs.metrics.MetricsRegistry`; when set,
    every recorded violation also increments ``monitors.violations``
    (counted *before* a strict-mode raise, so the tally survives)."""

    on_violation: Optional[object] = None
    """Optional callback ``(Violation) -> None`` invoked on every recorded
    violation, before a strict-mode raise. The live-verdict stream:
    ``repro serve`` wires it to emit ``service.violation`` events so a
    long-running service reports property violations as they happen
    instead of only in the final summary."""

    _signal_pairs: List[tuple] = field(default_factory=list)

    def attach(self, system: System) -> "MonitorSuite":
        """Install as ``system.phase_observer`` (returns self for chaining)."""
        system.phase_observer = self._on_phase
        return self

    # ------------------------------------------------------------------

    def _on_phase(self, phase: str, system: System) -> None:
        if phase == "signal":
            if self.check_h_predicate:
                for violation in check_signal_gap(system.cells, system.params):
                    self._record(system.round_index, "predicate-H", str(violation))
            if self.check_lemma_4:
                self._signal_pairs = two_cycle_signal_pairs(system)

    def after_round(self, system: System, report: RoundReport) -> None:
        """Run the post-state checks for the round just completed."""
        rnd = report.round_index
        if self.check_safety:
            for violation in check_safe(system):
                self._record(rnd, "Safe (Theorem 5)", str(violation))
        if self.check_invariant_1:
            for violation in check_containment(system):
                self._record(rnd, "Invariant 1", str(violation))
        if self.check_invariant_2:
            for uid in check_disjoint_membership(system):
                self._record(
                    rnd, "Invariant 2", f"entity {uid} present in multiple cells"
                )
        if self.check_lemma_4 and self._signal_pairs:
            crossings = {
                frozenset((t.src, t.dst)) for t in report.move.transfers
            }
            for a, b in self._signal_pairs:
                if frozenset((a, b)) in crossings:
                    self._record(
                        rnd,
                        "Lemma 4",
                        f"transfer occurred between mutually signaling cells {a}, {b}",
                    )
            self._signal_pairs = []

    # ------------------------------------------------------------------

    def _record(self, round_index: int, name: str, detail: str) -> None:
        violation = Violation(round_index=round_index, property_name=name, detail=detail)
        self.violations.append(violation)
        if self.metrics is not None:
            self.metrics.counter("monitors.violations").inc()
        if self.on_violation is not None:
            self.on_violation(violation)
        if self.strict:
            raise MonitorViolation(violation)

    @property
    def clean(self) -> bool:
        return not self.violations

    def violation_counts(self) -> dict:
        """Violations grouped by property name (for the unsafe baseline)."""
        counts: dict = {}
        for violation in self.violations:
            counts[violation.property_name] = counts.get(violation.property_name, 0) + 1
        return counts
