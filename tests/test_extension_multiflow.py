"""Tests for the multi-flow extension (type-exclusive cell discipline)."""

import random

import pytest

from repro.core.params import Parameters
from repro.extensions.multiflow import Flow, MultiFlowSystem
from repro.grid.topology import Grid

PARAMS = Parameters(l=0.2, rs=0.05, v=0.2)


def crossing_system() -> MultiFlowSystem:
    """Two flows crossing a 5x5 grid: west->east and south->north."""
    return MultiFlowSystem(
        grid=Grid(5),
        params=PARAMS,
        flows=[
            Flow(name="eastbound", target=(4, 2), sources=((0, 2),)),
            Flow(name="northbound", target=(2, 4), sources=((2, 0),)),
        ],
        rng=random.Random(0),
    )


class TestConstruction:
    def test_flow_validation(self):
        with pytest.raises(ValueError):
            Flow(name="", target=(0, 0))
        with pytest.raises(ValueError):
            Flow(name="f", target=(0, 0), sources=((0, 0),))

    def test_needs_flows(self):
        with pytest.raises(ValueError):
            MultiFlowSystem(grid=Grid(3), params=PARAMS, flows=[])

    def test_unique_names(self):
        with pytest.raises(ValueError):
            MultiFlowSystem(
                grid=Grid(3),
                params=PARAMS,
                flows=[Flow(name="f", target=(0, 0)), Flow(name="f", target=(1, 1))],
            )

    def test_per_flow_targets_initialized(self):
        system = crossing_system()
        assert system.cells[(4, 2)].dist["eastbound"] == 0.0
        assert system.cells[(2, 4)].dist["northbound"] == 0.0
        assert system.cells[(4, 2)].dist["northbound"] != 0.0


class TestRouting:
    def test_per_flow_tables_converge(self):
        system = crossing_system()
        for _ in range(10):
            system.update()
        assert system.cells[(0, 2)].dist["eastbound"] == 4.0
        assert system.cells[(2, 0)].dist["northbound"] == 4.0
        # The same cell routes differently per flow.
        middle = system.cells[(2, 2)]
        assert middle.next_id["eastbound"] == (3, 2)
        assert middle.next_id["northbound"] == (2, 3)


class TestFlowDelivery:
    def test_both_flows_deliver(self):
        system = crossing_system()
        consumed = {"eastbound": 0, "northbound": 0}
        for _ in range(1500):
            round_consumed = system.update()
            for name, count in round_consumed.items():
                consumed[name] += count
        assert consumed["eastbound"] > 0
        assert consumed["northbound"] > 0

    def test_safety_maintained(self):
        system = crossing_system()
        for _ in range(800):
            system.update()
            assert system.check_safe() == []

    def test_type_exclusivity_invariant(self):
        """No cell ever holds entities of two flows simultaneously."""
        system = crossing_system()
        for _ in range(800):
            system.update()
            assert system.check_type_exclusive() == []

    def test_conservation_per_flow(self):
        system = crossing_system()
        for _ in range(400):
            system.update()
        for name in ("eastbound", "northbound"):
            assert (
                system.total_produced[name]
                == system.total_consumed[name] + system.entities_of_flow(name)
            )


class TestWaitingCycleDetector:
    def test_no_cycles_in_nominal_crossing(self):
        system = crossing_system()
        for _ in range(100):
            system.update()
            assert system.detect_waiting_cycles() == []

    def test_hand_built_two_cycle_detected(self):
        """Two loaded cells whose resident flows route through each other
        form a waits-on 2-cycle."""
        import repro.core.entity as entity_module

        system = MultiFlowSystem(
            grid=Grid(4, 1),
            params=PARAMS,
            flows=[
                Flow(name="east", target=(3, 0)),
                Flow(name="west", target=(0, 0)),
            ],
        )
        a, b = system.cells[(1, 0)], system.cells[(2, 0)]
        # Entity of flow "east" in (1,0), heading into (2,0)...
        east_entity = entity_module.Entity(uid=1, x=1.5, y=0.5)
        east_entity.flow_name = "east"
        a.base.add_entity(east_entity)
        a.next_id["east"] = (2, 0)
        # ...and an entity of "west" in (2,0), heading into (1,0).
        west_entity = entity_module.Entity(uid=2, x=2.5, y=0.5)
        west_entity.flow_name = "west"
        b.base.add_entity(west_entity)
        b.next_id["west"] = (1, 0)
        cycles = system.detect_waiting_cycles()
        assert len(cycles) == 1
        assert set(cycles[0]) == {(1, 0), (2, 0)}

    def test_empty_cells_never_in_cycles(self):
        system = crossing_system()
        assert system.detect_waiting_cycles() == []


class TestFaults:
    def test_single_flow_reroutes_around_crash(self):
        """With one flow the machinery reroutes around a crash exactly
        like the core protocol (no inter-flow interaction to deadlock)."""
        system = MultiFlowSystem(
            grid=Grid(5),
            params=PARAMS,
            flows=[Flow(name="eastbound", target=(4, 2), sources=((0, 2),))],
            rng=random.Random(0),
        )
        for _ in range(50):
            system.update()
        system.fail((2, 2))
        consumed = 0
        for _ in range(800):
            consumed += system.update()["eastbound"]
            assert system.check_safe() == []
        assert consumed > 0

    def test_head_to_head_detour_gridlocks_and_is_detected(self):
        """The documented limitation: crashing the crossing cell forces
        the two flows' detours through shared corridors in opposite
        directions, gridlocking both. Safety still holds throughout
        (Theorem 5 is crash/deadlock-oblivious); the waits-on cycle
        detector names the jammed cells."""
        system = crossing_system()
        for _ in range(50):
            system.update()
        system.fail((2, 2))
        consumed = {"eastbound": 0, "northbound": 0}
        for _ in range(1200):
            round_consumed = system.update()
            for name, count in round_consumed.items():
                consumed[name] += count
            assert system.check_safe() == []
            assert system.check_type_exclusive() == []
        assert consumed == {"eastbound": 0, "northbound": 0}
        cycles = system.detect_waiting_cycles()
        assert cycles, "the gridlock should be observable as a waits-on cycle"
        assert all(len(cycle) >= 2 for cycle in cycles)

    def test_failed_cell_routes_masked_per_flow(self):
        system = crossing_system()
        for _ in range(10):
            system.update()
        system.fail((3, 2))
        for _ in range(10):
            system.update()
        import math

        assert math.isinf(system.cells[(3, 2)].dist["eastbound"])
        assert system.cells[(2, 2)].next_id["eastbound"] != (3, 2)
