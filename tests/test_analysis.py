"""Unit tests for aggregation, tables, and ASCII plots."""

import pytest

from repro.analysis.aggregate import aggregate_by, curve, summarize
from repro.analysis.ascii_plot import line_plot
from repro.analysis.tables import format_series_table, format_table
from repro.sim.results import SimulationResult


def result(throughput: float, **extras) -> SimulationResult:
    return SimulationResult(
        config={},
        rounds=100,
        produced=10,
        consumed=int(throughput * 100),
        throughput=throughput,
        in_flight=0,
        extras=extras,
    )


class TestAggregate:
    def test_summarize(self):
        summary = summarize([result(0.1), result(0.2), result(0.3)])
        assert summary.count == 3
        assert summary.mean == pytest.approx(0.2)
        assert summary.ci_half_width > 0

    def test_summarize_custom_metric(self):
        summary = summarize([result(0.1), result(0.3)], metric=lambda r: r.consumed)
        assert summary.mean == pytest.approx(20.0)

    def test_aggregate_by(self):
        runs = [result(0.1, v=1), result(0.2, v=1), result(0.5, v=2)]
        groups = aggregate_by(runs, key=lambda r: r.extras["v"])
        assert groups[1].mean == pytest.approx(0.15)
        assert groups[2].count == 1

    def test_curve_sorted(self):
        runs = [result(0.3, x=3), result(0.1, x=1), result(0.2, x=2)]
        points = curve(runs, x_key="x")
        assert [x for x, _, _ in points] == [1, 2, 3]
        assert [m for _, m, _ in points] == [0.1, 0.2, 0.3]

    def test_summary_str(self):
        assert "n=2" in str(summarize([result(0.1), result(0.2)]))


class TestFormatTable:
    def test_basic_shape(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 0.125]])
        lines = text.splitlines()
        assert len(lines) == 4  # header + rule + 2 rows
        assert "2.5000" in text
        assert "xyz" in text

    def test_column_alignment(self):
        text = format_table(["col"], [["short"], ["a-much-longer-value"]])
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[2]) or len(lines[2]) >= len(lines[0])

    def test_series_table(self):
        curves = {
            0.1: [(1, 0.5), (2, 0.4)],
            0.2: [(1, 0.7)],
        }
        text = format_series_table(curves, x_label="rs")
        assert "rs" in text.splitlines()[0]
        assert "-" in text  # missing point placeholder
        assert "0.5000" in text and "0.7000" in text


class TestLinePlot:
    def test_empty(self):
        assert line_plot({}) == "(no data)"

    def test_renders_markers_and_legend(self):
        curves = {"a": [(0, 0.0), (1, 1.0)], "b": [(0, 1.0), (1, 0.0)]}
        text = line_plot(curves, width=20, height=5)
        assert "o = a" in text
        assert "x = b" in text
        assert "left=0" in text and "right=1" in text

    def test_flat_series_does_not_crash(self):
        text = line_plot({"flat": [(0, 0.5), (1, 0.5)]}, width=10, height=4)
        assert "flat" in text

    def test_single_point(self):
        text = line_plot({"p": [(2.0, 3.0)]})
        assert "p" in text
