"""Chaos tests: every supervision guarantee, proven by injected failure.

The acceptance contract (ISSUE 2): with ``workers=4``,

(a) a point that raises is retried up to ``max_retries`` then recorded
    as a structured ``PointFailure`` while all other points complete and
    a ``SweepResult`` is still returned;
(b) a SIGKILLed worker's point is rescheduled and the sweep's successful
    results are bit-identical to a serial run;
(c) a point exceeding ``point_timeout`` is terminated and reported, and
    the sweep still terminates;
(d) resume from a checkpoint with a torn final line re-runs the torn
    point, and resume after a config change rejects the stale records.

These tests use the default (fork on Linux) multiprocessing context so
the chaos work function and its counter files need no import gymnastics;
the spawn-context pickling path is covered by ``tests/test_parallel.py``.
"""

import json

import pytest

from repro.sim.parallel import (
    CheckpointMismatch,
    ParallelSweepRunner,
    _execute_point,
)
from repro.sim.results import PointFailure, SweepResult
from repro.sim.supervisor import PointFailureError, RetryPolicy, SweepSupervisor

from tests.chaos import (
    chaos_execute,
    make_points,
    serial_outputs,
    tiny_config,
    with_chaos,
)


def outputs(results):
    return [
        result.simulation_outputs()
        for result in results
        if not isinstance(result, PointFailure)
    ]


class TestRaisingPoints:
    def test_exhausted_point_becomes_structured_failure(self):
        # (a): one point raises on every attempt; the sweep degrades
        # gracefully and everything else completes.
        points = with_chaos(make_points(6), 2, {"raise_always": True})
        runner = ParallelSweepRunner(
            workers=4, max_retries=2, backoff_base=0.0, work=chaos_execute
        )
        result = runner.run_sweep("chaos-raise", points)
        assert isinstance(result, SweepResult)
        assert len(result.failures) == 1 and len(result.runs) == 5
        failure = result.failures[0]
        assert failure.kind == "error"
        assert failure.error_type == "RuntimeError"
        assert "chaos" in failure.message
        assert failure.attempts == 3  # 1 try + 2 retries
        assert failure.index == 2 and failure.label == "p2"
        assert failure.elapsed >= 0.0
        assert not result.ok

    def test_transient_error_recovers_bit_identical(self, tmp_path):
        # A point that fails once then succeeds must equal a clean run:
        # retries re-execute the identical seeded config.
        clean = make_points(6)
        points = with_chaos(
            clean, 3, {"raise_times": 1, "counter": str(tmp_path / "attempts")}
        )
        runner = ParallelSweepRunner(
            workers=4, max_retries=2, backoff_base=0.0, work=chaos_execute
        )
        result = runner.run_sweep("chaos-transient", points)
        assert result.ok
        assert outputs(result.runs) == serial_outputs(clean)

    def test_progress_reports_retry_and_giveup(self):
        events = []
        points = with_chaos(make_points(2), 0, {"raise_always": True})
        runner = ParallelSweepRunner(
            workers=2,
            max_retries=1,
            backoff_base=0.0,
            work=chaos_execute,
            progress=events.append,
        )
        runner.run_sweep("chaos-progress", points)
        assert any("retry" in event for event in events)
        assert any("giving up" in event for event in events)

    def test_strict_restores_fail_fast(self):
        points = with_chaos(make_points(4), 1, {"raise_always": True})
        runner = ParallelSweepRunner(
            workers=2,
            max_retries=0,
            backoff_base=0.0,
            strict=True,
            work=chaos_execute,
        )
        with pytest.raises(PointFailureError) as excinfo:
            runner.run_sweep("chaos-strict", points)
        assert excinfo.value.failure.label == "p1"

    def test_inprocess_supervision_matches_pool_semantics(self):
        # workers=1 runs in-process but must still retry and degrade.
        points = with_chaos(make_points(3), 0, {"raise_always": True})
        runner = ParallelSweepRunner(
            workers=1, max_retries=1, backoff_base=0.0, work=chaos_execute
        )
        result = runner.run_sweep("chaos-serial", points)
        assert len(result.failures) == 1 and result.failures[0].attempts == 2
        assert len(result.runs) == 2


class TestWorkerDeath:
    def test_sigkilled_worker_point_rescheduled_bit_identical(self, tmp_path):
        # (b): the worker running p1 SIGKILLs itself on the first attempt.
        # The supervisor must reap it, respawn, reschedule — and the final
        # results must be bit-identical to a serial run without chaos.
        clean = make_points(6)
        points = with_chaos(
            clean, 1, {"kill": True, "counter": str(tmp_path / "kills")}
        )
        runner = ParallelSweepRunner(
            workers=4, max_retries=2, backoff_base=0.0, work=chaos_execute
        )
        result = runner.run_sweep("chaos-kill", points)
        assert result.ok
        assert outputs(result.runs) == serial_outputs(clean)

    def test_repeated_death_exhausts_into_worker_death_failure(self, tmp_path):
        points = with_chaos(
            make_points(4),
            0,
            {"kill": True, "kill_times": 99, "counter": str(tmp_path / "kills")},
        )
        runner = ParallelSweepRunner(
            workers=2, max_retries=1, backoff_base=0.0, work=chaos_execute
        )
        result = runner.run_sweep("chaos-kill-loop", points)
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.kind == "worker-death"
        assert failure.error_type == "WorkerDeath"
        assert failure.attempts == 2
        assert len(result.runs) == 3


class TestTimeouts:
    def test_hung_point_terminated_and_reported(self):
        # (c): p0 hangs forever; the sweep must terminate anyway, with a
        # structured timeout failure and every other point completed.
        points = with_chaos(make_points(5), 0, {"hang": 120})
        runner = ParallelSweepRunner(
            workers=4,
            max_retries=0,
            point_timeout=1.0,
            work=chaos_execute,
        )
        result = runner.run_sweep("chaos-hang", points)
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.kind == "timeout"
        assert failure.error_type == "PointTimeout"
        assert len(result.runs) == 4

    def test_hang_once_recovers_on_retry(self, tmp_path):
        clean = make_points(4)
        points = with_chaos(
            clean,
            2,
            {"hang": 60, "hang_times": 1, "counter": str(tmp_path / "hangs")},
        )
        runner = ParallelSweepRunner(
            workers=2,
            max_retries=1,
            backoff_base=0.0,
            point_timeout=1.5,
            work=chaos_execute,
        )
        result = runner.run_sweep("chaos-hang-once", points)
        assert result.ok
        assert outputs(result.runs) == serial_outputs(clean)

    def test_point_timeout_validation(self):
        with pytest.raises(ValueError):
            SweepSupervisor(work=_execute_point, point_timeout=0.0)


class TestCheckpointChaos:
    def run_checkpointed(self, points, ckpt, **kwargs):
        runner = ParallelSweepRunner(
            checkpoint=ckpt, resume=True, work=_execute_point, **kwargs
        )
        return runner.run_sweep("chaos-ckpt", points)

    def test_torn_final_line_dropped_and_rerun(self, tmp_path):
        # (d, first half): kill-mid-append leaves a torn trailing line.
        # Resume must warn, drop it, re-run exactly that point, and end
        # with a whole checkpoint and full results.
        ckpt = tmp_path / "sweep.jsonl"
        points = make_points(5)
        full = self.run_checkpointed(points, ckpt)
        raw = ckpt.read_text()
        lines = raw.splitlines()
        torn = "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        ckpt.write_text(torn)

        events = []
        with pytest.warns(RuntimeWarning, match="torn final line"):
            resumed = self.run_checkpointed(
                points, ckpt, progress=events.append
            )
        assert outputs(resumed.runs) == outputs(full.runs)
        assert sum("resumed" in event for event in events) == 4
        assert sum("finished" in event for event in events) == 1
        # The checkpoint is whole and parseable again.
        restored = [json.loads(line) for line in ckpt.read_text().splitlines()]
        assert sorted(record["index"] for record in restored) == list(range(5))

    def test_interior_corruption_refuses_resume(self, tmp_path):
        ckpt = tmp_path / "sweep.jsonl"
        points = make_points(3)
        self.run_checkpointed(points, ckpt)
        lines = ckpt.read_text().splitlines()
        lines[0] = lines[0][:20]  # corrupt a non-final record
        ckpt.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointMismatch, match="corrupt mid-file"):
            self.run_checkpointed(points, ckpt)

    def test_changed_config_rejected_by_fingerprint(self, tmp_path):
        # (d, second half): same sweep name and labels, different
        # parameters — the fingerprint must refuse the stale records.
        ckpt = tmp_path / "sweep.jsonl"
        self.run_checkpointed(make_points(3), ckpt)
        changed = [
            (label, tiny_config(seed=index, rounds=80), extras)
            for index, (label, config, extras) in enumerate(make_points(3))
        ]
        with pytest.raises(CheckpointMismatch, match="fingerprint"):
            self.run_checkpointed(changed, ckpt)

    def test_missing_trailing_newline_repaired(self, tmp_path):
        ckpt = tmp_path / "sweep.jsonl"
        points = make_points(3)
        self.run_checkpointed(points, ckpt)
        ckpt.write_text(ckpt.read_text().rstrip("\n"))  # complete but unterminated
        resumed = self.run_checkpointed(points, ckpt)
        assert len(resumed.runs) == 3
        assert ckpt.read_text().endswith("\n")
        restored = [json.loads(line) for line in ckpt.read_text().splitlines()]
        assert len(restored) == 3

    def test_failed_points_not_checkpointed(self, tmp_path):
        # A failure must not be recorded as done: the next resume retries it.
        ckpt = tmp_path / "sweep.jsonl"
        points = with_chaos(make_points(3), 1, {"raise_always": True})
        runner = ParallelSweepRunner(
            checkpoint=ckpt,
            resume=True,
            max_retries=0,
            backoff_base=0.0,
            work=chaos_execute,
        )
        result = runner.run_sweep("chaos-ckpt-fail", points)
        assert len(result.failures) == 1
        recorded = {
            json.loads(line)["index"] for line in ckpt.read_text().splitlines()
        }
        assert recorded == {0, 2}

        clean = make_points(3)
        resumed = ParallelSweepRunner(
            checkpoint=ckpt, resume=True, work=_execute_point
        ).run_sweep("chaos-ckpt-fail", clean)
        assert resumed.ok and len(resumed.runs) == 3


class TestFailureSerialization:
    def test_sweep_result_with_failures_roundtrips_json(self, tmp_path):
        points = with_chaos(make_points(3), 0, {"raise_always": True})
        runner = ParallelSweepRunner(
            workers=2, max_retries=1, backoff_base=0.0, work=chaos_execute
        )
        result = runner.run_sweep("chaos-json", points)
        path = result.save_json(tmp_path / "result.json")
        loaded = SweepResult.load_json(path)
        assert loaded.failures == result.failures
        assert [run.to_dict() for run in loaded.runs] == [
            run.to_dict() for run in result.runs
        ]
        assert not loaded.ok

    def test_retry_policy_validation_and_backoff(self):
        policy = RetryPolicy(max_retries=3, backoff_base=0.5, backoff_cap=2.0)
        assert policy.max_attempts == 4
        assert policy.backoff(1) == 0.5
        assert policy.backoff(2) == 1.0
        assert policy.backoff(5) == 2.0  # capped
        assert RetryPolicy(backoff_base=0.0).backoff(3) == 0.0
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestShardChaos:
    """Shard-death chaos matrix (ISSUE 7): a SIGKILLed / hung / torn
    district worker must heal — cells observed failed, shard respawned
    from the authoritative snapshot, Route re-stabilized within the
    Lemma 6 horizon — with zero monitor violations throughout."""

    def events(self, sim, name):
        return [e for e in sim.engine.healing_log if e["event"] == name]

    def assert_healed_clean(self, sim, result, phase):
        assert result.monitor_violations == 0
        assert sim.engine.degraded is False
        deaths = self.events(sim, "death")
        assert len(deaths) == 1 and deaths[0]["phase"] == phase
        assert deaths[0]["shard"] == 1
        [failed] = self.events(sim, "district-failed")
        assert failed["cells"] > 0 and failed["round"] > deaths[0]["round"]
        [heal] = self.events(sim, "heal")
        assert heal["round"] >= failed["round"] + 1  # heal_delay respected
        [stabilized] = self.events(sim, "stabilized")
        assert stabilized["within_horizon"] is True
        assert stabilized["rounds"] <= stabilized["horizon"]

    @pytest.mark.parametrize("phase", ["route", "signal", "commit"])
    def test_sigkill_mid_round_heals_within_horizon(self, phase):
        from tests.chaos import build_sharded_sim, shard_kill

        sim = build_sharded_sim(chaos=shard_kill(5, phase=phase))
        result = sim.run()
        self.assert_healed_clean(sim, result, phase)

    def test_hang_past_heartbeat_is_a_death_then_heals(self):
        from tests.chaos import build_sharded_sim, shard_hang

        # The worker hangs far beyond the channel timeout; the bounded
        # retry gives up (a heartbeat timeout), the handle is reaped
        # (killing the hung process), and healing proceeds as for a kill.
        sim = build_sharded_sim(
            chaos=shard_hang(4, seconds=60.0), timeout=0.2, retries=1
        )
        result = sim.run()
        self.assert_healed_clean(sim, result, "route")
        [death] = self.events(sim, "death")
        assert death["reason"] == "ChannelTimeout"

    @pytest.mark.parametrize("action", ["drop", "tear"])
    def test_torn_boundary_message_survived_by_retransmit(self, action):
        from repro.obs.instrument import ObservabilityConfig
        from repro.testing.differential import state_digest
        from tests.chaos import build_sharded_sim, shard_drop, shard_tear

        chaos = (shard_drop if action == "drop" else shard_tear)(6, phase="signal")
        sim = build_sharded_sim(
            chaos=chaos,
            timeout=0.2,
            observability=ObservabilityConfig(metrics=True),
        )
        result = sim.run()
        # No death: the cached reply satisfied the retransmit.
        assert sim.engine.healing_log == []
        assert result.monitor_violations == 0
        assert result.metrics["counters"]["channel.retries"] >= 1
        # And the run is bit-identical to an undisturbed sharded run.
        clean = build_sharded_sim()
        clean.run()
        assert state_digest(sim.system) == state_digest(clean.system)

    def test_respawn_budget_exhaustion_degrades_gracefully(self):
        from tests.chaos import build_sharded_sim, shard_kill

        sim = build_sharded_sim(
            chaos=shard_kill(5, phase="route"), respawn_budget=0
        )
        result = sim.run()
        assert result.rounds == sim.rounds  # the run still completes
        assert result.monitor_violations == 0
        assert sim.engine.degraded is True
        [degraded] = [
            e for e in sim.engine.healing_log if e["event"] == "degraded"
        ]
        assert degraded["shard"] == 1 and degraded["respawns_used"] == 0
        assert not [e for e in sim.engine.healing_log if e["event"] == "heal"]
        # The dead district stays failed; its cells never resurrect.
        assert all(
            sim.system.cells[(i, j)].failed for i in range(6) for j in range(3, 6)
        )

    def test_repeated_kill_consumes_budget_then_degrades(self):
        from tests.chaos import build_sharded_sim, shard_kill

        # repeat=True re-kills every respawned worker at its first
        # route request, draining the budget death by death.
        sim = build_sharded_sim(
            chaos=shard_kill(5, phase="route", repeat=True),
            respawn_budget=2,
            config=None,
        )
        result = sim.run()
        assert result.monitor_violations == 0
        assert sim.engine.degraded is True
        assert len(self.events(sim, "heal")) == 2  # budget fully used
        assert len(self.events(sim, "death")) == 3
