"""Crash-recovery soak: scripted fail→recover on a unique route.

A corridor system (every off-path cell pre-failed) has exactly one
feasible route, so failing an on-path cell severs it completely — the
harshest disruption the routing layer can face. This soak scripts two
such fail→recover cycles over a ~450-round horizon and checks the
stabilization story end to end:

* the safety monitors stay clean throughout (zero violations);
* routing re-stabilizes after each recovery — every path cell's ``dist``
  returns to its exact hop count to the target;
* throughput stops while the route is severed and resumes after
  recovery;
* the injector's aggregate accounting is exact while its per-round
  ``history`` stays bounded by ``history_limit``.
"""

from repro.core.params import Parameters
from repro.core.system import build_corridor_system
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultEvent, ScriptedFaultModel
from repro.grid.topology import Grid
from repro.monitors.recorder import MonitorSuite
from repro.sim.simulator import Simulator

PARAMS = Parameters(l=0.25, rs=0.05, v=0.2)
PATH = [(1, j) for j in range(8)]  # (1,0) source .. (1,7) target
ROUNDS = 450

# Two fail→recover cycles on distinct on-path cells, far enough apart
# that the system fully re-stabilizes between them.
EVENTS = [
    FaultEvent(60, (1, 3), "fail"),
    FaultEvent(160, (1, 3), "recover"),
    FaultEvent(240, (1, 5), "fail"),
    FaultEvent(300, (1, 5), "recover"),
]


def build_soak(history_limit=64):
    grid = Grid(8, 8)
    system = build_corridor_system(grid, PARAMS, PATH)
    injector = FaultInjector(
        ScriptedFaultModel(EVENTS), history_limit=history_limit
    )
    return Simulator(
        system=system,
        rounds=ROUNDS,
        injector=injector,
        monitors=MonitorSuite(),
    )


def path_dists(system):
    return {cid: system.cells[cid].dist for cid in PATH}


class TestCrashRecoverySoak:
    def test_soak_survives_with_clean_monitors_and_restabilized_routing(self):
        sim = build_soak()
        consumed_at = {}
        for round_index in range(ROUNDS):
            sim.step()
            if round_index in (59, 159, 239, 299, ROUNDS - 1):
                consumed_at[round_index] = sim.system.total_consumed

        result = sim.summarize()

        # Strict monitors would have raised mid-run; the summary agrees.
        assert result.monitor_violations == 0
        assert sim.monitors.clean

        # Exact fault accounting despite the bounded history.
        assert result.total_failures == 2
        assert result.total_recoveries == 2

        # Routing re-stabilized: every path cell's dist is its hop count
        # to the target, exactly as before any disruption.
        assert path_dists(sim.system) == {(1, j): float(7 - j) for j in range(8)}
        assert sim.system.failed_cells() == {
            cid for cid in Grid(8, 8).cells() if cid not in set(PATH)
        }

        # Throughput stopped while the unique route was severed...
        severed_first = consumed_at[159] - consumed_at[59]
        severed_second = consumed_at[299] - consumed_at[239]
        assert severed_first <= 4  # at most the entities already past the cut
        assert severed_second <= 4
        # ...and resumed after the final recovery.
        resumed = consumed_at[ROUNDS - 1] - consumed_at[299]
        assert resumed > 10
        assert result.consumed == consumed_at[ROUNDS - 1]

    def test_injector_history_bounded_but_accounting_exact(self):
        sim = build_soak(history_limit=64)
        for _ in range(ROUNDS):
            sim.step()
        injector = sim.injector
        assert len(injector.history) == 64
        assert injector.rounds_applied == ROUNDS
        # The tracked value survives eviction of the decision itself.
        assert injector.last_disruption_round == 300
        assert injector.total_failures == 2
        assert injector.total_recoveries == 2

    def test_unbounded_history_opt_out(self):
        sim = build_soak(history_limit=None)
        for _ in range(ROUNDS):
            sim.step()
        assert len(sim.injector.history) == ROUNDS
