"""Unit tests for per-cell state and the failure-masked view."""

import math

import pytest

from repro.core.cell import (
    INFINITY,
    CellState,
    effective_dist,
    effective_next,
    effective_nonempty,
    effective_signal,
)
from repro.core.entity import Entity


def make_state(**kwargs) -> CellState:
    return CellState(cell_id=(1, 1), **kwargs)


class TestInitialState:
    def test_figure_3_defaults(self):
        state = make_state()
        assert state.members == {}
        assert state.next_id is None
        assert state.ne_prev == set()
        assert state.dist == INFINITY
        assert state.token is None
        assert state.signal is None
        assert not state.failed
        assert state.is_empty


class TestMembership:
    def test_add_and_remove(self):
        state = make_state()
        entity = Entity(uid=1, x=1.5, y=1.5)
        state.add_entity(entity)
        assert not state.is_empty
        removed = state.remove_entity(1)
        assert removed is entity
        assert state.is_empty

    def test_duplicate_add_rejected(self):
        state = make_state()
        state.add_entity(Entity(uid=1, x=1.5, y=1.5))
        with pytest.raises(ValueError):
            state.add_entity(Entity(uid=1, x=1.2, y=1.2))

    def test_remove_missing_rejected(self):
        with pytest.raises(ValueError):
            make_state().remove_entity(42)

    def test_entities_sorted_by_uid(self):
        state = make_state()
        state.add_entity(Entity(uid=5, x=1.5, y=1.5))
        state.add_entity(Entity(uid=2, x=1.2, y=1.2))
        assert [e.uid for e in state.entities()] == [2, 5]


class TestFailureTransitions:
    def test_mark_failed_matches_paper_effect(self):
        state = make_state(dist=3.0, next_id=(1, 2))
        state.mark_failed()
        assert state.failed
        assert state.dist == INFINITY
        assert state.next_id is None

    def test_members_survive_crash(self):
        state = make_state()
        state.add_entity(Entity(uid=1, x=1.5, y=1.5))
        state.mark_failed()
        assert len(state.members) == 1

    def test_recover_ordinary(self):
        state = make_state()
        state.mark_failed()
        state.mark_recovered(is_target=False)
        assert not state.failed
        assert state.dist == INFINITY
        assert state.next_id is None
        assert state.token is None and state.signal is None

    def test_recover_target_resets_dist(self):
        state = make_state()
        state.mark_failed()
        state.mark_recovered(is_target=True)
        assert state.dist == 0.0


class TestEffectiveView:
    def test_live_cell_transparent(self):
        state = make_state(dist=2.0, next_id=(1, 2))
        state.signal = (0, 1)
        state.add_entity(Entity(uid=1, x=1.5, y=1.5))
        assert effective_dist(state) == 2.0
        assert effective_next(state) == (1, 2)
        assert effective_signal(state) == (0, 1)
        assert effective_nonempty(state)

    def test_failed_cell_masked(self):
        state = make_state(dist=2.0, next_id=(1, 2))
        state.signal = (0, 1)
        state.add_entity(Entity(uid=1, x=1.5, y=1.5))
        state.failed = True
        assert math.isinf(effective_dist(state))
        assert effective_next(state) is None
        assert effective_signal(state) is None
        assert not effective_nonempty(state)

    def test_empty_live_cell_not_nonempty(self):
        assert not effective_nonempty(make_state())


class TestClone:
    def test_deep_copy(self):
        state = make_state(dist=1.0, next_id=(1, 2))
        state.add_entity(Entity(uid=1, x=1.5, y=1.5))
        state.ne_prev = {(0, 1)}
        copy = state.clone()
        copy.members[1].x = 9.9
        copy.ne_prev.add((2, 1))
        assert state.members[1].x == 1.5
        assert state.ne_prev == {(0, 1)}
        assert copy.dist == 1.0 and copy.next_id == (1, 2)
