"""Property-based verification of the stabilization and progress claims.

* Lemma 6 / Corollary 7: after failures cease, routing tables match the
  BFS ground truth within the proved bounds.
* Theorem 10: after failures cease, entities on target-connected cells
  are eventually consumed.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cell import INFINITY
from repro.core.params import Parameters
from repro.core.sources import CappedSource, EagerSource
from repro.core.system import System, build_corridor_system
from repro.faults.injector import FaultInjector
from repro.faults.model import BernoulliFaultModel, WindowedFaultModel
from repro.grid.paths import turns_path
from repro.grid.topology import Grid
from repro.monitors.progress import (
    routing_matches_ground_truth,
    routing_stabilization_round,
)
from repro.monitors.recorder import MonitorSuite

PARAMS = Parameters(l=0.25, rs=0.05, v=0.25)

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRoutingStabilization:
    @SLOW
    @given(
        n=st.integers(min_value=2, max_value=6),
        tid=st.tuples(st.integers(0, 5), st.integers(0, 5)),
        crash_seed=st.integers(min_value=0, max_value=2**16),
        crash_count=st.integers(min_value=0, max_value=8),
    )
    def test_lemma_6_bound(self, n, tid, crash_seed, crash_count):
        """From a fresh state with arbitrary crashes, every TC cell's dist
        equals rho within max-rho rounds (plus next points downhill)."""
        tid = (tid[0] % n, tid[1] % n)
        system = System(grid=Grid(n), params=PARAMS, tid=tid)
        rng = random.Random(crash_seed)
        candidates = [cid for cid in system.grid.cells() if cid != tid]
        for victim in rng.sample(candidates, min(crash_count, len(candidates))):
            system.fail(victim)
        rho = system.path_distance()
        finite = [v for v in rho.values() if v != INFINITY]
        horizon = int(max(finite)) + 1 if finite else 1
        for _ in range(horizon):
            system.update()
        assert routing_matches_ground_truth(system)

    @SLOW
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        pf=st.floats(min_value=0.05, max_value=0.3),
    )
    def test_corollary_7_after_churn_stops(self, seed, pf):
        """Arbitrary (finite) fault churn, then quiet: routing stabilizes
        within O(N^2) rounds of the last fault. The target is immune —
        the paper's environment assumption (a); with a permanently failed
        target, dist exhibits count-to-infinity instead (covered in
        test_core_route)."""
        n = 5
        system = System(grid=Grid(n), params=PARAMS, tid=(2, 2))
        churn = WindowedFaultModel(
            inner=BernoulliFaultModel(pf=pf, pr=pf, immune=frozenset({(2, 2)})),
            start=0,
            stop=20,
        )
        injector = FaultInjector(churn, rng=random.Random(seed))
        for _ in range(20):
            injector.apply(system)
            system.update()
        stabilized = routing_stabilization_round(system, max_rounds=n * n + 1)
        assert stabilized is not None


class TestNonTargetConnectedCells:
    def test_disconnected_island_counts_to_infinity(self):
        """A live island walled off from the target never stabilizes its
        dist (count-to-infinity). Lemma 6 / Corollary 7 deliberately claim
        nothing about non-TC cells; the default monitor matches that, the
        strict variant does not."""
        system = System(grid=Grid(4), params=PARAMS, tid=(0, 0))
        for _ in range(8):  # converge routing so the island holds finite dists
            system.update()
        # Wall off the top-right 2x2 island {(2,2),(3,2),(2,3),(3,3)}.
        for victim in [(2, 1), (3, 1), (1, 2), (1, 3)]:
            system.fail(victim)
        for _ in range(40):
            system.update()
        assert routing_matches_ground_truth(system)  # TC cells fine
        assert not routing_matches_ground_truth(system, strict=True)
        island_dists = [system.cells[cid].dist for cid in [(2, 2), (3, 3)]]
        assert all(d != INFINITY and d > 20 for d in island_dists)


class TestProgress:
    @SLOW
    @given(
        length=st.integers(min_value=2, max_value=7),
        turns_seed=st.integers(min_value=0, max_value=5),
        batch=st.integers(min_value=1, max_value=8),
    )
    def test_theorem_10_drain(self, length, turns_seed, batch):
        """Every produced entity on a target-connected corridor is
        eventually consumed once production stops."""
        turns = turns_seed % max(1, length - 1)
        path = turns_path((0, 0), length, turns)
        system = build_corridor_system(
            Grid(8),
            PARAMS,
            path.cells,
            source_policy=CappedSource(EagerSource(), limit=batch),
        )
        suite = MonitorSuite().attach(system)
        deadline = 400 + 40 * batch * length
        for _ in range(deadline):
            report = system.update()
            suite.after_round(system, report)
            if system.total_consumed == batch and system.entity_count() == 0:
                break
        assert system.total_produced == batch
        assert system.total_consumed == batch
        assert system.entity_count() == 0

    @SLOW
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_progress_resumes_after_failures_cease(self, seed):
        """Fault churn suppresses throughput; once it stops, consumption
        resumes (the paper's self-stabilization claim, end to end)."""
        grid = Grid(6)
        system = System(
            grid=grid,
            params=PARAMS,
            tid=(3, 5),
            sources={(3, 0): EagerSource()},
            rng=random.Random(seed),
        )
        injector = FaultInjector(
            WindowedFaultModel(
                inner=BernoulliFaultModel(
                    pf=0.15, pr=0.05, immune=frozenset({(3, 5)})
                ),
                start=0,
                stop=60,
                recover_all_at_stop=True,
            ),
            rng=random.Random(seed + 1),
        )
        for _ in range(61):
            injector.apply(system)
            system.update()
        consumed_during_churn = system.total_consumed
        for _ in range(300):
            injector.apply(system)  # quiet now
            system.update()
        assert system.total_consumed > consumed_during_churn

    def test_fairness_two_branch_merge(self):
        """Lemma 9's fairness: with two saturated branches merging, both
        keep delivering (round-robin token prevents starvation)."""
        from repro.experiments.ablations import _merge_system
        from repro.core.policies import RoundRobinTokenPolicy
        from repro.sim.simulator import Simulator

        system = _merge_system(RoundRobinTokenPolicy(), seed=5)
        simulator = Simulator(system=system, rounds=1500, monitors=MonitorSuite())
        simulator.run()
        per_source = {}
        for record in simulator.tracker.consumed():
            per_source[record.source] = per_source.get(record.source, 0) + 1
        assert per_source.get((0, 2), 0) > 0
        assert per_source.get((2, 0), 0) > 0
