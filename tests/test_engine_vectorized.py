"""The vectorized engine: 3-way differential matrix plus array-core units.

Mirrors ``tests/test_engine_differential.py`` for the third engine: the
lockstep harness sweeps the same 26-seed faulting matrix (plus
fault-free, corridor, free-form and the committed fuzz corpus) asserting
the array-native engine is observationally identical to the full-sweep
reference — same per-round state digests, same reports, same monitor
verdicts, same metrics, byte-identical traces.

The array-core units then pin the vectorized kernels against the scalar
originals property-by-property (hypothesis): :func:`route_relax` against
``_route_step`` on random dist lattices with random failure masks, and
the windowed :func:`gap_clear_extents` against the per-member
:func:`gap_clear` on random member sets. A wrong-sentinel mutant proves
the harness catches the representation bug class this engine could
plausibly introduce.

Everything here requires numpy (the package's one soft dependency); the
module is skipped wholesale without it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.arrays import HAVE_NUMPY

if not HAVE_NUMPY:  # pragma: no cover - CI installs numpy
    pytest.skip("numpy not installed", allow_module_level=True)

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.arrays import (
    NO_CELL,
    EntityArrays,
    GridArrays,
    ne_prev_masks,
    route_relax,
)
from repro.core.cell import DIST_SENTINEL, INFINITY, dist_from_int
from repro.core.entity import Entity
from repro.core.params import Parameters
from repro.core.route import _route_step
from repro.core.signal import gap_clear, gap_clear_extents
from repro.core.system import System
from repro.fuzz.generator import Scenario
from repro.grid.topology import Direction, Grid
from repro.obs.instrument import ObservabilityConfig
from repro.sim import engine as engine_module
from repro.sim.engine import VectorizedEngine, make_engine
from repro.sim.simulator import build_simulation
from tests.differential import DifferentialMismatch, random_config, run_lockstep
from tests.test_engine_differential import corridor_config

FAULTING_SEEDS = range(26)
FAULT_FREE_SEEDS = range(100, 106)

SEEDED = settings(derandomize=True, deadline=None, max_examples=150)

CORPUS_FILES = sorted((Path(__file__).parent / "corpus").glob("seed-*.json"))


# ----------------------------------------------------------------------
# The 3-way differential matrix
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", FAULTING_SEEDS)
def test_faulting_configs_match_reference(seed):
    outcome = run_lockstep(random_config(seed, faulting=True), engine_b="vectorized")
    assert len(outcome.digests) == outcome.config.rounds


@pytest.mark.parametrize("seed", FAULT_FREE_SEEDS)
def test_fault_free_configs_match_reference(seed):
    run_lockstep(random_config(seed, faulting=False), engine_b="vectorized")


@pytest.mark.parametrize("seed", [2, 9, 17])
def test_incremental_and_vectorized_agree(seed):
    """Close the triangle: the two optimized engines against each other."""
    run_lockstep(
        random_config(seed, faulting=True),
        engine_a="incremental",
        engine_b="vectorized",
    )


def test_paper_corridor_matches_reference():
    run_lockstep(corridor_config(), engine_b="vectorized")


def test_free_form_multi_source_matches_reference():
    config = random_config(4242, faulting=True)
    run_lockstep(config, engine_b="vectorized")


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_replays_identically_under_vectorized(path):
    """Every committed fuzz scenario also lockstep-matches the reference
    under the vectorized engine (the differential oracle runs this leg
    too; this pins it per-file with monitors on where configured)."""
    from dataclasses import replace

    record = json.loads(path.read_text())
    scenario = Scenario.from_dict(record["scenario"])
    if scenario.config.commodities:
        pytest.skip("vectorized engine has no multi-commodity support")
    if scenario.config.adversary is not None:
        from repro.adversary.scripts import parse_adversary_spec

        if parse_adversary_spec(scenario.config.adversary)[0] == "rotating_target":
            # Same gate as the differential oracle: the packed arrays
            # assume a fixed target cell, so relocation scenarios run
            # only on the object engines.
            pytest.skip("vectorized engine does not support target relocation")
    config = replace(scenario.config, monitors=False)
    run_lockstep(config, engine_b="vectorized")


def test_traces_and_metrics_are_byte_identical(tmp_path):
    config = random_config(4242, faulting=True)
    trace_a = tmp_path / "reference.jsonl"
    trace_b = tmp_path / "vectorized.jsonl"
    outcome = run_lockstep(
        config,
        engine_b="vectorized",
        observability_a=ObservabilityConfig(metrics=True, trace_path=str(trace_a)),
        observability_b=ObservabilityConfig(metrics=True, trace_path=str(trace_b)),
    )
    assert outcome.result_a.metrics is not None
    assert outcome.result_a.metrics == outcome.result_b.metrics
    assert trace_a.read_bytes() == trace_b.read_bytes()
    assert trace_a.stat().st_size > 0


# ----------------------------------------------------------------------
# Engine selection
# ----------------------------------------------------------------------


def test_engine_selection_reaches_vectorized(monkeypatch):
    assert (
        build_simulation(corridor_config(engine="vectorized")).engine.name
        == "vectorized"
    )
    monkeypatch.setenv("REPRO_ENGINE", "vectorized")
    assert build_simulation(corridor_config()).engine.name == "vectorized"
    assert isinstance(
        build_simulation(corridor_config()).engine, VectorizedEngine
    )


def test_cell_observer_chaining_preserved():
    """Installing the engine must not eat a pre-existing observer."""
    simulator = build_simulation(corridor_config(rounds=10), engine="reference")
    seen = []
    simulator.system.cell_observer = lambda event, cid: seen.append((event, cid))
    VectorizedEngine(simulator.system)
    simulator.system.fail((1, 3))
    simulator.system.recover((1, 3))
    assert seen == [("fail", (1, 3)), ("recover", (1, 3))]


def test_resync_restores_a_stale_mirror():
    """Direct state mutation without events goes stale; resync() heals."""
    simulator = build_simulation(
        corridor_config(rounds=10), engine="vectorized"
    )
    engine = simulator.engine
    state = simulator.system.cells[(1, 3)]
    state.dist = 99.0  # direct mutation, no event fires
    k = engine.arrays.flat((1, 3))
    assert engine.arrays.dist[k] != 99
    engine.resync()
    assert engine.arrays.dist[k] == 99


# ----------------------------------------------------------------------
# Array-core units
# ----------------------------------------------------------------------


class TestGridArrays:
    def test_flat_index_is_row_major(self):
        """Ascending flat order must equal Grid.cells() iteration order —
        the property every report-ordering argument rests on."""
        grid = Grid(4, 3)
        arrays = GridArrays(4, 3)
        for k, cid in enumerate(grid.cells()):
            assert arrays.flat(cid) == k
            assert arrays.cell(k) == cid

    def test_from_system_round_trips(self):
        system = build_simulation(corridor_config(rounds=10)).system
        system.update()
        arrays = GridArrays.from_system(system)
        for cid, state in system.cells.items():
            k = arrays.flat(cid)
            assert dist_from_int(int(arrays.dist[k])) == state.dist
            encoded = int(arrays.next[k])
            assert (None if encoded == NO_CELL else arrays.cell(encoded)) == (
                state.next_id
            )
            assert bool(arrays.failed[k]) == state.failed
            assert int(arrays.member_count[k]) == len(state.members)


class TestEntityArrays:
    def test_packs_in_cell_then_uid_order(self):
        system = build_simulation(corridor_config(rounds=10)).system
        for _ in range(12):
            system.update()
        packed = EntityArrays.from_system(system)
        assert len(packed) == system.entity_count()
        order = list(zip(packed.cell.tolist(), packed.uid.tolist()))
        assert order == sorted(order)
        counts = packed.counts(system.grid.width * system.grid.height)
        for cid, state in system.cells.items():
            k = cid[1] * system.grid.width + cid[0]
            assert counts[k] == len(state.members)

    def test_positions_are_exact(self):
        system = build_simulation(corridor_config(rounds=10)).system
        for _ in range(8):
            system.update()
        packed = EntityArrays.from_system(system)
        by_uid = {
            e.uid: e
            for state in system.cells.values()
            for e in state.members.values()
        }
        for uid, x, y in zip(packed.uid, packed.x, packed.y):
            assert by_uid[int(uid)].x == float(x)
            assert by_uid[int(uid)].y == float(y)


@st.composite
def dist_lattices(draw):
    """A small grid with random integral dists, sentinels, and failures."""
    width = draw(st.integers(min_value=2, max_value=5))
    height = draw(st.integers(min_value=2, max_value=5))
    size = width * height
    dists = draw(
        st.lists(
            st.one_of(
                st.integers(min_value=0, max_value=12),
                st.just(DIST_SENTINEL),
            ),
            min_size=size,
            max_size=size,
        )
    )
    failed = draw(st.lists(st.booleans(), min_size=size, max_size=size))
    return width, height, dists, failed


@given(dist_lattices())
@SEEDED
def test_route_relax_matches_route_step(lattice):
    """The whole-grid relaxation equals the scalar Route at every cell —
    including the (dist, id) tie-break — on arbitrary dist/failure
    lattices."""
    width, height, dists, failed = lattice
    grid = Grid(width, height)
    arrays = GridArrays(width, height)
    arrays.dist = np.asarray(dists, dtype=np.int64)
    arrays.failed = np.asarray(failed, dtype=bool)

    new_dist, new_next = route_relax(arrays)

    snapshot = {
        cid: (
            INFINITY
            if failed[arrays.flat(cid)]
            else dist_from_int(dists[arrays.flat(cid)])
        )
        for cid in grid.cells()
    }
    for cid in grid.cells():
        k = arrays.flat(cid)
        expected_dist, expected_next = _route_step(grid, cid, snapshot)
        assert dist_from_int(int(new_dist[k])) == expected_dist, cid
        encoded = int(new_next[k])
        assert (None if encoded == NO_CELL else arrays.cell(encoded)) == (
            expected_next
        ), cid


def test_ne_prev_masks_match_scalar_compute():
    """The mask form of NEPrev equals compute_ne_prev on a live system."""
    from repro.core.signal import compute_ne_prev

    system = build_simulation(corridor_config(rounds=10)).system
    for _ in range(10):
        system.update()
    arrays = GridArrays.from_system(system)
    west, south, north, east = ne_prev_masks(arrays)
    width = arrays.width
    for cid, state in system.cells.items():
        if state.failed:
            continue
        k = arrays.flat(cid)
        from_masks = set()
        if west[k]:
            from_masks.add(arrays.cell(k - 1))
        if south[k]:
            from_masks.add(arrays.cell(k - width))
        if north[k]:
            from_masks.add(arrays.cell(k + width))
        if east[k]:
            from_masks.add(arrays.cell(k + 1))
        assert from_masks == compute_ne_prev(system.grid, system.cells, cid), cid


@given(
    xs=st.lists(
        st.floats(min_value=0.1, max_value=0.9, allow_nan=False),
        min_size=0,
        max_size=6,
    ),
    ys=st.lists(
        st.floats(min_value=0.1, max_value=0.9, allow_nan=False),
        min_size=0,
        max_size=6,
    ),
    toward=st.sampled_from(list(Direction)),
    rs=st.sampled_from([0.03, 0.05, 0.08]),
)
@SEEDED
def test_gap_clear_extents_equals_gap_clear(xs, ys, toward, rs):
    """The windowed min/max form returns the per-member form's verdict
    for every member set, direction, and parameterization."""
    params = Parameters(l=0.25, rs=rs, v=0.2)
    from repro.core.cell import CellState

    state = CellState(cell_id=(0, 0))
    for uid, (x, y) in enumerate(zip(xs, ys)):
        state.members[uid] = Entity(uid=uid, x=x, y=y, birth_round=0)
    assert gap_clear_extents(state, toward, params) == gap_clear(
        state, toward, params
    )


# ----------------------------------------------------------------------
# Mutation test: a planted wrong-sentinel bug must be caught
# ----------------------------------------------------------------------


class _WrongSentinelEngine(VectorizedEngine):
    """MUTANT: the Route relaxation observes failed cells at dist 0
    instead of the infinity sentinel — the representation bug where
    "crashed" aliases "at the target", making every failed cell a
    routing black hole. (Clearing the mask is part of the plant:
    ``route_relax`` itself re-masks failed cells to the sentinel, so the
    wrong value must reach the effective view to be observed.)"""

    def _route_phase(self):
        failed = self.arrays.failed.copy()
        self.arrays.dist[failed] = 0
        self.arrays.failed[:] = False
        try:
            return super()._route_phase()
        finally:
            self.arrays.failed[:] = failed


def test_harness_catches_wrong_sentinel(monkeypatch):
    monkeypatch.setitem(engine_module.ENGINES, "vectorized", _WrongSentinelEngine)
    with pytest.raises(DifferentialMismatch):
        run_lockstep(corridor_config(), engine_b="vectorized")


def test_unmutated_registry_after_mutation_tests():
    assert engine_module.ENGINES["vectorized"] is VectorizedEngine
    assert make_engine(
        "vectorized", build_simulation(corridor_config(rounds=5)).system
    ).name == "vectorized"
