"""Unit tests for the Signal function (paper Figure 5, Lemmas 3 and 9)."""

import random

import pytest

from repro.core.params import Parameters
from repro.core.signal import compute_ne_prev, gap_clear, signal_phase
from repro.core.system import System
from repro.grid.topology import Direction, Grid

PARAMS = Parameters(l=0.25, rs=0.05, v=0.2)  # d = 0.3


def make_system(n=3, tid=(1, 2)) -> System:
    return System(grid=Grid(n), params=PARAMS, tid=tid, rng=random.Random(0))


def converge_routes(system: System, rounds: int = 10) -> None:
    from repro.core.route import route_phase

    for _ in range(rounds):
        route_phase(system.grid, system.cells, system.tid)


class TestGapClear:
    """The lines 4-7 predicate, all four directions (d = 0.3, l/2 = 0.125)."""

    def test_empty_cell_always_clear(self):
        system = make_system()
        for direction in Direction:
            assert gap_clear(system.cells[(1, 1)], direction, PARAMS)

    def test_east_gap(self):
        system = make_system()
        state = system.cells[(1, 1)]
        # Right edge at x = 1.5 + 0.125 = 1.625 <= 2 - 0.3 = 1.7: clear.
        system.seed_entity((1, 1), 1.5, 1.5)
        assert gap_clear(state, Direction.EAST, PARAMS)
        # An entity further right closes the gap.
        system.seed_entity((1, 1), 1.8, 1.5)
        assert not gap_clear(state, Direction.EAST, PARAMS)

    def test_west_gap(self):
        system = make_system()
        state = system.cells[(1, 1)]
        system.seed_entity((1, 1), 1.5, 1.5)
        assert gap_clear(state, Direction.WEST, PARAMS)
        system.seed_entity((1, 1), 1.2, 1.5)
        assert not gap_clear(state, Direction.WEST, PARAMS)

    def test_north_gap(self):
        system = make_system()
        state = system.cells[(1, 1)]
        system.seed_entity((1, 1), 1.5, 1.5)
        assert gap_clear(state, Direction.NORTH, PARAMS)
        system.seed_entity((1, 1), 1.5, 1.8)
        assert not gap_clear(state, Direction.NORTH, PARAMS)

    def test_south_gap(self):
        system = make_system()
        state = system.cells[(1, 1)]
        system.seed_entity((1, 1), 1.5, 1.5)
        assert gap_clear(state, Direction.SOUTH, PARAMS)
        system.seed_entity((1, 1), 1.5, 1.2)
        assert not gap_clear(state, Direction.SOUTH, PARAMS)

    def test_boundary_case_exactly_at_gap(self):
        system = make_system()
        state = system.cells[(1, 1)]
        # Right edge exactly at i+1-d: x = 1.7 - 0.125 = 1.575.
        system.seed_entity((1, 1), 1.575, 1.5)
        assert gap_clear(state, Direction.EAST, PARAMS)


class TestNEPrev:
    def test_empty_when_no_inbound(self):
        system = make_system()
        converge_routes(system)
        assert compute_ne_prev(system.grid, system.cells, (1, 2)) == set()

    def test_inbound_nonempty_neighbor_included(self):
        system = make_system()
        converge_routes(system)
        system.seed_entity((1, 1), 1.5, 1.5)  # next of (1,1) is tid (1,2)
        assert compute_ne_prev(system.grid, system.cells, (1, 2)) == {(1, 1)}

    def test_empty_neighbor_excluded(self):
        system = make_system()
        converge_routes(system)
        assert compute_ne_prev(system.grid, system.cells, (1, 2)) == set()

    def test_failed_neighbor_excluded(self):
        system = make_system()
        converge_routes(system)
        system.seed_entity((1, 1), 1.5, 1.5)
        system.cells[(1, 1)].failed = True
        assert compute_ne_prev(system.grid, system.cells, (1, 2)) == set()


class TestSignalPhase:
    def test_grant_to_single_inbound(self):
        system = make_system()
        converge_routes(system)
        system.seed_entity((1, 1), 1.5, 1.5)
        report = signal_phase(system.grid, system.cells, PARAMS)
        assert system.cells[(1, 2)].signal == (1, 1)
        assert report.granted[(1, 2)] == (1, 1)

    def test_block_when_gap_occupied(self):
        """(1,0) wants to enter (1,1) from the south; an entity sitting in
        (1,1)'s south strip (depth d = 0.3) forces signal = bot."""
        system = make_system(tid=(1, 2))
        converge_routes(system)
        system.seed_entity((1, 0), 1.5, 0.5)
        system.seed_entity((1, 1), 1.5, 1.2)  # bottom edge 1.075 < 1 + 0.3
        report = signal_phase(system.grid, system.cells, PARAMS)
        assert system.cells[(1, 1)].signal is None
        assert (1, 1) in report.blocked

    def test_blocked_token_parks(self):
        """A blocked grant leaves the token on the same neighbor (the
        fairness step in Lemma 9's proof)."""
        system = make_system()
        converge_routes(system)
        system.seed_entity((1, 0), 1.5, 0.5)
        system.seed_entity((1, 1), 1.5, 1.2)  # blocks (1,1)'s south strip
        signal_phase(system.grid, system.cells, PARAMS)
        assert system.cells[(1, 1)].token == (1, 0)
        assert system.cells[(1, 1)].signal is None
        signal_phase(system.grid, system.cells, PARAMS)
        assert system.cells[(1, 1)].token == (1, 0)

    def test_token_rotates_after_grant(self):
        """With two inbound neighbors, consecutive grants alternate."""
        system = make_system(n=3, tid=(1, 1))
        converge_routes(system)
        system.seed_entity((0, 1), 0.5, 1.5)
        system.seed_entity((2, 1), 2.5, 1.5)
        signal_phase(system.grid, system.cells, PARAMS)
        first = system.cells[(1, 1)].signal
        signal_phase(system.grid, system.cells, PARAMS)
        second = system.cells[(1, 1)].signal
        assert {first, second} == {(0, 1), (2, 1)}

    def test_dangling_token_dropped(self):
        """A token holder that drained out of NEPrev is replaced."""
        system = make_system(n=3, tid=(1, 1))
        converge_routes(system)
        system.seed_entity((0, 1), 0.5, 1.5)
        signal_phase(system.grid, system.cells, PARAMS)
        assert system.cells[(1, 1)].token == (0, 1)
        # Drain (0,1); (2,1) becomes the only candidate.
        system.cells[(0, 1)].members.clear()
        system.seed_entity((2, 1), 2.5, 1.5)
        signal_phase(system.grid, system.cells, PARAMS)
        assert system.cells[(1, 1)].signal == (2, 1)

    def test_long_run_grant_fairness(self):
        """Lemma 9's enabling condition: with three persistently nonempty
        inbound neighbors, grants distribute evenly over time."""
        system = make_system(n=3, tid=(1, 1))
        converge_routes(system)
        inbound = [(0, 1), (2, 1), (1, 0)]
        for cid in inbound:
            system.seed_entity(cid, cid[0] + 0.5, cid[1] + 0.5)
        grants = {cid: 0 for cid in inbound}
        for _ in range(90):
            signal_phase(system.grid, system.cells, PARAMS)
            granted = system.cells[(1, 1)].signal
            if granted is not None:
                grants[granted] += 1
        assert all(count == 30 for count in grants.values()), grants

    def test_failed_cell_computes_nothing(self):
        system = make_system()
        converge_routes(system)
        system.seed_entity((1, 1), 1.5, 1.5)
        system.cells[(1, 2)].failed = True
        signal_phase(system.grid, system.cells, PARAMS)
        # Unchanged from initial None (the failed target never granted).
        assert system.cells[(1, 2)].signal is None

    def test_no_inbound_means_no_signal(self):
        system = make_system()
        converge_routes(system)
        signal_phase(system.grid, system.cells, PARAMS)
        for state in system.cells.values():
            assert state.signal is None
