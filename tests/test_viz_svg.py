"""Tests for the SVG renderer."""

import random

from repro.core.params import Parameters
from repro.core.sources import EagerSource
from repro.core.system import System
from repro.grid.topology import Grid
from repro.viz.svg import render_svg, save_svg

PARAMS = Parameters(l=0.25, rs=0.05, v=0.2)


def make_system() -> System:
    system = System(
        grid=Grid(3),
        params=PARAMS,
        tid=(2, 2),
        sources={(0, 0): EagerSource()},
        rng=random.Random(0),
    )
    system.seed_entity((1, 1), 1.5, 1.5)
    return system


class TestRenderSvg:
    def test_is_wellformed_xml(self):
        import xml.etree.ElementTree as ET

        ET.fromstring(render_svg(make_system(), title="state"))

    def test_cells_drawn(self):
        svg = render_svg(make_system())
        # 9 cell rects at least (plus background/entity/safety rects).
        assert svg.count("<rect") >= 9 + 1

    def test_entity_and_safety_margin(self):
        svg = render_svg(make_system())
        assert "stroke-dasharray" in svg  # safety outline present

    def test_safety_margin_optional(self):
        svg = render_svg(make_system(), show_safety_margin=False)
        assert "stroke-dasharray" not in svg

    def test_routes_drawn_after_convergence(self):
        system = make_system()
        for _ in range(6):
            system.update()
        svg = render_svg(system)
        assert "<line" in svg

    def test_routes_optional(self):
        system = make_system()
        for _ in range(6):
            system.update()
        assert "<line" not in render_svg(system, show_routes=False)

    def test_title_rendered(self):
        assert "round 42" in render_svg(make_system(), title="round 42")

    def test_save(self, tmp_path):
        path = save_svg(make_system(), tmp_path / "out" / "state.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")

    def test_save_forwards_render_options(self, tmp_path):
        path = save_svg(
            make_system(),
            tmp_path / "state.svg",
            show_safety_margin=False,
            title="forwarded",
        )
        text = path.read_text()
        assert "forwarded" in text
        assert "stroke-dasharray" not in text


class TestCellStyling:
    def test_role_colors(self):
        system = make_system()
        system.fail((2, 0))
        svg = render_svg(system)
        from repro.viz.svg import _STYLE

        assert _STYLE["cell_failed"] in svg
        assert _STYLE["cell_target"] in svg
        assert _STYLE["cell_source"] in svg
        assert svg.count(_STYLE["cell_target"]) == 1  # exactly one target

    def test_failed_cells_draw_no_route_arrows(self):
        system = make_system()
        for _ in range(6):
            system.update()
        converged = render_svg(system).count("<line")
        assert converged > 0
        for cid in list(system.grid.cells()):
            if cid != system.tid:
                system.fail(cid)
        assert render_svg(system).count("<line") == 0

    def test_rectangular_grid_dimensions(self):
        system = System(
            grid=Grid(4, 2),
            params=PARAMS,
            tid=(3, 1),
            rng=random.Random(0),
        )
        import xml.etree.ElementTree as ET

        root = ET.fromstring(render_svg(system))
        from repro.viz.svg import CELL_PX, MARGIN_PX

        assert int(root.get("width")) == 2 * MARGIN_PX + 4 * CELL_PX
        assert int(root.get("height")) == 2 * MARGIN_PX + 2 * CELL_PX
        # One labelled rect per cell on top of the background.
        labels = [el for el in root.iter() if el.tag.endswith("text")]
        assert len(labels) == 8

    def test_entity_rect_sized_by_l(self):
        svg = render_svg(make_system(), show_safety_margin=False)
        from repro.viz.svg import _STYLE, CELL_PX

        side = f'width="{PARAMS.l * CELL_PX:.1f}"'
        entity_rects = [
            line for line in svg.splitlines() if _STYLE["entity"] in line
        ]
        assert len(entity_rects) == 1
        assert side in entity_rects[0]
