"""Unit tests for the runtime monitors (safety, invariants, recorder)."""

import random

import pytest

from repro.core.params import Parameters
from repro.core.system import System, build_corridor_system
from repro.grid.paths import straight_path
from repro.grid.topology import Direction, Grid
from repro.monitors.invariants import (
    check_containment,
    check_disjoint_membership,
    check_signal_gap,
    two_cycle_signal_pairs,
)
from repro.monitors.recorder import MonitorSuite, MonitorViolation
from repro.monitors.safety import check_safe, safe_cell

PARAMS = Parameters(l=0.25, rs=0.05, v=0.2)  # d = 0.3


def make_system(n=3, tid=(2, 2)) -> System:
    return System(grid=Grid(n), params=PARAMS, tid=tid, rng=random.Random(0))


class TestSafetyMonitor:
    def test_empty_system_safe(self):
        assert check_safe(make_system()) == []

    def test_separated_entities_safe(self):
        system = make_system()
        system.seed_entity((0, 0), 0.3, 0.5)
        system.seed_entity((0, 0), 0.7, 0.5)  # 0.4 >= d on x
        assert check_safe(system) == []

    def test_axis_separation_suffices(self):
        system = make_system()
        system.seed_entity((0, 0), 0.3, 0.3)
        system.seed_entity((0, 0), 0.35, 0.7)  # close on x, far on y
        assert check_safe(system) == []

    def test_violation_detected_and_described(self):
        system = make_system()
        system.seed_entity((0, 0), 0.4, 0.5)
        system.seed_entity((0, 0), 0.6, 0.6)
        violations = check_safe(system)
        assert len(violations) == 1
        violation = violations[0]
        assert violation.cell == (0, 0)
        assert violation.separation == pytest.approx(0.2)
        assert violation.required == pytest.approx(0.3)
        assert "0.2" in str(violation)

    def test_cross_cell_proximity_allowed(self):
        """Entities in adjacent cells may be closer than d (paper note)."""
        system = make_system()
        system.seed_entity((0, 0), 0.875, 0.5)
        system.seed_entity((1, 0), 1.125, 0.5)  # centers 0.25 = l apart
        assert check_safe(system) == []

    def test_safe_cell_predicate(self):
        system = make_system()
        system.seed_entity((0, 0), 0.4, 0.5)
        assert safe_cell(system.cells[(0, 0)], PARAMS.d)
        system.seed_entity((0, 0), 0.5, 0.55)
        assert not safe_cell(system.cells[(0, 0)], PARAMS.d)


class TestContainmentMonitor:
    def test_inside_ok(self):
        system = make_system()
        system.seed_entity((0, 0), 0.125, 0.5)  # flush against left wall
        assert check_containment(system) == []

    def test_protrusion_detected(self):
        system = make_system()
        system.seed_entity((0, 0), 0.1, 0.5)  # left edge at -0.025
        violations = check_containment(system)
        assert len(violations) == 1
        assert violations[0].cell == (0, 0)

    def test_wrong_cell_detected(self):
        system = make_system()
        system.seed_entity((1, 1), 0.5, 0.5)  # position belongs to (0,0)
        assert len(check_containment(system)) == 1


class TestDisjointMembership:
    def test_disjoint_ok(self):
        system = make_system()
        system.seed_entity((0, 0), 0.5, 0.5)
        system.seed_entity((1, 1), 1.5, 1.5)
        assert check_disjoint_membership(system) == []

    def test_duplicate_detected(self):
        system = make_system()
        entity = system.seed_entity((0, 0), 0.5, 0.5)
        system.cells[(1, 1)].members[entity.uid] = entity
        assert check_disjoint_membership(system) == [entity.uid]


class TestSignalGapMonitor:
    def test_grant_with_clear_strip_ok(self):
        system = make_system()
        system.cells[(1, 1)].signal = (0, 1)
        system.seed_entity((1, 1), 1.9, 1.5)  # far from the west edge
        assert check_signal_gap(system.cells, PARAMS) == []

    def test_grant_with_occupied_strip_flagged(self):
        system = make_system()
        system.cells[(1, 1)].signal = (0, 1)
        system.seed_entity((1, 1), 1.2, 1.5)  # in the west strip
        violations = check_signal_gap(system.cells, PARAMS)
        assert len(violations) == 1
        assert violations[0].cell == (1, 1)

    def test_failed_cell_ignored(self):
        system = make_system()
        system.cells[(1, 1)].signal = (0, 1)
        system.seed_entity((1, 1), 1.2, 1.5)
        system.cells[(1, 1)].failed = True
        assert check_signal_gap(system.cells, PARAMS) == []


class TestTwoCycleDetection:
    def test_mutual_signals_found_once(self):
        system = make_system()
        system.cells[(0, 0)].signal = (1, 0)
        system.cells[(1, 0)].signal = (0, 0)
        assert two_cycle_signal_pairs(system) == [((0, 0), (1, 0))]

    def test_one_way_signal_not_a_cycle(self):
        system = make_system()
        system.cells[(0, 0)].signal = (1, 0)
        assert two_cycle_signal_pairs(system) == []


class TestMonitorSuite:
    def test_clean_run_raises_nothing(self):
        grid = Grid(8)
        path = straight_path((1, 0), Direction.NORTH, 8)
        system = build_corridor_system(grid, PARAMS, path.cells)
        suite = MonitorSuite().attach(system)
        for _ in range(300):
            report = system.update()
            suite.after_round(system, report)
        assert suite.clean

    def test_strict_mode_raises(self):
        system = make_system()
        suite = MonitorSuite().attach(system)
        system.seed_entity((0, 0), 0.4, 0.5)
        system.seed_entity((0, 0), 0.5, 0.55)  # violates Safe
        report = system.update()
        with pytest.raises(MonitorViolation) as excinfo:
            suite.after_round(system, report)
        assert "Safe (Theorem 5)" in str(excinfo.value)

    def test_lenient_mode_records(self):
        system = make_system()
        suite = MonitorSuite(strict=False).attach(system)
        system.seed_entity((0, 0), 0.4, 0.5)
        system.seed_entity((0, 0), 0.5, 0.55)
        report = system.update()
        suite.after_round(system, report)
        assert not suite.clean
        counts = suite.violation_counts()
        assert counts.get("Safe (Theorem 5)", 0) >= 1

    def test_checks_can_be_disabled(self):
        system = make_system()
        suite = MonitorSuite(check_safety=False).attach(system)
        system.seed_entity((0, 0), 0.4, 0.5)
        system.seed_entity((0, 0), 0.5, 0.55)
        report = system.update()
        suite.after_round(system, report)  # no raise
        assert suite.clean
