"""Metamorphic symmetry tests.

The protocol has no preferred direction: rotating or reflecting the
whole configuration must produce the rotated/reflected behavior. These
tests run geometrically equivalent workloads in different orientations
and require identical consumption sequences — a strong whole-protocol
check that catches axis-specific typos (exactly the class of bug the
scanned paper's Signal function contains, see DESIGN.md).
"""

import random
from typing import List

import pytest

from repro.core.params import Parameters
from repro.core.sources import EagerSource
from repro.core.system import System
from repro.grid.paths import Path, straight_path, turns_path
from repro.grid.topology import Direction, Grid

PARAMS = Parameters(l=0.25, rs=0.05, v=0.2)
N = 8


def run_corridor(path: Path, rounds: int) -> List[int]:
    """Consumption sequence of a corridor workload."""
    system = System(
        grid=Grid(N),
        params=PARAMS,
        tid=path.target,
        sources={path.source: EagerSource()},
        rng=random.Random(0),
    )
    for cid in Grid(N).cells():
        if cid not in path:
            system.fail(cid)
    return [system.update().consumed_count for _ in range(rounds)]


def rotate_cell(cell, n=N):
    """Rotate a cell id 90 degrees counterclockwise within an n x n grid."""
    i, j = cell
    return (n - 1 - j, i)


class TestStraightCorridorSymmetry:
    def test_four_directions_identical(self):
        """North/south/east/west corridors consume in lockstep."""
        runs = {
            "north": run_corridor(straight_path((1, 0), Direction.NORTH, 8), 400),
            "south": run_corridor(straight_path((1, 7), Direction.SOUTH, 8), 400),
            "east": run_corridor(straight_path((0, 1), Direction.EAST, 8), 400),
            "west": run_corridor(straight_path((7, 1), Direction.WEST, 8), 400),
        }
        reference = runs["north"]
        for direction, sequence in runs.items():
            assert sequence == reference, f"{direction} diverged"

    def test_translation_invariance(self):
        """The same corridor in a different column behaves identically."""
        a = run_corridor(straight_path((1, 0), Direction.NORTH, 8), 400)
        b = run_corridor(straight_path((6, 0), Direction.NORTH, 8), 400)
        assert a == b


class TestTurningPathSymmetry:
    def test_rotated_staircase_identical(self):
        """A 2-turn staircase and its 90-degree rotation consume alike."""
        original = turns_path((0, 0), 8, 2)  # north/east staircase
        rotated = Path.from_cells([rotate_cell(c) for c in original.cells])
        assert rotated.turns == original.turns
        a = run_corridor(original, 600)
        b = run_corridor(rotated, 600)
        assert a == b

    def test_mirrored_staircase_identical(self):
        """Reflection across the vertical axis preserves behavior."""
        original = turns_path((0, 0), 8, 3, first=Direction.NORTH, second=Direction.EAST)
        mirrored_cells = [(N - 1 - i, j) for i, j in original.cells]
        mirrored = Path.from_cells(mirrored_cells)
        assert mirrored.turns == original.turns
        a = run_corridor(original, 600)
        b = run_corridor(mirrored, 600)
        assert a == b

    @pytest.mark.parametrize("turns", [1, 4, 6])
    def test_all_rotations_of_turning_paths(self, turns):
        original = turns_path((0, 0), 8, turns)
        sequences = [run_corridor(original, 400)]
        cells = list(original.cells)
        for _ in range(3):
            cells = [rotate_cell(c) for c in cells]
            sequences.append(run_corridor(Path.from_cells(cells), 400))
        assert all(seq == sequences[0] for seq in sequences[1:])
