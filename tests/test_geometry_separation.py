"""Unit and property tests for the center-spacing separation predicates."""

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.geometry.separation import (
    axis_separated,
    fits_among,
    min_axis_separation,
    pairwise_axis_separated,
    separation_violations,
)

coord = st.floats(min_value=-10, max_value=10, allow_nan=False)
points = st.builds(Point, coord, coord)
spacing = st.floats(min_value=0.01, max_value=2.0, allow_nan=False)


class TestAxisSeparated:
    def test_separated_on_x(self):
        assert axis_separated(Point(0, 0), Point(0.5, 0.1), d=0.5)

    def test_separated_on_y(self):
        assert axis_separated(Point(0, 0), Point(0.1, 0.5), d=0.5)

    def test_not_separated(self):
        assert not axis_separated(Point(0, 0), Point(0.3, 0.3), d=0.5)

    def test_exactly_d_counts(self):
        assert axis_separated(Point(0, 0), Point(0.5, 0), d=0.5)

    def test_diagonal_distance_insufficient(self):
        # Euclidean distance ~0.57 > 0.5, but neither axis reaches d.
        assert not axis_separated(Point(0, 0), Point(0.4, 0.4), d=0.5)


class TestMinAxisSeparation:
    def test_reports_larger_axis(self):
        assert min_axis_separation(Point(0, 0), Point(0.3, 0.7)) == 0.7

    def test_zero_for_identical(self):
        assert min_axis_separation(Point(1, 1), Point(1, 1)) == 0.0


class TestPairwise:
    def test_empty_and_single_are_safe(self):
        assert pairwise_axis_separated([], d=0.5)
        assert pairwise_axis_separated([Point(0, 0)], d=0.5)

    def test_violating_pair_detected(self):
        centers = [Point(0, 0), Point(1, 0), Point(1.1, 0.1)]
        assert not pairwise_axis_separated(centers, d=0.5)
        violations = list(separation_violations(centers, d=0.5))
        assert len(violations) == 1
        assert violations[0][:2] == (1, 2)

    def test_grid_layout_is_safe(self):
        centers = [Point(0.5 * i, 0.5 * j) for i in range(3) for j in range(3)]
        assert pairwise_axis_separated(centers, d=0.5)


class TestFitsAmong:
    def test_fits_in_empty(self):
        assert fits_among(Point(0, 0), [], d=0.5)

    def test_rejected_when_close(self):
        assert not fits_among(Point(0, 0), [Point(0.2, 0.2)], d=0.5)

    def test_consistent_with_pairwise(self):
        existing = [Point(0, 0), Point(1, 0)]
        candidate = Point(0.5, 0.5)
        combined = existing + [candidate]
        assert fits_among(candidate, existing, d=0.5) == pairwise_axis_separated(
            combined, d=0.5
        )


class TestProperties:
    @given(points, points, spacing)
    def test_symmetry(self, p, q, d):
        assert axis_separated(p, q, d) == axis_separated(q, p, d)

    @given(points, points, spacing, spacing)
    def test_monotone_in_d(self, p, q, d1, d2):
        low, high = sorted((d1, d2))
        if axis_separated(p, q, high):
            assert axis_separated(p, q, low)

    @given(points, points)
    def test_separated_iff_min_axis_reaches_d(self, p, q):
        separation = min_axis_separation(p, q)
        if separation > 0.01:
            assert axis_separated(p, q, d=separation)
            assert not axis_separated(p, q, d=separation * 1.5)

    @given(st.lists(points, max_size=6), points, spacing)
    def test_fits_among_extends_pairwise(self, centers, candidate, d):
        if pairwise_axis_separated(centers, d) and fits_among(candidate, centers, d):
            assert pairwise_axis_separated(centers + [candidate], d)
