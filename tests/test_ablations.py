"""Tests for the ablation experiment definitions (short horizons; the
full versions run in benchmarks/bench_ablations.py)."""

from repro.experiments.ablations import (
    centralized_ablation,
    source_policy_ablation,
    token_policy_ablation,
    unsafe_ablation,
)

ROUNDS = 600


class TestTokenPolicyAblation:
    def test_three_policies_reported(self):
        rows = token_policy_ablation(rounds=ROUNDS)
        assert [row.policy for row in rows] == ["round-robin", "random", "sticky"]

    def test_round_robin_fair_sticky_starves(self):
        rows = {row.policy: row for row in token_policy_ablation(rounds=ROUNDS)}
        assert rows["round-robin"].fairness > 0.8
        assert rows["sticky"].fairness < 0.2
        starved = min(rows["sticky"].per_source_consumed.values())
        assert starved == 0

    def test_fairness_metric_bounds(self):
        for row in token_policy_ablation(rounds=ROUNDS):
            assert 0.0 <= row.fairness <= 1.0


class TestUnsafeAblation:
    def test_safety_story(self):
        rows = {row.variant: row for row in unsafe_ablation(rounds=ROUNDS)}
        assert rows["signaled (paper)"].safety_violations == 0
        assert rows["greedy (no signal)"].safety_violations > 0

    def test_greedy_throughput_not_lower(self):
        rows = {row.variant: row for row in unsafe_ablation(rounds=ROUNDS)}
        assert (
            rows["greedy (no signal)"].throughput
            >= rows["signaled (paper)"].throughput
        )


class TestCentralizedAblation:
    def test_outages_recorded(self):
        rows = centralized_ablation(rounds=ROUNDS, pf=0.02, pr=0.1)
        distributed, centralized = rows
        assert distributed.outage_rounds == 0
        assert centralized.outage_rounds > 0

    def test_both_safe_variants_deliver_without_churn(self):
        rows = centralized_ablation(rounds=ROUNDS, pf=0.0, pr=0.1)
        for row in rows:
            assert row.throughput > 0


class TestSourcePolicyAblation:
    def test_offered_load_monotone(self):
        rows = source_policy_ablation(rounds=ROUNDS)
        assert rows[-1].policy == "eager"
        light = rows[0]
        eager = rows[-1]
        assert light.throughput < eager.throughput
        assert light.produced < eager.produced

    def test_delivery_bounded_by_offered_load(self):
        for row in source_policy_ablation(rounds=ROUNDS):
            assert row.throughput <= row.offered + 0.01
