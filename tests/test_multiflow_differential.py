"""Lockstep differential proofs for the multi-commodity engines.

The reference and incremental multiflow engines must be observationally
identical — canonical per-round states (per-commodity dist/next tables,
entity geometry with commodity tags, the production/consumption
ledgers), phase reports (including Signal block reasons), monitor
verdicts, and final result records — over a randomized matrix of
multi-commodity configs with faults, every workload profile, and every
token policy. A planted-mutant test proves the harness has teeth: an
incremental engine that swallows fault invalidations is caught.
"""

from __future__ import annotations

import pytest

from repro.multiflow import engine as multiflow_engine
from repro.multiflow.engine import MultiflowIncrementalEngine
from repro.testing.differential import (
    DifferentialMismatch,
    random_multiflow_config,
    run_lockstep,
)

#: Seed matrix sizes: the acceptance bar is >= 20 fuzzed faulting
#: multi-commodity seeds in lockstep, plus a fault-free leg.
FAULTING_SEEDS = range(20)
CLEAN_SEEDS = range(4)


@pytest.mark.parametrize("seed", FAULTING_SEEDS)
def test_lockstep_under_faults(seed):
    """reference == incremental on a faulting multi-commodity config."""
    outcome = run_lockstep(random_multiflow_config(seed))
    assert outcome.digests


@pytest.mark.parametrize("seed", CLEAN_SEEDS)
def test_lockstep_fault_free(seed):
    """reference == incremental with the fault channel off."""
    outcome = run_lockstep(random_multiflow_config(seed, faulting=False))
    assert outcome.digests


class _DeafIncrementalEngine(MultiflowIncrementalEngine):
    """Planted mutant: fault/recover events never dirty the Route sets,
    so routing state goes stale the moment a cell fails."""

    def _on_cell_event(self, event, cid):
        if self._chained_observer is not None:
            self._chained_observer(event, cid)


def test_planted_mutant_is_caught(monkeypatch):
    """The harness must detect a stale-route incremental engine on at
    least one faulting seed — otherwise the matrix proves nothing."""
    monkeypatch.setitem(
        multiflow_engine.MULTIFLOW_ENGINES, "incremental", _DeafIncrementalEngine
    )
    caught = False
    for seed in FAULTING_SEEDS:
        try:
            run_lockstep(random_multiflow_config(seed))
        except DifferentialMismatch:
            caught = True
            break
    assert caught, "no faulting seed exposed the planted stale-route mutant"
