"""Unit and property tests for path construction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.grid.paths import (
    Path,
    count_turns,
    is_valid_path,
    snake_path,
    staircase_path,
    straight_path,
    turns_path,
)
from repro.grid.topology import Direction, Grid


class TestPathValidation:
    def test_single_cell(self):
        path = Path.from_cells([(0, 0)])
        assert len(path) == 1
        assert path.hops == 0
        assert path.turns == 0

    def test_adjacency_required(self):
        with pytest.raises(ValueError):
            Path.from_cells([(0, 0), (2, 0)])

    def test_self_avoidance_required(self):
        with pytest.raises(ValueError):
            Path.from_cells([(0, 0), (1, 0), (0, 0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Path.from_cells([])

    def test_is_valid_path_helper(self):
        assert is_valid_path([(0, 0), (0, 1), (1, 1)])
        assert not is_valid_path([(0, 0), (1, 1)])


class TestPathAccessors:
    def test_source_target(self):
        path = Path.from_cells([(0, 0), (0, 1), (1, 1)])
        assert path.source == (0, 0)
        assert path.target == (1, 1)

    def test_successor(self):
        path = Path.from_cells([(0, 0), (0, 1), (1, 1)])
        assert path.successor((0, 0)) == (0, 1)
        assert path.successor((1, 1)) is None

    def test_successor_off_path(self):
        with pytest.raises(ValueError):
            Path.from_cells([(0, 0), (0, 1)]).successor((5, 5))

    def test_contains_and_index(self):
        path = Path.from_cells([(0, 0), (0, 1)])
        assert (0, 1) in path
        assert (9, 9) not in path
        assert path.index_of((0, 1)) == 1

    def test_directions(self):
        path = Path.from_cells([(0, 0), (0, 1), (1, 1)])
        assert path.directions() == [Direction.NORTH, Direction.EAST]

    def test_fits(self):
        path = straight_path((0, 0), Direction.EAST, 5)
        assert path.fits(Grid(5))
        assert not path.fits(Grid(4))


class TestConstructors:
    def test_straight_path(self):
        path = straight_path((1, 0), Direction.NORTH, 8)
        assert len(path) == 8
        assert path.turns == 0
        assert path.target == (1, 7)

    def test_straight_path_length_one(self):
        assert len(straight_path((0, 0), Direction.EAST, 1)) == 1

    def test_turns_path_exact_turns(self):
        for turns in range(0, 7):
            path = turns_path((0, 0), 8, turns)
            assert len(path) == 8
            assert path.turns == turns

    def test_turns_path_fits_paper_grid(self):
        grid = Grid(8)
        for turns in range(0, 7):
            assert turns_path((0, 0), 8, turns).fits(grid)

    def test_turns_path_rejects_impossible(self):
        with pytest.raises(ValueError):
            turns_path((0, 0), 8, 7)  # 7 hops support at most 6 turns
        with pytest.raises(ValueError):
            turns_path((0, 0), 1, 1)
        with pytest.raises(ValueError):
            turns_path((0, 0), 5, -1)

    def test_turns_path_same_axis_rejected(self):
        with pytest.raises(ValueError):
            turns_path((0, 0), 5, 1, first=Direction.EAST, second=Direction.WEST)

    def test_staircase_is_max_turns(self):
        path = staircase_path((0, 0), 8)
        assert path.turns == 6

    def test_snake_covers_grid(self):
        grid = Grid(4)
        path = snake_path(grid)
        assert len(path) == grid.size
        assert set(path.cells) == set(grid.cells())

    def test_snake_partial_columns(self):
        path = snake_path(Grid(4), columns=2)
        assert len(path) == 8

    def test_snake_invalid_columns(self):
        with pytest.raises(ValueError):
            snake_path(Grid(4), columns=0)


class TestCountTurns:
    def test_straight(self):
        assert count_turns([(0, 0), (0, 1), (0, 2)]) == 0

    def test_one_turn(self):
        assert count_turns([(0, 0), (0, 1), (1, 1)]) == 1

    def test_alternating(self):
        assert count_turns([(0, 0), (0, 1), (1, 1), (1, 2), (2, 2)]) == 3


@given(
    length=st.integers(min_value=2, max_value=12),
    data=st.data(),
)
def test_turns_path_property(length, data):
    """turns_path(start, L, T) always yields L cells with exactly T turns."""
    turns = data.draw(st.integers(min_value=0, max_value=length - 2))
    path = turns_path((0, 0), length, turns)
    assert len(path) == length
    assert path.turns == turns
    # The staircase family never leaves the quarter-plane of its start.
    assert all(i >= 0 and j >= 0 for i, j in path.cells)
